//! Quickstart: run the paper's full analysis pipeline on one benchmark
//! through the `Explorer` session API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps (paper Figure 2): compile to 3-address code, profile on the
//! Table-1 input data, optimize at each level, and report the detected
//! chainable sequences. Every stage is served by the session and
//! memoized, so repeated requests are cache hits.

use asip_explorer::prelude::*;

fn main() -> Result<(), ExplorerError> {
    // Share the bench binaries' on-disk artifact store (override with
    // ASIP_STORE=<dir>, disable with ASIP_STORE=0): a rerun of this
    // example — or a prior run of any bench binary — serves the whole
    // pipeline from disk instead of recomputing it. The default lives
    // under the workspace target dir regardless of the working
    // directory this example is launched from.
    let store = std::env::var("ASIP_STORE")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/target/asip-store").into());
    let session = match store.as_str() {
        "" | "0" | "off" => Explorer::new(),
        dir => Explorer::new().with_store(dir),
    };

    // 1. compile a benchmark (step 1: the front end)
    let compiled = session.compile("fir")?;
    println!(
        "fir: {} blocks, {} instructions of 3-address code",
        compiled.program.blocks().len(),
        compiled.program.inst_count()
    );

    // 2. profile it on the paper-specified data (step 2: simulator/profiler)
    let profiled = session.profile("fir")?;
    println!(
        "profiled {} dynamic operations",
        profiled.profile.total_ops()
    );

    // 3+4. optimize and detect sequences at each level (steps 3 and 4)
    for level in OptLevel::all() {
        let analyzed = session.analyze("fir", level)?;
        println!("\n-- {level} --");
        for (sig, stats) in analyzed.report.top(5) {
            println!(
                "  {sig:30} {:6.2}%  ({} sites)",
                stats.frequency, stats.occurrences
            );
        }
    }

    // 5. the coverage study the designer would read (paper Table 3)
    let scheduled = session.schedule("fir", OptLevel::Pipelined)?;
    let coverage = CoverageAnalyzer::new(DetectorConfig::default()).analyze(&scheduled.graph);
    println!("\ncoverage with a handful of chained instructions:");
    for e in &coverage.entries {
        println!("  {:30} {:6.2}%", e.signature.to_string(), e.frequency);
    }
    println!("  total: {:.2}%", coverage.coverage());

    // 6. close the loop (paper Figure 1): design and measure an ASIP
    let evaluated = session.evaluate("fir")?;
    println!(
        "\nfeedback-designed ASIP: {:.3}x speedup ({} chains fused)",
        evaluated.evaluation.speedup, evaluated.evaluation.fused_chains
    );
    println!("session cache: {}", session.cache_stats());
    Ok(())
}
