//! Quickstart: run the paper's full analysis pipeline on one benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps (paper Figure 2): compile to 3-address code, profile on the
//! Table-1 input data, optimize at each level, and report the detected
//! chainable sequences.

use asip_explorer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. pick a benchmark and compile it (step 1: the front end)
    let benches = registry();
    let bench = benches.find("fir").expect("fir is built in");
    let program = bench.compile()?;
    println!(
        "fir: {} blocks, {} instructions of 3-address code",
        program.blocks().len(),
        program.inst_count()
    );

    // 2. profile it on the paper-specified data (step 2: simulator/profiler)
    let profile = bench.profile(&program)?;
    println!("profiled {} dynamic operations", profile.total_ops());

    // 3+4. optimize and detect sequences at each level (steps 3 and 4)
    for level in OptLevel::all() {
        let graph = Optimizer::new(level).run(&program, &profile);
        let report = SequenceDetector::new(DetectorConfig::default()).analyze(&graph);
        println!("\n-- {level} --");
        for (sig, stats) in report.top(5) {
            println!("  {sig:30} {:6.2}%  ({} sites)", stats.frequency, stats.occurrences);
        }
    }

    // 5. the coverage study the designer would read (paper Table 3)
    let graph = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
    let coverage = CoverageAnalyzer::new(DetectorConfig::default()).analyze(&graph);
    println!("\ncoverage with a handful of chained instructions:");
    for e in &coverage.entries {
        println!("  {:30} {:6.2}%", e.signature.to_string(), e.frequency);
    }
    println!("  total: {:.2}%", coverage.coverage());
    Ok(())
}
