//! Bring your own kernel: analyze a DSP routine that is *not* part of
//! the Table-1 suite, end to end, exactly as a user tuning an ASIP for
//! their own workload would.
//!
//! The kernel is a complex-valued mixer/accumulator written in mini-C.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use asip_explorer::prelude::*;
use asip_explorer::sim::{DataGen, DataSet, Simulator};

const SOURCE: &str = r#"
    // complex mixer: y[n] = x[n] * w[n] accumulated over a window,
    // interleaved re/im layout
    input float xre[64];
    input float xim[64];
    input float wre[64];
    input float wim[64];
    output float acc[2];

    void main() {
        int n;
        float sr; float si;
        sr = 0.0;
        si = 0.0;
        for (n = 0; n < 64; n = n + 1) {
            sr = sr + xre[n] * wre[n] - xim[n] * wim[n];
            si = si + xre[n] * wim[n] + xim[n] * wre[n];
        }
        acc[0] = sr;
        acc[1] = si;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // compile the custom source
    let program = asip_explorer::frontend::compile("mixer", SOURCE)?;
    println!(
        "mixer: {} instructions in {} blocks",
        program.inst_count(),
        program.blocks().len()
    );

    // bind custom input data (seeded, reproducible)
    let mut gen = DataGen::new(7);
    let mut data = DataSet::new();
    for name in ["xre", "xim", "wre", "wim"] {
        data.bind_floats(name, gen.floats(64, -1.0, 1.0));
    }

    // profile
    let exec = Simulator::new(&program).run(&data)?;
    println!("dynamic ops: {}", exec.profile.total_ops());
    println!(
        "accumulator result: {:?}",
        exec.array(&program, "acc").expect("output array")
    );

    // what should this user's ASIP chain?
    for level in [OptLevel::None, OptLevel::Pipelined] {
        let graph = Optimizer::new(level).run(&program, &exec.profile);
        let report = SequenceDetector::new(DetectorConfig::default()).analyze(&graph);
        println!("\ntop sequences at {level}:");
        for (sig, stats) in report.top(6) {
            println!("  {sig:30} {:6.2}%", stats.frequency);
        }
    }

    // and what does the closed loop deliver?
    let designer = AsipDesigner::new(DesignConstraints::default());
    let design = designer.design_for(&program, &exec.profile);
    let eval = asip_explorer::synth::evaluate(&program, &design, &data)?;
    println!(
        "\nchosen extensions: {}",
        design
            .extensions
            .iter()
            .map(|e| e.signature.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "speedup on a single-issue ASIP: {:.3}x ({} -> {} cycles)",
        eval.speedup, eval.base_cycles, eval.asip_cycles
    );
    Ok(())
}
