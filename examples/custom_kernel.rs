//! Bring your own kernel: analyze a DSP routine that is *not* part of
//! the Table-1 suite, end to end, exactly as a user tuning an ASIP for
//! their own workload would. The kernel registers into the session
//! registry with a multi-array data specification and then flows
//! through the same staged pipeline as the built-ins.
//!
//! The kernel is a complex-valued mixer/accumulator written in mini-C.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use asip_explorer::prelude::*;

const SOURCE: &str = r#"
    // complex mixer: y[n] = x[n] * w[n] accumulated over a window,
    // interleaved re/im layout
    input float xre[64];
    input float xim[64];
    input float wre[64];
    input float wim[64];
    output float acc[2];

    void main() {
        int n;
        float sr; float si;
        sr = 0.0;
        si = 0.0;
        for (n = 0; n < 64; n = n + 1) {
            sr = sr + xre[n] * wre[n] - xim[n] * wim[n];
            si = si + xre[n] * wim[n] + xim[n] * wre[n];
        }
        acc[0] = sr;
        acc[1] = si;
    }
"#;

/// The mixer's four input arrays, drawn from one seeded stream.
const MIXER_DATA: DataSpec = DataSpec::Multi {
    specs: &[
        DataSpec::Floats { name: "xre", n: 64 },
        DataSpec::Floats { name: "xim", n: 64 },
        DataSpec::Floats { name: "wre", n: 64 },
        DataSpec::Floats { name: "wim", n: 64 },
    ],
};

fn main() -> Result<(), ExplorerError> {
    let mixer = Benchmark {
        name: "mixer",
        description: "complex mixer/accumulator (user kernel)",
        paper_lines: 24,
        data_description: "4 random arrays of 64 floating point values",
        source: SOURCE,
        data: MIXER_DATA,
        suite: Suite::User,
    };
    let session = Explorer::new().with_benchmark(mixer).with_seed(7);

    // the custom kernel flows through the same staged pipeline
    let compiled = session.compile("mixer")?;
    println!(
        "mixer: {} instructions in {} blocks",
        compiled.program.inst_count(),
        compiled.program.blocks().len()
    );

    let profiled = session.profile("mixer")?;
    println!("dynamic ops: {}", profiled.profile.total_ops());

    // what should this user's ASIP chain?
    for level in [OptLevel::None, OptLevel::Pipelined] {
        let analyzed = session.analyze("mixer", level)?;
        println!("\ntop sequences at {level}:");
        for (sig, stats) in analyzed.report.top(6) {
            println!("  {sig:30} {:6.2}%", stats.frequency);
        }
    }

    // and what does the closed loop deliver?
    let evaluated = session.evaluate("mixer")?;
    println!(
        "\nchosen extensions: {}",
        evaluated
            .design
            .extensions
            .iter()
            .map(|e| e.signature.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "speedup on a single-issue ASIP: {:.3}x ({} -> {} cycles)",
        evaluated.evaluation.speedup,
        evaluated.evaluation.base_cycles,
        evaluated.evaluation.asip_cycles
    );
    Ok(())
}
