//! Reproduce the paper's central comparison on the whole suite in one
//! run: how much chainable-sequence coverage does each optimization
//! level expose per benchmark?
//!
//! The twelve benchmarks fan out over the session thread pool; each is
//! compiled and simulated once, then scheduled at all three levels.
//!
//! ```text
//! cargo run --release --example compare_levels
//! ```

use asip_explorer::prelude::*;

fn main() -> Result<(), ExplorerError> {
    println!(
        "{:10} {:>12} {:>12} {:>12}",
        "benchmark", "level 0", "level 1", "level 2"
    );
    let session = Explorer::new();
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    let rows = session.map_all(|bench| {
        let mut row = Vec::new();
        for level in OptLevel::all() {
            let scheduled = session.schedule(bench.name, level)?;
            row.push(analyzer.analyze(&scheduled.graph).coverage());
        }
        Ok((bench.name, row))
    })?;
    for (name, row) in rows {
        println!(
            "{:10} {:>11.2}% {:>11.2}% {:>11.2}%",
            name, row[0], row[1], row[2]
        );
    }
    println!();
    println!("level 0 = No Optimization, level 1 = Pipelined, level 2 = Pipelined + Renamed");
    Ok(())
}
