//! Reproduce the paper's central comparison on the whole suite in one
//! run: how much chainable-sequence coverage does each optimization
//! level expose per benchmark?
//!
//! ```text
//! cargo run --release --example compare_levels
//! ```

use asip_explorer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:10} {:>12} {:>12} {:>12}",
        "benchmark", "level 0", "level 1", "level 2"
    );
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    for bench in registry().iter() {
        let program = bench.compile()?;
        let profile = bench.profile(&program)?;
        let mut row = Vec::new();
        for level in OptLevel::all() {
            let graph = Optimizer::new(level).run(&program, &profile);
            row.push(analyzer.analyze(&graph).coverage());
        }
        println!(
            "{:10} {:>11.2}% {:>11.2}% {:>11.2}%",
            bench.name, row[0], row[1], row[2]
        );
    }
    println!();
    println!("level 0 = No Optimization, level 1 = Pipelined, level 2 = Pipelined + Renamed");
    Ok(())
}
