//! Design-space exploration: sweep the area budget and watch which
//! chained instructions get selected and what speedup each budget buys.
//!
//! This is the workflow the paper's Figure 1 motivates: the designer
//! asks "what is the best ASIP I can build for this suite at cost X?"
//! and the compiler feedback answers.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use asip_explorer::prelude::*;
use asip_explorer::synth::{evaluate, DesignConstraints, DesignReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benches = registry();
    let bench = benches.find("sewha").expect("built in");
    let program = bench.compile()?;
    let profile = bench.profile(&program)?;

    println!("design-space sweep for `sewha` (integer FIR):");
    println!(
        "{:>10} {:>12} {:>9}  extensions",
        "budget", "area used", "speedup"
    );
    for budget in [500.0, 1500.0, 3000.0, 6000.0, 12000.0] {
        let designer = AsipDesigner::new(DesignConstraints {
            area_budget: budget,
            ..DesignConstraints::default()
        });
        let design = designer.design_for(&program, &profile);
        let eval = evaluate(&program, &design, &bench.dataset())?;
        let names: Vec<String> = design
            .extensions
            .iter()
            .map(|e| e.signature.to_string())
            .collect();
        println!(
            "{:>10.0} {:>12.0} {:>8.3}x  {}",
            budget,
            design.extension_area,
            eval.speedup,
            names.join(", ")
        );
    }

    // full datapath report at the default budget
    let design = AsipDesigner::new(DesignConstraints::default()).design_for(&program, &profile);
    println!();
    print!("{}", DesignReport::new(&design, DesignConstraints::default().clock_ns));

    println!();
    println!("clock sweep (tighter clocks exclude longer chains):");
    for clock in [10.0, 16.0, 24.0, 40.0] {
        let designer = AsipDesigner::new(DesignConstraints {
            clock_ns: clock,
            ..DesignConstraints::default()
        });
        let design = designer.design_for(&program, &profile);
        let eval = evaluate(&program, &design, &bench.dataset())?;
        println!(
            "  {:>5.0} ns: {} extensions, speedup {:.3}x",
            clock,
            design.len(),
            eval.speedup
        );
    }
    Ok(())
}
