//! Design-space exploration: sweep the area budget and watch which
//! chained instructions get selected and what speedup each budget buys.
//!
//! This is the workflow the paper's Figure 1 motivates: the designer
//! asks "what is the best ASIP I can build for this suite at cost X?"
//! and the compiler feedback answers. The sweep runs on one session —
//! `sewha` is compiled and simulated once, then every budget and clock
//! point reuses the cached artifacts.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use asip_explorer::prelude::*;
use asip_explorer::synth::DesignReport;

fn main() -> Result<(), ExplorerError> {
    let session = Explorer::new();
    let detector = DetectorConfig::default();

    println!("design-space sweep for `sewha` (integer FIR):");
    println!(
        "{:>10} {:>12} {:>9}  extensions",
        "budget", "area used", "speedup"
    );
    for budget in [500.0, 1500.0, 3000.0, 6000.0, 12000.0] {
        let constraints = DesignConstraints {
            area_budget: budget,
            ..DesignConstraints::default()
        };
        let evaluated = session.evaluate_with("sewha", constraints, detector)?;
        let names: Vec<String> = evaluated
            .design
            .extensions
            .iter()
            .map(|e| e.signature.to_string())
            .collect();
        println!(
            "{:>10.0} {:>12.0} {:>8.3}x  {}",
            budget,
            evaluated.design.extension_area,
            evaluated.evaluation.speedup,
            names.join(", ")
        );
    }

    // the same question, answered in one call: the design-space stage
    // runs a single frontier search for the whole budget grid and
    // caches the result as one artifact (see docs/design-space.md)
    let grid: Vec<DesignConstraints> = [500.0, 1500.0, 3000.0, 6000.0, 12000.0]
        .iter()
        .map(|&area_budget| DesignConstraints {
            area_budget,
            ..DesignConstraints::default()
        })
        .collect();
    let spaced = session.design_space_with(&["sewha"], &grid, detector)?;
    println!();
    println!("the pareto frontier behind that sweep (design-space stage):");
    let defaults = DesignConstraints::default();
    for point in spaced
        .space
        .frontier_at(defaults.opt_level, defaults.clock_ns)
    {
        println!(
            "  area {:>7.0} → benefit {:5.2}% ({} extensions)",
            point.area, point.benefit, point.extensions
        );
    }

    // full datapath report at the default budget
    let designed = session.design("sewha")?;
    println!();
    print!(
        "{}",
        DesignReport::new(&designed.design, DesignConstraints::default().clock_ns)
    );

    println!();
    println!("clock sweep (tighter clocks exclude longer chains):");
    for clock in [10.0, 16.0, 24.0, 40.0] {
        let constraints = DesignConstraints {
            clock_ns: clock,
            ..DesignConstraints::default()
        };
        let evaluated = session.evaluate_with("sewha", constraints, detector)?;
        println!(
            "  {:>5.0} ns: {} extensions, speedup {:.3}x",
            clock,
            evaluated.design.len(),
            evaluated.evaluation.speedup
        );
    }
    println!();
    println!(
        "session cache: {} (one compile + one profile across the whole sweep)",
        session.cache_stats()
    );
    Ok(())
}
