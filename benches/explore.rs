//! The perf-trajectory harness: cold vs warm session costs and
//! simulator throughput, with a machine-readable JSON summary diffed
//! against the checked-in baseline (`benches/baseline.json`).
//!
//! ```text
//! cargo bench --bench explore
//! ```
//!
//! Four series families are measured:
//!
//! - **cold `explore_all`** — a fresh storeless session runs the full
//!   Figure-1 pipeline over the whole Table-1 registry (compile,
//!   profile, three schedules, three analyses, design, evaluate per
//!   benchmark), fanned out on the session thread pool;
//! - **warm `explore_all`** — the same session again (every stage a
//!   typed-cache hit), a *store-warm* fresh session over a populated
//!   artifact store (every stage prefetched in parallel and decoded
//!   from staged bytes — `prefetch_hits` in the summary proves the
//!   path taken), and a *remote-warm* storeless session served by an
//!   in-process `serve` daemon on loopback over that same store (the
//!   batched prefetch turns the warm-up into one round trip);
//! - **design-space sweep** — a 256-config pareto-frontier sweep
//!   (8 area budgets × 4 clocks × 4 extension caps × 2 levels) over
//!   the whole suite on the warm session, counter-asserted to perform
//!   zero optimizer runs; plus the normalized `warm_over_cold_ratio`
//!   (store-warm replay cost as a fraction of the cold run);
//! - **simulator throughput** — dynamic ops interpreted per second by
//!   the pre-decoded engine on the largest Table-1 benchmark (largest
//!   by profiled dynamic op count, resolved at run time from the warm
//!   session), decode amortized out by reusing one [`sim::Engine`];
//! - **batched execution** — `Engine::run_batch` throughput over
//!   seed-varied datasets on the same benchmark
//!   (`sim_batch_ops_per_sec`), its cost relative to sequential
//!   single runs (`batch_over_single_ratio`, lower is better), and
//!   the alloc-free sweep path — profile-only pooled runs over
//!   pre-bound inputs (`ablation_alloc_free_ms`);
//! - **decode cost** — the one-time `Program` → `DecodedProgram`
//!   lowering for the same benchmark, so the amortization story stays
//!   measured;
//! - **generated-suite scaling** — cold `explore` cost per corpus size
//!   class (`gen_cold_explore_{small,mid,large}_ms`, 8 seeded programs
//!   each) and engine throughput on the heaviest generated program
//!   (`gen_sim_ops_per_sec`), so the pipeline's scaling with program
//!   size is gated alongside the Table-1 series.
//!
//! The summary is written to `ASIP_BENCH_JSON` (default
//! `target/asip-bench-explore.json`, workspace-relative) as a flat JSON
//! object; the values are milliseconds and ops/second. The JSON is
//! hand-rendered because the workspace's serde is the offline no-op
//! shim. Series names are *stable* (no benchmark name embedded) so the
//! perf gate can diff run against baseline; when
//! `benches/baseline.json` exists the comparison table is printed at
//! the end of the run (the CI gate is the `asip-bench` `perf` binary —
//! see `docs/perf.md`).
//!
//! [`sim::Engine`]: asip_explorer::sim::Engine

use asip_explorer::perf;
use asip_explorer::sim;
use asip_explorer::Explorer;
use criterion::Criterion;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock one call, in milliseconds.
fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn summary_path() -> PathBuf {
    match std::env::var("ASIP_BENCH_JSON") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => workspace_root().join("target/asip-bench-explore.json"),
    }
}

fn main() {
    let mut rows: Vec<(String, f64)> = Vec::new();

    // -- cold vs warm explore_all (in-memory) --------------------------
    let session = Explorer::new();
    let (cold, cold_ms) = time_ms(|| session.explore_all().expect("pipeline runs"));
    assert_eq!(cold.len(), session.registry().len());
    let (_, warm_ms) = time_ms(|| session.explore_all().expect("pipeline replays"));
    println!("bench explore_all/cold                               {cold_ms:>12.1} ms");
    println!("bench explore_all/warm-memory                        {warm_ms:>12.1} ms");
    rows.push(("cold_explore_all_ms".into(), cold_ms));
    rows.push(("warm_explore_all_ms".into(), warm_ms));

    // -- design-space sweep on the warm session ------------------------
    // 8 area budgets × 4 clocks × 4 extension caps × 2 levels = 256
    // configs; the frontier search shares coverage reports and unit
    // costs across the whole grid, and the warm session already holds
    // every schedule, so the sweep performs zero optimizer runs.
    {
        use asip_explorer::opt::OptLevel;
        use asip_explorer::synth::DesignConstraints;
        let mut grid = Vec::with_capacity(256);
        for &opt_level in &[OptLevel::Pipelined, OptLevel::PipelinedRenamed] {
            for budget_step in 0..8u32 {
                for clock_step in 0..4u32 {
                    for ext_cap in 1..=4usize {
                        grid.push(DesignConstraints {
                            area_budget: 750.0 * f64::from(budget_step + 1),
                            clock_ns: 25.0 + 10.0 * f64::from(clock_step),
                            max_extensions: ext_cap,
                            opt_level,
                        });
                    }
                }
            }
        }
        assert_eq!(grid.len(), 256);
        let schedule_runs = session.cache_stats().schedule.misses;
        let (space, sweep_ms) = time_ms(|| session.design_space(&grid).expect("sweep runs"));
        assert_eq!(space.space.len(), 256);
        assert_eq!(
            session.cache_stats().schedule.misses,
            schedule_runs,
            "a warm design-space sweep performs zero optimizer runs"
        );
        println!("bench design_space/sweep-256                         {sweep_ms:>12.1} ms");
        rows.push(("design_space_sweep_ms".into(), sweep_ms));
    }

    // -- store-warm explore_all (parallel prefetch from disk) ----------
    let dir = std::env::temp_dir().join(format!("asip-bench-explore-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Explorer::new()
        .with_store(&dir)
        .explore_all()
        .expect("populates the store");
    let store_warm = Explorer::new().with_store(&dir);
    let (_, disk_ms) = time_ms(|| store_warm.explore_all().expect("replays from disk"));
    let stats = store_warm.cache_stats();
    assert_eq!(stats.total_misses(), 0, "a warm store recomputes nothing");
    let prefetch_hits = stats.total_prefetch_hits();
    println!("bench explore_all/warm-store                         {disk_ms:>12.1} ms");
    rows.push(("store_warm_explore_all_ms".into(), disk_ms));
    rows.push(("store_warm_prefetch_hits".into(), prefetch_hits as f64));
    // normalized persistence payoff: how much of a cold run a
    // store-warm replay still costs (ROADMAP item 4 — lower is better,
    // gated with an absolute noise floor; see `perf::RATIO_NOISE_FLOOR`)
    rows.push(("warm_over_cold_ratio".into(), disk_ms / cold_ms));

    // -- remote-warm explore_all (loopback daemon over the same store) -
    {
        use asip_explorer::remote::{serve, Endpoint, RetryPolicy, ServeOptions};
        let server_session = Arc::new(Explorer::new().with_store(&dir));
        let handle = serve(
            server_session,
            &Endpoint::Tcp("127.0.0.1:0".into()),
            ServeOptions::default(),
        )
        .expect("daemon binds loopback");
        let remote_warm = Explorer::new()
            .with_remote(&handle.endpoint().to_string(), RetryPolicy::default())
            .expect("endpoint parses");
        let (_, remote_ms) = time_ms(|| remote_warm.explore_all().expect("replays over the wire"));
        let stats = remote_warm.cache_stats();
        assert_eq!(stats.total_misses(), 0, "a warm daemon recomputes nothing");
        assert!(stats.total_remote_hits() > 0, "served over the wire");
        println!("bench explore_all/warm-remote                        {remote_ms:>12.1} ms");
        rows.push(("remote_warm_explore_all_ms".into(), remote_ms));
        handle.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();

    // -- simulator throughput on the largest benchmark -----------------
    let largest = session
        .registry()
        .iter()
        .copied()
        .collect::<Vec<_>>()
        .into_iter()
        .max_by_key(|b| {
            session
                .profile(b.name)
                .expect("profiled during explore_all")
                .profile
                .total_ops()
        })
        .expect("registry is non-empty");
    let program = session.compile(largest.name).expect("cached").program;
    let data = largest.dataset();
    let total_ops = session
        .profile(largest.name)
        .expect("cached")
        .profile
        .total_ops();

    // decode cost: the one-time lowering the engine amortizes away
    const DECODE_REPS: u32 = 64;
    let (_, decode_total_ms) = time_ms(|| {
        for _ in 0..DECODE_REPS {
            std::hint::black_box(sim::DecodedProgram::decode(std::hint::black_box(&program)));
        }
    });
    let decode_ms = decode_total_ms / DECODE_REPS as f64;

    let engine = sim::Engine::new(Arc::clone(&program));
    let mut c = Criterion::default();
    c.bench_function(&format!("simulator/run/{}", largest.name), |b| {
        b.iter(|| {
            engine
                .run(std::hint::black_box(&data))
                .expect("runs")
                .profile
                .total_ops()
        });
    });
    // an independent timed pass for the JSON summary (the criterion
    // shim prints but does not expose its measurement): best of a few
    // runs, so one scheduler hiccup cannot fail the gate
    let sim_ms = (0..5)
        .map(|_| time_ms(|| engine.run(&data).expect("runs")).1)
        .fold(f64::INFINITY, f64::min);
    let ops_per_sec = total_ops as f64 / (sim_ms / 1e3);
    println!(
        "bench simulator/{}: {total_ops} dynamic ops, {:.2} Mops/s, decode {decode_ms:.3} ms",
        largest.name,
        ops_per_sec / 1e6
    );
    rows.push(("sim_dynamic_ops".into(), total_ops as f64));
    rows.push(("sim_decode_ms".into(), decode_ms));
    rows.push(("sim_ops_per_sec".into(), ops_per_sec));

    // -- batched execution over pooled run states ----------------------
    {
        const BATCH: usize = 16;
        let datasets: Vec<_> = (1..=BATCH as u64)
            .map(|s| largest.dataset_with_seed(s))
            .collect();
        let refs: Vec<&_> = datasets.iter().collect();
        // sequential single runs: one pool checkout and one input
        // binding per dataset
        let single_ms = (0..5)
            .map(|_| {
                time_ms(|| {
                    for data in &refs {
                        engine.run(data).expect("runs");
                    }
                })
                .1
            })
            .fold(f64::INFINITY, f64::min);
        // the batch API: one run state across the whole sweep
        let (batch, first_ms) = time_ms(|| engine.run_batch(&refs).expect("batch runs"));
        let batch_ops: u64 = batch.iter().map(|e| e.profile.total_ops()).sum();
        let batch_ms = (0..4)
            .map(|_| time_ms(|| engine.run_batch(&refs).expect("batch runs")).1)
            .fold(first_ms, f64::min);
        let batch_ops_per_sec = batch_ops as f64 / (batch_ms / 1e3);
        println!(
            "bench simulator/batch-{BATCH}/{}: {:.2} Mops/s ({:.3}x sequential cost)",
            largest.name,
            batch_ops_per_sec / 1e6,
            batch_ms / single_ms
        );
        rows.push(("sim_batch_ops_per_sec".into(), batch_ops_per_sec));
        rows.push(("batch_over_single_ratio".into(), batch_ms / single_ms));

        // the sweep shape design loops sit on: profile-only pooled runs
        // over inputs bound once — no banks allocated, no outputs
        // materialized
        const SWEEP: usize = 64;
        let inputs = engine.bind(&data).expect("binds");
        let alloc_free_ms = (0..5)
            .map(|_| {
                time_ms(|| {
                    for _ in 0..SWEEP {
                        engine.run_pooled(&inputs).expect("pooled run");
                    }
                })
                .1
            })
            .fold(f64::INFINITY, f64::min);
        println!(
            "bench simulator/alloc-free-sweep-{SWEEP}                  {alloc_free_ms:>12.1} ms"
        );
        rows.push(("ablation_alloc_free_ms".into(), alloc_free_ms));
    }

    // -- generated-suite scaling series --------------------------------
    // cold explore cost per corpus size class (8 programs each), so the
    // pipeline's scaling with program size stays on the perf trajectory,
    // plus engine throughput on the heaviest generated program (a
    // workload shape the Table-1 suite does not cover)
    {
        use asip_explorer::benchmarks::{full_registry, generated_corpus_for, CorpusClass};
        let gen_session = Explorer::new().with_registry(full_registry());
        for class in CorpusClass::all() {
            let fresh = Explorer::new().with_registry(full_registry());
            let names: Vec<&str> = generated_corpus_for(class).map(|b| b.name).collect();
            assert_eq!(names.len(), 8);
            let (_, class_ms) = time_ms(|| {
                for name in &names {
                    fresh.explore(name).expect("corpus explores");
                }
            });
            let label = match class {
                CorpusClass::Small => "small",
                CorpusClass::Mid => "mid",
                CorpusClass::Large => "large",
            };
            println!(
                "bench gen/cold-explore-{label:<5}                        {class_ms:>12.1} ms"
            );
            rows.push((format!("gen_cold_explore_{label}_ms"), class_ms));
        }

        let heaviest = asip_explorer::benchmarks::generated_corpus()
            .iter()
            .max_by_key(|b| {
                gen_session
                    .profile(b.name)
                    .expect("corpus profiles")
                    .profile
                    .total_ops()
            })
            .expect("corpus is non-empty");
        let program = gen_session.compile(heaviest.name).expect("cached").program;
        let data = heaviest.dataset();
        let gen_ops = gen_session
            .profile(heaviest.name)
            .expect("cached")
            .profile
            .total_ops();
        let gen_engine = sim::Engine::new(Arc::clone(&program));
        let gen_ms = (0..5)
            .map(|_| time_ms(|| gen_engine.run(&data).expect("runs")).1)
            .fold(f64::INFINITY, f64::min);
        let gen_ops_per_sec = gen_ops as f64 / (gen_ms / 1e3);
        println!(
            "bench gen/simulator/{}: {gen_ops} dynamic ops, {:.2} Mops/s",
            heaviest.name,
            gen_ops_per_sec / 1e6
        );
        rows.push(("gen_sim_dynamic_ops".into(), gen_ops as f64));
        rows.push(("gen_sim_ops_per_sec".into(), gen_ops_per_sec));
    }

    // -- JSON summary --------------------------------------------------
    let mut json = String::from("{\n  \"schema\": 2");
    for (k, v) in &rows {
        json.push_str(&format!(",\n  \"{k}\": {v:.3}"));
    }
    json.push_str("\n}\n");
    let path = summary_path();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    // the CI perf gate reads this file right after the bench step, so
    // a failed write must fail the run, not just log
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote bench summary to {}", path.display()),
        Err(e) => panic!("could not write bench summary to {}: {e}", path.display()),
    }

    // -- baseline comparison (informational here; the CI gate is the
    //    `perf` binary, which exits non-zero) -------------------------
    let baseline_path = workspace_root().join("benches/baseline.json");
    if baseline_path.is_file() {
        match (
            perf::load_summary(&baseline_path),
            perf::parse_summary(&json),
        ) {
            (Ok(baseline), Ok(current)) => {
                println!("\nbaseline comparison ({}):", baseline_path.display());
                println!(
                    "{}",
                    perf::compare(&baseline, &current, perf::DEFAULT_TOLERANCE_PCT)
                );
            }
            (Err(e), _) | (_, Err(e)) => eprintln!("baseline comparison skipped: {e}"),
        }
    }
}
