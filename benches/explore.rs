//! The perf-trajectory seed: cold vs warm session costs and simulator
//! throughput, with a machine-readable JSON summary so future changes
//! can be checked against a recorded baseline.
//!
//! ```text
//! cargo bench --bench explore
//! ```
//!
//! Three series are measured:
//!
//! - **cold `explore_all`** — a fresh storeless session runs the full
//!   Figure-1 pipeline over the whole Table-1 registry (compile,
//!   profile, three schedules, three analyses, design, evaluate per
//!   benchmark), fanned out on the session thread pool;
//! - **warm `explore_all`** — the same session again (every stage a
//!   typed-cache hit), and a *store-warm* fresh session over a
//!   populated artifact store (every stage prefetched in parallel and
//!   decoded from staged bytes — `prefetch_hits` in the summary proves
//!   the path taken);
//! - **simulator throughput** — dynamic ops interpreted per second on
//!   the largest Table-1 benchmark (largest by profiled dynamic op
//!   count, resolved at run time from the warm session).
//!
//! The summary is written to `ASIP_BENCH_JSON` (default
//! `target/asip-bench-explore.json`, workspace-relative) as a flat JSON
//! object; the values are milliseconds and ops/second. The JSON is
//! hand-rendered because the workspace's serde is the offline no-op
//! shim.

use asip_explorer::Explorer;
use criterion::Criterion;
use std::path::PathBuf;
use std::time::Instant;

/// Wall-clock one call, in milliseconds.
fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn summary_path() -> PathBuf {
    match std::env::var("ASIP_BENCH_JSON") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/asip-bench-explore.json"),
    }
}

fn main() {
    let mut rows: Vec<(String, f64)> = Vec::new();

    // -- cold vs warm explore_all (in-memory) --------------------------
    let session = Explorer::new();
    let (cold, cold_ms) = time_ms(|| session.explore_all().expect("pipeline runs"));
    assert_eq!(cold.len(), session.registry().len());
    let (_, warm_ms) = time_ms(|| session.explore_all().expect("pipeline replays"));
    println!("bench explore_all/cold                               {cold_ms:>12.1} ms");
    println!("bench explore_all/warm-memory                        {warm_ms:>12.1} ms");
    rows.push(("cold_explore_all_ms".into(), cold_ms));
    rows.push(("warm_explore_all_ms".into(), warm_ms));

    // -- store-warm explore_all (parallel prefetch from disk) ----------
    let dir = std::env::temp_dir().join(format!("asip-bench-explore-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Explorer::new()
        .with_store(&dir)
        .explore_all()
        .expect("populates the store");
    let store_warm = Explorer::new().with_store(&dir);
    let (_, disk_ms) = time_ms(|| store_warm.explore_all().expect("replays from disk"));
    let stats = store_warm.cache_stats();
    assert_eq!(stats.total_misses(), 0, "a warm store recomputes nothing");
    let prefetch_hits = stats.total_prefetch_hits();
    println!("bench explore_all/warm-store                         {disk_ms:>12.1} ms");
    rows.push(("store_warm_explore_all_ms".into(), disk_ms));
    rows.push(("store_warm_prefetch_hits".into(), prefetch_hits as f64));
    std::fs::remove_dir_all(&dir).ok();

    // -- simulator throughput on the largest benchmark -----------------
    let largest = session
        .registry()
        .iter()
        .copied()
        .collect::<Vec<_>>()
        .into_iter()
        .max_by_key(|b| {
            session
                .profile(b.name)
                .expect("profiled during explore_all")
                .profile
                .total_ops()
        })
        .expect("registry is non-empty");
    let program = session.compile(largest.name).expect("cached").program;
    let data = largest.dataset();
    let total_ops = session
        .profile(largest.name)
        .expect("cached")
        .profile
        .total_ops();
    let mut c = Criterion::default();
    c.bench_function(&format!("simulator/run/{}", largest.name), |b| {
        b.iter(|| {
            asip_explorer::sim::Simulator::new(&program)
                .run(std::hint::black_box(&data))
                .expect("runs")
                .profile
                .total_ops()
        });
    });
    // an independent timed pass for the JSON summary (the criterion
    // shim prints but does not expose its measurement)
    let (_, sim_ms) = time_ms(|| {
        asip_explorer::sim::Simulator::new(&program)
            .run(&data)
            .expect("runs")
    });
    let ops_per_sec = total_ops as f64 / (sim_ms / 1e3);
    println!(
        "bench simulator/{}: {total_ops} dynamic ops, {:.2} Mops/s",
        largest.name,
        ops_per_sec / 1e6
    );
    rows.push((
        format!("sim_{}_dynamic_ops", largest.name),
        total_ops as f64,
    ));
    rows.push((format!("sim_{}_ops_per_sec", largest.name), ops_per_sec));

    // -- JSON summary --------------------------------------------------
    let mut json = String::from("{\n  \"schema\": 1");
    for (k, v) in &rows {
        json.push_str(&format!(",\n  \"{k}\": {v:.3}"));
    }
    json.push_str("\n}\n");
    let path = summary_path();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote bench summary to {}", path.display()),
        Err(e) => eprintln!("could not write bench summary to {}: {e}", path.display()),
    }
}
