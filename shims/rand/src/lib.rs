//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of the `rand` 0.8 API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over float ranges
//! and inclusive integer ranges. The generator is SplitMix64 — not
//! ChaCha like the real `StdRng`, but the experiments only require a
//! *deterministic, well-mixed* stream, not a cryptographic one. Seeded
//! streams are stable across platforms and releases, which is all the
//! reproducibility contract of `asip_sim`'s data generation needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Construction of seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods over a raw 64-bit stream (stand-in for `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled uniformly for values of type `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample using `rng`.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                (self.start..=self.end - 1).sample_from(rng)
            }
        }
    )*};
}

int_range_impls!(i64, u64, i32, u32, usize, u8);

/// Generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1995);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-128i64..=127);
            assert!((-128..=127).contains(&i));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn samples_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0i64..=9));
        }
        assert_eq!(seen.len(), 10, "all 10 values should appear");
    }
}
