//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timer: each benchmark body is warmed once and then timed
//! over a fixed number of iterations, with the mean printed per id.
//! There is no statistics engine or HTML report; swap this path
//! dependency for crates.io `criterion` to get those back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up call).
const ITERS: u32 = 5;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not normalize by
    /// throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter value being swept.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a benchmark body (stand-in for `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Warm the routine once, then time `ITERS` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = Some(start.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }

    fn report(&self, label: &str) {
        match self.nanos_per_iter {
            Some(ns) => println!("bench {label:48} {:>12.0} ns/iter", ns),
            None => println!("bench {label:48} (no measurement)"),
        }
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
