//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, `any`, `Just`, ranges, tuple
//! and vec composition, `prop_oneof!`, string "regex" strategies (only
//! the `.{a,b}` shape is honored), and the `proptest!` /
//! `prop_assert*!` macros. Sampling is deterministic per test (seeded
//! from the test's module path and name) and there is **no shrinking**:
//! a failing case reports its number and panics with the original
//! assertion message. Swap this path dependency for crates.io
//! `proptest` to get real shrinking and persistence back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic per-test sampling stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a stable string (the test's full path), so each test
    /// sees the same cases on every run.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A failed property-test assertion (carried out of the test body by the
/// `prop_assert*!` macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (stand-in for `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for `T` (stand-in for `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String "regex" strategy. Only the `.{a,b}` pattern shape is honored
/// (random printable-biased ASCII with length in `[a, b]`); any other
/// pattern falls back to length `0..=32`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| {
                // bias toward printable ASCII, sprinkle control chars
                match rng.below(20) {
                    0 => '\n',
                    1 => char::from(rng.below(32) as u8),
                    _ => char::from((0x20 + rng.below(0x5f)) as u8),
                }
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let inner = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Uniform choice among type-erased alternatives (`prop_oneof!` backend).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// `Vec` strategy with a length drawn from `size` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The names property tests import (stand-in for `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests: each `#[test]` function's `arg in strategy`
/// parameters are sampled `cases` times and the body re-run per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property failed on case {} of {}: {}",
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Assert inside a property body; failures abort only the current case's
/// closure (there is no shrinking in this shim, so the harness panics
/// with the message immediately after).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Num(u8),
        Flag(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            p in prop_oneof![
                (0u8..10).prop_map(Pick::Num),
                any::<bool>().prop_map(Pick::Flag),
            ]
        ) {
            match p {
                Pick::Num(n) => prop_assert!(n < 10),
                Pick::Flag(_) => {}
            }
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn deterministic_sampling_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0usize..100;
        let xs: Vec<usize> = (0..16).map(|_| s.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..16).map(|_| s.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
