//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the two marker traits and the derive-macro names the workspace imports
//! (`use serde::{Deserialize, Serialize}` + `#[derive(..)]`). The derives
//! expand to nothing and the traits carry no methods: the workspace only
//! *annotates* its types for downstream consumers and never serializes
//! internally. Replacing this path dependency with crates.io `serde`
//! (features = ["derive"]) restores full serialization support without
//! any source change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize` (no methods; see crate docs).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; see crate docs).
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
