//! Offline stand-in for `serde_derive`: the derive macros accept the same
//! attribute grammar but expand to nothing. The workspace derives
//! `Serialize`/`Deserialize` on its public data types so downstream users
//! can swap in the real `serde` without touching this code; nothing inside
//! the workspace performs serialization, so no-op expansions are enough.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
