//! Robustness properties of the front end: arbitrary input never
//! panics, and structurally valid random programs always compile to
//! valid IR that simulates deterministically.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer+parser+sema pipeline returns Ok or Err — never panics —
    /// on arbitrary byte soup.
    #[test]
    fn compiler_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let _ = asip_explorer::frontend::compile("fuzz", &src);
    }

    /// Same, biased toward token-shaped noise so the parser gets deeper.
    #[test]
    fn compiler_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("int".to_string()),
                Just("float".to_string()),
                Just("void".to_string()),
                Just("if".to_string()),
                Just("for".to_string()),
                Just("while".to_string()),
                Just("return".to_string()),
                Just("main".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("*".to_string()),
                Just("x".to_string()),
                Just("42".to_string()),
                Just("1.5".to_string()),
            ],
            0..60
        )
    ) {
        let src = words.join(" ");
        let _ = asip_explorer::frontend::compile("fuzz", &src);
    }
}

/// Generated well-formed kernels: vary loop bounds, constants and the
/// expression mix, and check the whole pipeline end to end.
#[derive(Debug, Clone)]
struct KernelShape {
    n: usize,
    scale: i64,
    offset: i64,
    use_float: bool,
    taps: usize,
}

fn kernel_shape() -> impl Strategy<Value = KernelShape> {
    (2usize..32, 1i64..9, 0i64..5, any::<bool>(), 1usize..4).prop_map(
        |(n, scale, offset, use_float, taps)| KernelShape {
            n,
            scale,
            offset,
            use_float,
            taps,
        },
    )
}

fn render(shape: &KernelShape) -> String {
    let KernelShape {
        n,
        scale,
        offset,
        use_float,
        taps,
    } = shape;
    if *use_float {
        let terms: Vec<String> = (0..*taps)
            .map(|t| format!("x[(i + {t}) % {n}] * {scale}.5"))
            .collect();
        format!(
            r#"
            input float x[{n}];
            output float y[{n}];
            void main() {{
                int i;
                for (i = 0; i < {n}; i = i + 1) {{
                    y[i] = {} + {offset}.0;
                }}
            }}
            "#,
            terms.join(" + ")
        )
    } else {
        let terms: Vec<String> = (0..*taps)
            .map(|t| format!("x[(i + {t}) % {n}] * {scale}"))
            .collect();
        format!(
            r#"
            input int x[{n}];
            output int y[{n}];
            void main() {{
                int i;
                for (i = 0; i < {n}; i = i + 1) {{
                    y[i] = {} + {offset};
                }}
            }}
            "#,
            terms.join(" + ")
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_kernels_run_the_full_pipeline(shape in kernel_shape()) {
        use asip_explorer::prelude::*;
        use asip_explorer::sim::{DataGen, DataSet, Simulator};

        let src = render(&shape);
        let program = asip_explorer::frontend::compile("gen", &src).expect("well-formed source");
        program.validate().expect("valid IR");

        let mut data = DataSet::new();
        let mut gen = DataGen::new(11);
        if shape.use_float {
            data.bind_floats("x", gen.floats(shape.n, -1.0, 1.0));
        } else {
            data.bind_ints("x", gen.ints(shape.n, -100, 100));
        }
        let exec = Simulator::new(&program).run(&data).expect("simulates");
        prop_assert!(exec.profile.total_ops() > 0);

        for level in OptLevel::all() {
            let graph = Optimizer::new(level).run(&program, &exec.profile);
            graph.check_invariants().expect("graph invariants");
            let report = SequenceDetector::new(DetectorConfig::default()).analyze(&graph);
            for (_, stats) in report.entries() {
                prop_assert!(stats.frequency <= 100.0 + 1e-9);
            }
        }
    }
}
