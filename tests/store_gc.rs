//! Tier-stack integration tests: GC budgets must actually bound the
//! store (and stay safe against live readers), a warm `explore_all`
//! must serve from prefetch-staged bytes with zero recomputes, and a
//! custom tier must be a drop-in through `Explorer::with_tier`.

use asip_explorer::prelude::*;
use asip_explorer::{MemoryTier, TierRead};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asip-gc-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// The acceptance path: a config sweep overflows a byte budget, `gc`
/// shrinks the store below it (oldest-written entries first), and a
/// subsequent run is still *correct* — it recomputes what was evicted,
/// returns identical results, and heals the store back to warm.
#[test]
fn gc_bounds_a_config_sweep_and_the_next_run_recomputes_and_heals() {
    let dir = store_dir("sweep");
    let tweaked = OptConfig {
        unroll: 4,
        ..OptConfig::default()
    };

    let baseline = Explorer::new().with_store(&dir);
    let expected_a = baseline
        .analyze_with(
            "sewha",
            OptLevel::Pipelined,
            OptConfig::default(),
            DetectorConfig::default(),
        )
        .expect("analyzes");
    let expected_b = baseline
        .analyze_with(
            "sewha",
            OptLevel::Pipelined,
            tweaked,
            DetectorConfig::default(),
        )
        .expect("analyzes");

    let store = baseline.store().expect("attached");
    let full = store.snapshot();
    assert!(full.len() >= 4, "the sweep persisted several artifacts");
    // a byte budget smaller than the sweep: GC must shrink below it
    let budget = full.total_bytes() / 2;
    let report = store.gc(&StoreGcConfig::default().with_max_bytes(budget));
    assert!(report.evicted_entries > 0, "{report:?}");
    assert!(report.retained_bytes <= budget, "{report:?}");
    assert!(store.snapshot().total_bytes() <= budget);
    // and the eviction count surfaces through the session's CacheStats
    assert_eq!(
        baseline.cache_stats().total_gc_evictions(),
        report.evicted_entries
    );
    assert!(baseline.cache_stats().total_disk_bytes() <= budget);

    // a fresh session re-runs the sweep: partial recompute, identical
    // results, store healed
    let replay = Explorer::new().with_store(&dir);
    let again_a = replay
        .analyze_with(
            "sewha",
            OptLevel::Pipelined,
            OptConfig::default(),
            DetectorConfig::default(),
        )
        .expect("replays");
    let again_b = replay
        .analyze_with(
            "sewha",
            OptLevel::Pipelined,
            tweaked,
            DetectorConfig::default(),
        )
        .expect("replays");
    assert_eq!(expected_a.report, again_a.report);
    assert_eq!(expected_b.report, again_b.report);
    assert!(
        replay.cache_stats().total_misses() > 0,
        "evicted stages recomputed: {}",
        replay.cache_stats()
    );

    // healed: a third session replays the whole sweep with zero
    // recomputes
    let third = Explorer::new().with_store(&dir);
    for config in [OptConfig::default(), tweaked] {
        third
            .analyze_with(
                "sewha",
                OptLevel::Pipelined,
                config,
                DetectorConfig::default(),
            )
            .expect("warm replay");
    }
    assert_eq!(third.cache_stats().total_misses(), 0);
    fs::remove_dir_all(&dir).ok();
}

/// GC deleting entries under a live reader must never corrupt a hit:
/// every load observes either a miss (recompute in real sessions) or
/// the complete, checksum-valid value — never torn bytes.
#[test]
fn gc_racing_concurrent_readers_never_corrupts_a_hit() {
    let dir = store_dir("race");
    let store = ArtifactStore::open(&dir);
    let value: Vec<u64> = (0..512).collect();
    store.save(Stage::Compile, 1, &value);

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..200 {
                store.gc(&StoreGcConfig::default().with_max_bytes(0));
                store.save(Stage::Compile, 1, &value);
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            scope.spawn(|| {
                let mut hits = 0u32;
                while !done.load(Ordering::Acquire) {
                    if let Some(read) = store.load::<Vec<u64>>(Stage::Compile, 1) {
                        assert_eq!(read, value, "a hit must always be the full value");
                        hits += 1;
                    }
                }
                let _ = hits;
            });
        }
    });
    let stats = store.disk_totals();
    assert_eq!(stats.corrupt, 0, "no torn reads: {stats:?}");
    fs::remove_dir_all(&dir).ok();
}

/// A warm `explore_all` stages every persisted artifact in parallel
/// before fan-out and recomputes nothing; `prefetch_hits` makes the
/// path observable per stage.
#[test]
fn warm_explore_all_prefetches_with_zero_recomputes() {
    let dir = store_dir("prefetch");
    // level-0 feedback end to end keeps the test quick without losing
    // any stage coverage
    let constraints = DesignConstraints {
        opt_level: OptLevel::None,
        ..DesignConstraints::default()
    };
    let session = || {
        Explorer::new()
            .with_levels([OptLevel::None])
            .with_constraints(constraints)
            .with_store(&dir)
    };

    let first = session();
    let cold = first.explore_all().expect("cold run");
    assert!(first.cache_stats().total_disk_writes() > 0);
    assert_eq!(
        first.cache_stats().total_prefetch_hits(),
        0,
        "nothing to stage on a cold store"
    );

    let warm = session();
    let replay = warm.explore_all().expect("warm run");
    let stats = warm.cache_stats();
    assert_eq!(stats.total_misses(), 0, "zero recomputes: {stats}");
    for stage in [
        Stage::Compile,
        Stage::Profile,
        Stage::Schedule,
        Stage::Analyze,
        Stage::Design,
        Stage::Evaluate,
    ] {
        assert!(
            stats.stage(stage).prefetch_hits > 0,
            "stage {stage} should be served from prefetched bytes: {stats}"
        );
    }
    // prefetched requests skip the request-path disk read entirely:
    // every disk hit happened inside the parallel prefetcher
    assert_eq!(stats.total_prefetch_hits(), stats.total_disk_hits());
    assert_eq!(cold.len(), replay.len());
    for (a, b) in cold.iter().zip(replay.iter()) {
        assert_eq!(a.evaluated.evaluation, b.evaluated.evaluation);
    }

    // a memory-warm session re-reads nothing: the typed caches already
    // hold every artifact, so a further explore_all touches no tier
    let before = warm.cache_stats();
    warm.explore_all().expect("memory-warm run");
    let after = warm.cache_stats();
    assert_eq!(after.total_disk_hits(), before.total_disk_hits());
    assert_eq!(after.total_prefetch_hits(), before.total_prefetch_hits());
    assert_eq!(after.total_misses(), 0);

    // prefetch validates names even when it cannot stage
    assert!(matches!(
        Explorer::new().prefetch(&["not-a-benchmark"]),
        Err(ExplorerError::UnknownBenchmark { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

/// The pluggable-tier contract: a custom tier (here an in-memory
/// stand-in for a shared remote cache) drops into the stack via
/// `with_tier` with nothing but the trait impl, receives write-through,
/// and serves a second session with zero recomputes.
#[derive(Debug)]
struct RemoteLike(MemoryTier);

impl ArtifactTier for RemoteLike {
    fn name(&self) -> &'static str {
        "remote-like"
    }
    fn get(&self, stage: Stage, key: u64) -> TierRead {
        self.0.get(stage, key)
    }
    fn put(&self, stage: Stage, key: u64, payload: &[u8]) -> bool {
        self.0.put(stage, key, payload)
    }
    fn contains(&self, stage: Stage, key: u64) -> bool {
        self.0.contains(stage, key)
    }
    fn stats(&self, stage: Stage) -> TierStats {
        self.0.stats(stage)
    }
    fn persistent(&self) -> bool {
        true // unlike the staging buffer, this tier receives write-through
    }
    fn reset_counters(&self) {
        self.0.reset_counters()
    }
}

#[test]
fn a_custom_tier_is_a_drop_in_through_with_tier() {
    let remote = Arc::new(RemoteLike(MemoryTier::with_budget(64 << 20)));

    let first = Explorer::new().with_tier(remote.clone());
    let computed = first.profile("sewha").expect("computes");
    assert!(remote.totals().writes > 0, "write-through reached the tier");
    assert!(first.cache_stats().profile.misses > 0);

    // a second session sharing the tier replays without recomputing
    let second = Explorer::new().with_tier(remote.clone());
    let replayed = second.profile("sewha").expect("served by the tier");
    assert_eq!(second.cache_stats().total_misses(), 0);
    assert_eq!(computed.profile, replayed.profile);
}

#[test]
fn with_store_gc_enforces_a_standing_budget_at_attach_time() {
    let dir = store_dir("attach");

    // populate a store well past the standing budget
    let warm = Explorer::new().with_store(&dir);
    warm.explore("sewha").expect("populates");
    warm.explore("fir").expect("populates");
    let before = warm.store().expect("attached").snapshot();
    assert!(before.len() > 2, "several artifacts persisted");
    let budget = before.total_bytes() / 3;
    drop(warm);

    // a long-lived host reattaches with a standing budget: the attach
    // itself runs one budgeted GC pass, counted like any other
    let session =
        Explorer::new().with_store_gc(&dir, StoreGcConfig::default().with_max_bytes(budget));
    let after = session.store().expect("attached").snapshot();
    assert!(
        after.total_bytes() <= budget,
        "attach-time GC enforced the budget ({} > {budget})",
        after.total_bytes()
    );
    assert!(after.len() < before.len());
    assert!(
        session.cache_stats().total_gc_evictions() > 0,
        "attach-time evictions surface in CacheStats"
    );

    // the session still serves every request correctly (evicted
    // entries recompute and heal)
    session
        .explore("sewha")
        .expect("recomputes what GC dropped");

    // an in-budget reattach is a no-op
    let calm =
        Explorer::new().with_store_gc(&dir, StoreGcConfig::default().with_max_bytes(u64::MAX));
    assert_eq!(calm.cache_stats().total_gc_evictions(), 0);

    fs::remove_dir_all(&dir).ok();
}
