//! Differential tests for the pre-decoded simulator engine: for every
//! Table-1 benchmark (and for the design-rewritten variants carrying
//! chained super-instructions), the engine must produce *byte-identical*
//! profiles, memories, results and trace streams to the retained
//! reference interpreter (`asip_sim::reference`).

use asip_explorer::sim::{ClassMix, Engine, ReferenceSimulator, RingTrace, SimError};
use asip_explorer::synth::{DesignConstraints, Rewriter};
use asip_explorer::{opt::OptLevel, Explorer};
use std::sync::Arc;

/// Assert the engine and the reference agree on one program + data set.
fn assert_differential(program: &asip_explorer::ir::Program, data: &asip_explorer::sim::DataSet) {
    let reference = ReferenceSimulator::new(program)
        .run(data)
        .expect("reference runs");
    let engine = Engine::new(Arc::new(program.clone()));
    let decoded = engine.run(data).expect("engine runs");
    assert_eq!(
        decoded.profile, reference.profile,
        "{}: profiles must be byte-identical",
        program.name
    );
    assert_eq!(
        decoded.memory, reference.memory,
        "{}: final memories must be byte-identical",
        program.name
    );
    assert_eq!(
        decoded.result, reference.result,
        "{}: results must agree",
        program.name
    );
}

#[test]
fn all_table1_benchmarks_agree_with_the_reference() {
    let session = Explorer::new();
    for bench in session.registry().iter() {
        let program = session.compile(bench.name).expect("compiles").program;
        assert_differential(&program, &bench.dataset());
    }
}

#[test]
fn rewritten_programs_agree_at_every_opt_level() {
    // the design stage's rewritten programs carry Chained
    // super-instructions — the engine's generic-domain path; check all
    // twelve benchmarks under the designs each feedback level selects
    let session = Explorer::new();
    for &level in &OptLevel::all() {
        let constraints = DesignConstraints {
            opt_level: level,
            ..DesignConstraints::default()
        };
        for bench in session.registry().iter() {
            let designed = session
                .design_with(bench.name, constraints, session.detector())
                .expect("designs");
            let mut rewritten = session
                .compile(bench.name)
                .expect("cached")
                .program
                .as_ref()
                .clone();
            Rewriter::new(designed.design.as_ref().clone()).apply(&mut rewritten);
            assert_differential(&rewritten, &bench.dataset());
        }
    }
}

#[test]
fn traced_event_streams_are_identical() {
    let session = Explorer::new();
    // one float-heavy, one int-heavy, one with non-trivial control flow
    for name in ["sewha", "edge", "flatten"] {
        let program = session.compile(name).expect("compiles").program;
        let bench = session.benchmark(name).expect("registered");
        let data = bench.dataset();

        let mut ref_trace = RingTrace::new(4096);
        let reference = ReferenceSimulator::new(&program)
            .run_traced(&data, &mut ref_trace)
            .expect("reference runs");
        let engine = Engine::new(Arc::clone(&program));
        let mut eng_trace = RingTrace::new(4096);
        let traced = engine
            .run_traced(&data, &mut eng_trace)
            .expect("engine runs");

        assert_eq!(traced.profile, reference.profile);
        assert_eq!(eng_trace.len(), ref_trace.len(), "{name}: event counts");
        for (a, b) in eng_trace.events().zip(ref_trace.events()) {
            assert_eq!(a, b, "{name}: trace events must match step by step");
        }

        // the class-mix sink (a second TraceSink impl) agrees too
        let mut ref_mix = ClassMix::for_program(&program);
        ReferenceSimulator::new(&program)
            .run_traced(&data, &mut ref_mix)
            .expect("runs");
        let mut eng_mix = ClassMix::for_program(&program);
        engine.run_traced(&data, &mut eng_mix).expect("runs");
        assert_eq!(eng_mix.counts(), ref_mix.counts(), "{name}: class mixes");
    }
}

#[test]
fn traced_and_untraced_engine_runs_agree() {
    let session = Explorer::new();
    let program = session.compile("fir").expect("compiles").program;
    let data = session.benchmark("fir").expect("registered").dataset();
    let engine = Engine::new(Arc::clone(&program));
    let plain = engine.run(&data).expect("runs");
    let mut trace = RingTrace::new(8);
    let traced = engine.run_traced(&data, &mut trace).expect("runs");
    assert_eq!(plain.profile, traced.profile);
    assert_eq!(plain.memory, traced.memory);
    assert_eq!(plain.result, traced.result);
    assert!(!trace.is_empty());
}

#[test]
fn step_limit_errors_agree_with_the_reference_on_real_programs() {
    let session = Explorer::new();
    let program = session.compile("fir").expect("compiles").program;
    let data = session.benchmark("fir").expect("registered").dataset();
    let total = Engine::new(Arc::clone(&program))
        .run(&data)
        .expect("runs")
        .profile
        .total_ops();
    // probe around several interesting limits, including mid-run
    for limit in [0, 1, total / 2, total - 1, total, total + 1] {
        let reference = ReferenceSimulator::new(&program)
            .with_step_limit(limit)
            .run(&data);
        let engine = Engine::new(Arc::clone(&program))
            .with_step_limit(limit)
            .run(&data);
        match (reference, engine) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.profile, b.profile, "limit {limit}");
                assert_eq!(a.memory, b.memory, "limit {limit}");
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "limit {limit}");
                assert!(matches!(a, SimError::StepLimit { .. }));
            }
            (a, b) => panic!("diverged at limit {limit}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn run_batch_is_byte_identical_to_sequential_runs_on_the_full_corpus() {
    // every corpus benchmark (12 Table-1 + 24 generated), three
    // seed-varied datasets each, through one pooled run state: the
    // batch must reproduce sequential `run` calls byte for byte —
    // profiles, memories, results
    for bench in asip_explorer::benchmarks::full_registry().iter() {
        let program = bench.compile().expect("compiles");
        let engine = Engine::new(Arc::new(program));
        let datasets: Vec<_> = (1..=3u64).map(|s| bench.dataset_with_seed(s)).collect();
        let refs: Vec<&_> = datasets.iter().collect();
        let batch = engine.run_batch(&refs).expect("batch runs");
        assert_eq!(batch.len(), datasets.len());
        for (data, batched) in datasets.iter().zip(&batch) {
            let single = engine.run(data).expect("single run");
            assert_eq!(batched.profile, single.profile, "{}: profiles", bench.name);
            assert_eq!(batched.memory, single.memory, "{}: memories", bench.name);
            assert_eq!(batched.result, single.result, "{}: results", bench.name);
        }
    }
}

#[test]
fn session_engines_decode_once_and_reset_drops_them() {
    let session = Explorer::new().with_levels([OptLevel::Pipelined]);
    let first = session.engine("sewha").expect("engine");
    let second = session.engine("sewha").expect("engine");
    assert!(
        Arc::ptr_eq(&first, &second),
        "repeated requests share one decoded engine"
    );
    // the engine wraps the same compiled program the session caches
    let compiled = session.compile("sewha").expect("cached").program;
    assert!(Arc::ptr_eq(first.program(), &compiled));
    // profile and evaluate ride on it (no extra compile misses)
    session.profile("sewha").expect("profiles");
    session.evaluate("sewha").expect("evaluates");
    assert_eq!(session.cache_stats().compile.misses, 1);
    session.reset();
    let fresh = session.engine("sewha").expect("engine");
    assert!(
        !Arc::ptr_eq(&first, &fresh),
        "reset drops cached engines with the rest of the ephemeral state"
    );
}
