//! End-to-end tests of the design-space stage: the incremental
//! pareto-frontier sweep shares optimizer runs across the whole
//! constraint grid, per-config winners match or beat the single-config
//! API, warm sweeps replay with zero recomputes through the disk and
//! remote tiers, and random grids keep the feasibility and
//! non-domination invariants.

use asip_explorer::prelude::*;
use asip_explorer::remote::{serve, Endpoint, ServeOptions};
use asip_explorer::synth::AsipDesign;
use asip_explorer::Explorer;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asip-design-space-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The bench harness's 256-config grid: 8 area budgets × 4 clocks ×
/// 4 extension caps × 2 feedback levels.
fn grid_256() -> Vec<DesignConstraints> {
    let mut grid = Vec::with_capacity(256);
    for &opt_level in &[OptLevel::Pipelined, OptLevel::PipelinedRenamed] {
        for budget_step in 0..8u32 {
            for clock_step in 0..4u32 {
                for ext_cap in 1..=4usize {
                    grid.push(DesignConstraints {
                        area_budget: 750.0 * f64::from(budget_step + 1),
                        clock_ns: 25.0 + 10.0 * f64::from(clock_step),
                        max_extensions: ext_cap,
                        opt_level,
                    });
                }
            }
        }
    }
    grid
}

/// A small grid over two levels, for the cross-session tests.
fn small_grid() -> Vec<DesignConstraints> {
    [1000.0, 4000.0]
        .iter()
        .flat_map(|&area_budget| {
            [OptLevel::Pipelined, OptLevel::PipelinedRenamed]
                .into_iter()
                .map(move |opt_level| DesignConstraints {
                    area_budget,
                    opt_level,
                    ..DesignConstraints::default()
                })
        })
        .collect()
}

fn total_benefit(design: &AsipDesign) -> f64 {
    design.extensions.iter().map(|e| e.expected_benefit).sum()
}

#[test]
fn sweep_runs_one_optimizer_run_per_distinct_benchmark_level_pair() {
    let session = Explorer::new();
    let grid = grid_256();
    let spaced = session.design_space(&grid).expect("cold sweep runs");
    assert_eq!(spaced.space.len(), 256, "every distinct config answered");
    assert_eq!(spaced.benchmarks.len(), session.registry().len());

    // the acceptance invariant: 256 configs over two feedback levels
    // cost exactly one optimizer run per distinct (benchmark, level)
    // pair — never one per config
    let stats = session.cache_stats();
    let distinct_pairs = (session.registry().len() * 2) as u64;
    assert_eq!(
        stats.schedule.misses, distinct_pairs,
        "one optimizer run per distinct (benchmark, level) pair: {stats}"
    );
    assert_eq!(stats.design_space.misses, 1, "the grid is one artifact");

    // replaying the identical grid is a pure stage-cache hit
    let again = session.design_space(&grid).expect("warm sweep replays");
    let stats = session.cache_stats();
    assert_eq!(
        stats.schedule.misses, distinct_pairs,
        "no new runs: {stats}"
    );
    assert_eq!(stats.design_space.hits, 1);
    assert_eq!(again.space, spaced.space);
}

#[test]
fn sweep_winners_match_or_beat_single_config_designs() {
    let session = Explorer::new();
    let names = ["fir", "sewha"];
    let grid: Vec<DesignConstraints> = [1000.0, 2000.0, 6000.0]
        .iter()
        .flat_map(|&area_budget| {
            [2usize, 4]
                .into_iter()
                .map(move |max_extensions| DesignConstraints {
                    area_budget,
                    max_extensions,
                    ..DesignConstraints::default()
                })
        })
        .collect();
    let spaced = session
        .design_space_with(&names, &grid, DetectorConfig::default())
        .expect("sweep runs");
    assert_eq!(spaced.space.len(), grid.len());
    for (cons, design) in &spaced.space.configs {
        // winners are feasible under their own config...
        assert!(design.extension_area <= cons.area_budget + 1e-9);
        assert!(design.len() <= cons.max_extensions);
        // ...and never worse than the single-config suite design
        let single = session
            .design_suite_with(&names, *cons, DetectorConfig::default())
            .expect("single config designs")
            .design;
        assert!(
            total_benefit(design) + 1e-6 >= total_benefit(&single),
            "budget {}: sweep winner ({:.3}%) lost to single-config design ({:.3}%)",
            cons.area_budget,
            total_benefit(design),
            total_benefit(&single),
        );
    }
}

#[test]
fn warm_sweep_replays_from_disk_with_zero_recomputes() {
    let dir = store_dir("disk");
    let names = ["fir", "bspline"];
    let grid = small_grid();
    let cold_space = {
        let cold = Explorer::new().with_store(&dir);
        let spaced = cold
            .design_space_with(&names, &grid, DetectorConfig::default())
            .expect("cold sweep populates the store");
        assert!(cold.cache_stats().total_misses() > 0, "cold run computes");
        spaced.space
    };

    // a brand-new process over the same store: the whole grid artifact
    // decodes from disk, so nothing recomputes — not even a schedule
    let warm = Explorer::new().with_store(&dir);
    let spaced = warm
        .design_space_with(&names, &grid, DetectorConfig::default())
        .expect("warm sweep replays");
    let stats = warm.cache_stats();
    assert_eq!(stats.total_misses(), 0, "zero recomputes: {stats}");
    assert!(
        stats.design_space.disk_hits >= 1,
        "served from disk: {stats}"
    );
    assert_eq!(spaced.space, cold_space, "decoded space round-trips");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_sweep_is_served_over_the_wire_with_zero_recomputes() {
    let dir = store_dir("remote");
    let names = ["fir", "bspline"];
    let grid = small_grid();
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    let server_space = server_session
        .design_space_with(&names, &grid, DetectorConfig::default())
        .expect("server warms up")
        .space;
    let handle = serve(
        server_session,
        &Endpoint::Tcp("127.0.0.1:0".into()),
        ServeOptions::default(),
    )
    .expect("daemon binds loopback");

    // a storeless client: the grid artifact arrives over the wire
    let client = Explorer::new()
        .with_remote(&handle.endpoint().to_string(), RetryPolicy::default())
        .expect("daemon endpoint parses");
    let spaced = client
        .design_space_with(&names, &grid, DetectorConfig::default())
        .expect("sweep served remotely");
    let stats = client.cache_stats();
    assert_eq!(stats.total_misses(), 0, "zero recomputes: {stats}");
    assert!(stats.total_remote_hits() > 0, "served remotely: {stats}");
    assert_eq!(stats.remote.errors, 0, "no wire failures: {stats}");
    assert_eq!(spaced.space, server_space);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_config_grid_is_an_error() {
    let session = Explorer::new();
    assert!(matches!(
        session.design_space(&[]),
        Err(ExplorerError::EmptySuite)
    ));
}

#[test]
fn duplicate_and_reordered_configs_share_one_artifact() {
    let session = Explorer::new();
    let grid = small_grid();
    let spaced = session
        .design_space_with(&["fir"], &grid, DetectorConfig::default())
        .expect("sweep runs");

    // the same grid reversed and duplicated canonicalizes to the same
    // key — a pure cache hit, bit-identical result
    let mut noisy: Vec<DesignConstraints> = grid.iter().rev().copied().collect();
    noisy.extend(grid.iter().copied());
    let again = session
        .design_space_with(&["fir"], &noisy, DetectorConfig::default())
        .expect("noisy grid replays");
    assert_eq!(again.space, spaced.space);
    let stats = session.cache_stats();
    assert_eq!(stats.design_space.misses, 1, "one compute: {stats}");
    assert_eq!(stats.design_space.hits, 1, "one replay: {stats}");
}

// -- property tests over random constraint grids -----------------------

fn shared_session() -> &'static Explorer {
    static SESSION: OnceLock<Explorer> = OnceLock::new();
    SESSION.get_or_init(Explorer::new)
}

/// Map four random bytes onto a constraint config spanning degenerate
/// corners: zero budgets, zero extension slots, every feedback level.
fn constraints_from(bytes: (u8, u8, u8, u8)) -> DesignConstraints {
    let (a, c, e, l) = bytes;
    DesignConstraints {
        area_budget: 250.0 * f64::from(a % 16),
        clock_ns: [20.0, 30.0, 40.0, 60.0][(c % 4) as usize],
        max_extensions: (e % 5) as usize,
        opt_level: OptLevel::all()[(l % 3) as usize],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_grids_yield_feasible_non_dominated_spaces(
        recipes in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..8,
        )
    ) {
        let grid: Vec<DesignConstraints> =
            recipes.iter().copied().map(constraints_from).collect();
        let session = shared_session();
        let spaced = session
            .design_space_with(&["fir"], &grid, DetectorConfig::default())
            .expect("sweep runs");
        prop_assert!(!spaced.space.is_empty());
        prop_assert!(spaced.space.len() <= grid.len());

        // every winner respects its own config
        for (cons, design) in &spaced.space.configs {
            prop_assert!(design.extension_area <= cons.area_budget + 1e-9);
            prop_assert!(design.len() <= cons.max_extensions);
        }

        // frontier points of one (level, clock) group never dominate
        // each other
        for p in &spaced.space.frontier {
            for q in &spaced.space.frontier {
                if std::ptr::eq(p, q)
                    || p.level != q.level
                    || p.clock_ns.to_bits() != q.clock_ns.to_bits()
                {
                    continue;
                }
                prop_assert!(
                    !(q.area <= p.area
                        && q.extensions <= p.extensions
                        && q.benefit > p.benefit + 1e-9),
                    "{q:?} dominates {p:?}"
                );
            }
        }

        // caller order cannot matter: the reversed grid is the same
        // canonical artifact
        let reversed: Vec<DesignConstraints> = grid.iter().rev().copied().collect();
        let again = session
            .design_space_with(&["fir"], &reversed, DetectorConfig::default())
            .expect("reversed grid replays");
        prop_assert_eq!(&again.space, &spaced.space);
    }
}
