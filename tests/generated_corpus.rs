//! The generated corpus as a first-class suite: every corpus program is
//! differentially validated (pre-decoded `Engine` vs
//! `ReferenceSimulator`, byte-identical, at every opt level and under
//! every level's design rewrite), round-trips the textual IR losslessly,
//! and flows through the full `Explorer` pipeline with cross-session
//! store reuse — plus a fresh-seed differential sweep whose volume
//! scales with `ASIP_GEN_SWEEP_SEEDS` (the CI `gen-differential` job
//! runs 500; the tier-1 default keeps local runs fast).

use asip_explorer::gen::{generate, GenConfig, GenTy, GeneratedProgram};
use asip_explorer::ir::parse_program;
use asip_explorer::prelude::*;
use asip_explorer::sim::{DataGen, DataSet, Engine, ReferenceSimulator};
use asip_explorer::synth::{AsipDesigner, Rewriter};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asip-gencorpus-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Assert the engine and the reference agree byte-for-byte on one
/// program + data set.
fn assert_differential(program: &asip_explorer::ir::Program, data: &DataSet, what: &str) {
    let reference = ReferenceSimulator::new(program)
        .run(data)
        .unwrap_or_else(|e| panic!("{what}: reference run failed: {e:?}"));
    let engine = Engine::new(Arc::new(program.clone()))
        .run(data)
        .unwrap_or_else(|e| panic!("{what}: engine run failed: {e:?}"));
    assert_eq!(
        engine.profile, reference.profile,
        "{what}: profiles must be byte-identical"
    );
    assert_eq!(
        engine.memory, reference.memory,
        "{what}: final memories must be byte-identical"
    );
    assert_eq!(
        engine.result, reference.result,
        "{what}: results must agree"
    );
}

#[test]
fn corpus_programs_agree_with_the_reference_at_every_opt_level() {
    // the pinned-seed differential suite: all 24 corpus programs, plain
    // and under the design rewrite each feedback level selects
    let session = Explorer::new().with_registry(full_registry());
    for bench in generated_corpus() {
        let program = session.compile(bench.name).expect("compiles").program;
        let data = bench.dataset();
        assert_differential(&program, &data, bench.name);
        for &level in &OptLevel::all() {
            let constraints = asip_explorer::synth::DesignConstraints {
                opt_level: level,
                ..Default::default()
            };
            let designed = session
                .design_with(bench.name, constraints, session.detector())
                .expect("designs");
            let mut rewritten = program.as_ref().clone();
            Rewriter::new(designed.design.as_ref().clone()).apply(&mut rewritten);
            assert_differential(
                &rewritten,
                &data,
                &format!("{} rewritten at {level:?}", bench.name),
            );
        }
    }
}

#[test]
fn corpus_programs_round_trip_the_textual_ir() {
    for bench in generated_corpus() {
        let program = bench
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let text = program.to_string();
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: printed IR must parse: {e}", bench.name));
        assert_eq!(
            program, reparsed,
            "{}: textual IR round-trip must be lossless",
            bench.name
        );
    }
}

#[test]
fn store_warm_corpus_explore_all_does_zero_recomputes() {
    let dir = store_dir("warm");

    // session 1: the full Table-1 + generated registry, cold
    let first = Explorer::new()
        .with_registry(full_registry())
        .with_store(&dir);
    let cold = first.explore_all().expect("cold explore");
    assert_eq!(cold.len(), 12 + 24);
    assert!(
        first.cache_stats().compile.misses > 0,
        "cold store computes"
    );

    // session 2: a separate process stand-in sharing the directory —
    // the corpus replays entirely from disk, zero recomputes anywhere
    let second = Explorer::new()
        .with_registry(full_registry())
        .with_store(&dir);
    let warm = second.explore_all().expect("warm explore");
    assert_eq!(warm.len(), cold.len());
    let stats = second.cache_stats();
    for stage in Stage::all() {
        assert_eq!(
            stats.stage(stage).misses,
            0,
            "stage {stage} recomputed despite a warm store: {stats}"
        );
    }
    assert!(stats.compile.disk_hits > 0, "{stats}");
    for (a, b) in cold.iter().zip(warm.iter()) {
        assert_eq!(a.compiled.program, b.compiled.program);
        assert_eq!(a.evaluated.evaluation, b.evaluated.evaluation);
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn suite_tags_keep_store_keys_from_colliding() {
    // two benchmarks identical in name, source and data spec, differing
    // ONLY in suite: with the suite tag folded into benchmark identity,
    // the second session must not be served the first session's artifact
    let dir = store_dir("suite-tag");
    const SOURCE: &str = r#"
        input int x[4];
        output int y[4];
        void main() {
            int i;
            for (i = 0; i < 4; i = i + 1) { y[i] = x[i] * 3; }
        }
    "#;
    let twin = |suite: Suite| Benchmark {
        name: "twin",
        description: "same bytes, different suite",
        paper_lines: 6,
        data_description: "4 random integers",
        source: SOURCE,
        data: DataSpec::Ints { name: "x", n: 4 },
        suite,
    };

    let user = Explorer::new()
        .with_benchmark(twin(Suite::User))
        .with_store(&dir);
    user.compile("twin").expect("compiles");
    assert_eq!(user.cache_stats().compile.misses, 1);

    // same name + bytes under another suite: a MISS, not a disk hit
    let regress = Explorer::new()
        .with_benchmark(twin(Suite::Regress))
        .with_store(&dir);
    regress.compile("twin").expect("compiles");
    let stats = regress.cache_stats();
    assert_eq!(
        stats.compile.disk_hits, 0,
        "different suites must never share artifacts: {stats}"
    );
    assert_eq!(stats.compile.misses, 1, "{stats}");

    // positive control: the same suite DOES replay from disk
    let replay = Explorer::new()
        .with_benchmark(twin(Suite::User))
        .with_store(&dir);
    replay.compile("twin").expect("compiles");
    let stats = replay.cache_stats();
    assert_eq!(stats.compile.misses, 0, "{stats}");
    assert_eq!(stats.compile.disk_hits, 1, "{stats}");
    fs::remove_dir_all(&dir).ok();
}

/// Shape rotation for the fresh-seed sweep: cover the knob space while
/// keeping each program small enough that hundreds of seeds stay inside
/// a CI wall-clock budget.
fn sweep_config(i: u64) -> GenConfig {
    let small = GenConfig::small();
    match i % 4 {
        0 => small,
        1 => GenConfig {
            float_share: 0,
            float_arrays: 0,
            chain_density: 70,
            ..small
        },
        2 => GenConfig {
            loop_depth: 0,
            float_share: 60,
            ..small
        },
        _ => GenConfig {
            loop_depth: 3,
            array_len: 32,
            statements: 20,
            ..small
        },
    }
}

fn sweep_dataset(prog: &GeneratedProgram, seed: u64) -> DataSet {
    let mut gen = DataGen::new(seed);
    let mut data = DataSet::new();
    for input in &prog.inputs {
        match input.ty {
            GenTy::Int => {
                data.bind_ints(input.name.clone(), gen.ints(input.len, -128, 127));
            }
            GenTy::Float => {
                data.bind_floats(input.name.clone(), gen.floats(input.len, -1.0, 1.0));
            }
        }
    }
    data
}

#[test]
fn fresh_seed_sweep_is_byte_identical_at_all_levels() {
    // volume knob: tier-1 default keeps local runs quick; the CI
    // gen-differential job sets ASIP_GEN_SWEEP_SEEDS=500
    let seeds: u64 = std::env::var("ASIP_GEN_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    // distinct from the corpus seed space: these are *fresh* programs
    let base = 0xA51F_0000_0000_0000u64;
    for i in 0..seeds {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let prog = generate(seed, &sweep_config(i));
        let program = asip_explorer::frontend::compile(&prog.name, &prog.source)
            .unwrap_or_else(|e| panic!("sweep seed {i}: compile failed: {e}\n{}", prog.source));
        let data = sweep_dataset(&prog, seed);
        assert_differential(&program, &data, &format!("sweep seed {i}"));

        // and under each level's design rewrite
        let profile = ReferenceSimulator::new(&program)
            .run(&data)
            .expect("profiled")
            .profile;
        for &level in &OptLevel::all() {
            let constraints = asip_explorer::synth::DesignConstraints {
                opt_level: level,
                ..Default::default()
            };
            let design = AsipDesigner::new(constraints).design_for(&program, &profile);
            let mut rewritten = program.clone();
            Rewriter::new(design).apply(&mut rewritten);
            assert_differential(
                &rewritten,
                &data,
                &format!("sweep seed {i} rewritten at {level:?}"),
            );
        }
    }
}
