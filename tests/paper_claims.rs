//! The paper's headline experimental claims, asserted as tests. These
//! mirror what EXPERIMENTS.md documents: we check the *shape* of each
//! result (who wins, which direction each optimization level moves),
//! not the authors' absolute percentages.

use asip_explorer::chains::combine;
use asip_explorer::prelude::*;

/// A representative slice of the suite (all the Table-3 benchmarks plus
/// the two float filters), small enough for debug-profile CI.
const SUITE: &[&str] = &["sewha", "feowf", "bspline", "edge", "iir", "fir", "flatten"];

fn combined_at(level: OptLevel) -> SequenceReport {
    let detector = SequenceDetector::new(DetectorConfig::default());
    let reports: Vec<SequenceReport> = SUITE
        .iter()
        .map(|name| {
            let benches = registry();
            let bench = benches.find(name).expect("built-in");
            let program = bench.compile().expect("compiles");
            let profile = bench.profile(&program).expect("simulates");
            let graph = Optimizer::new(level).run(&program, &profile);
            detector.analyze(&graph)
        })
        .collect();
    combine(&reports)
}

#[test]
fn table2_add_multiply_is_exposed_by_optimization() {
    // paper Table 2: add-multiply 2.25% -> 13.78% from level 0 to 1
    let am: Signature = "add-multiply".parse().expect("parses");
    let f0 = combined_at(OptLevel::None).frequency_of(&am);
    let f1 = combined_at(OptLevel::Pipelined).frequency_of(&am);
    assert!(
        f1 > 1.5 * f0,
        "add-multiply should be exposed by pipelining: {f0:.2}% -> {f1:.2}%"
    );
}

#[test]
fn table2_renaming_hurts_detection() {
    // paper Table 2: level 2 below level 1 for the exposed sequences
    let r1 = combined_at(OptLevel::Pipelined);
    let r2 = combined_at(OptLevel::PipelinedRenamed);
    for sig in ["add-multiply", "add-add", "add-multiply-add"] {
        let s: Signature = sig.parse().expect("parses");
        assert!(
            r2.frequency_of(&s) < r1.frequency_of(&s) + 1e-9,
            "{sig}: renaming should not increase frequency ({:.2}% -> {:.2}%)",
            r1.frequency_of(&s),
            r2.frequency_of(&s)
        );
    }
}

#[test]
fn mac_is_prominent_at_every_level() {
    // the paper's motivating observation: multiply-add (the MAC of DSP
    // processors) ranks near the top everywhere
    for level in OptLevel::all() {
        let report = combined_at(level);
        let in_top5 = report.top(5).any(|(s, _)| s.to_string() == "multiply-add");
        assert!(in_top5, "multiply-add missing from top-5 at {level}");
    }
}

#[test]
fn table3_optimized_coverage_wins_or_ties() {
    // paper Table 3: with compiler feedback, coverage is higher for
    // every reported benchmark
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    let mut strictly_better = 0;
    for name in ["sewha", "feowf", "bspline", "edge", "iir"] {
        let benches = registry();
        let bench = benches.find(name).expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("simulates");
        let no = analyzer
            .analyze(&Optimizer::new(OptLevel::None).run(&program, &profile))
            .coverage();
        let yes = analyzer
            .analyze(&Optimizer::new(OptLevel::Pipelined).run(&program, &profile))
            .coverage();
        assert!(
            yes >= no - 1e-9,
            "{name}: optimized coverage {yes:.2}% below unoptimized {no:.2}%"
        );
        if yes > no + 0.5 {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 2,
        "optimization should strictly improve coverage on several benchmarks"
    );
}

#[test]
fn figures_series_decay_monotonically() {
    // Figures 3-6 plot sorted series; sortedness is the detector's
    // contract and the curves must carry real mass
    for level in OptLevel::all() {
        let report = combined_at(level);
        let series = report.series();
        assert!(series.len() > 10, "enough distinct sequences at {level}");
        for w in series.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(series[0] > 5.0, "top sequence should be significant");
    }
}

#[test]
fn figure1_design_loop_produces_speedup() {
    // the framework promise: feedback-selected chained instructions
    // actually speed up the code that motivated them
    use asip_explorer::synth::{evaluate, DesignConstraints};
    let mut wins = 0;
    for name in ["sewha", "bspline", "iir", "flatten"] {
        let benches = registry();
        let bench = benches.find(name).expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("simulates");
        let design = AsipDesigner::new(DesignConstraints::default()).design_for(&program, &profile);
        let eval = evaluate(&program, &design, &bench.dataset()).expect("evaluates");
        assert!(eval.speedup >= 1.0, "{name}: slowdown {:.3}", eval.speedup);
        if eval.speedup > 1.05 {
            wins += 1;
        }
    }
    assert!(wins >= 3, "most benchmarks should see real speedups");
}
