//! End-to-end tests of the exploration-as-a-service topology: one warm
//! `serve` daemon, storeless clients running the full pipeline off the
//! wire, concurrency, Unix-socket transport, and clean shutdown.

use asip_explorer::prelude::*;
use asip_explorer::remote::{serve, Endpoint, RemoteTier, RetryPolicy, ServeOptions};
use asip_explorer::Explorer;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asip-remote-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn loopback() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".into())
}

/// A storeless client session against `endpoint`.
fn client(endpoint: &Endpoint) -> Explorer {
    Explorer::new()
        .with_remote(&endpoint.to_string(), RetryPolicy::default())
        .expect("daemon endpoint parses")
}

#[test]
fn warm_server_serves_a_storeless_client_with_zero_recomputes() {
    let dir = store_dir("e2e");
    // the daemon's session: compute one benchmark's full pipeline so
    // the store holds every stage artifact
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    server_session.explore("fir").expect("server warms up");
    let server_computes = server_session.cache_stats().total_misses();
    let handle = serve(server_session, &loopback(), ServeOptions::default()).expect("binds");

    // a brand-new storeless process: everything must come off the wire
    let session = client(handle.endpoint());
    assert!(session.store().is_none(), "client is storeless");
    let exploration = session.explore("fir").expect("pipeline served remotely");
    assert!(exploration.speedup() >= 1.0);
    let stats = session.cache_stats();
    assert_eq!(stats.total_misses(), 0, "zero recomputes: {stats}");
    assert!(stats.total_remote_hits() > 0, "served remotely: {stats}");
    assert_eq!(stats.remote.errors, 0, "no wire failures: {stats}");

    // the server computed nothing extra on the client's behalf
    let final_stats = handle.shutdown();
    assert_eq!(final_stats.total_computes(), server_computes);
    assert!(final_stats.hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_client_populates_the_daemon_for_the_next_client() {
    let dir = store_dir("populate");
    // daemon starts cold: nothing precomputed
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    let handle = serve(server_session, &loopback(), ServeOptions::default()).expect("binds");

    // client 1 computes (cold everywhere) and writes through the wire
    let first = client(handle.endpoint());
    first.explore("bspline").expect("cold pipeline");
    let stats1 = first.cache_stats();
    assert!(stats1.total_misses() > 0, "client 1 computes");
    assert!(stats1.total_remote_writes() > 0, "write-through: {stats1}");

    // client 2 is served entirely by what client 1 pushed
    let second = client(handle.endpoint());
    second.explore("bspline").expect("warm pipeline");
    let stats2 = second.cache_stats();
    assert_eq!(stats2.total_misses(), 0, "client 2 recomputes: {stats2}");
    assert!(stats2.total_remote_hits() > 0);

    // the daemon itself never ran a stage
    let final_stats = handle.shutdown();
    assert_eq!(final_stats.total_computes(), 0, "daemon only serves");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_share_work_and_read_identical_bytes() {
    let dir = store_dir("concurrent");
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    server_session.explore("fir").expect("server warms up");
    let server_computes = server_session.cache_stats().total_misses();
    let handle = serve(server_session, &loopback(), ServeOptions::default()).expect("binds");

    // N clients hammer the daemon with the same keys concurrently
    let endpoint = handle.endpoint().clone();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let session = client(&endpoint);
                let exploration = session.explore("fir").expect("served remotely");
                let stats = session.cache_stats();
                (exploration.speedup().to_bits(), stats.total_misses())
            })
        })
        .collect();
    let results: Vec<(u64, u64)> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread completes"))
        .collect();
    // byte-identical artifacts → bit-identical measured speedups
    assert!(results.windows(2).all(|w| w[0].0 == w[1].0));
    assert!(
        results.iter().all(|&(_, misses)| misses == 0),
        "every client served without recompute: {results:?}"
    );
    // single-flight observed fleet-wide: the daemon's stage computes
    // never grew past its own warm-up — no client caused server work,
    // and no artifact was computed more than once anywhere
    let final_stats = handle.shutdown();
    assert_eq!(final_stats.total_computes(), server_computes);
    assert!(final_stats.connections >= 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_serves_end_to_end() {
    let dir = store_dir("unix");
    let sock = std::env::temp_dir().join(format!("asip-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    server_session.explore("fir").expect("server warms up");
    let endpoint = Endpoint::Unix(sock.clone());
    let handle = serve(server_session, &endpoint, ServeOptions::default()).expect("binds");

    let session = client(handle.endpoint());
    session.explore("fir").expect("pipeline over unix socket");
    let stats = session.cache_stats();
    assert_eq!(stats.total_misses(), 0, "served over the socket: {stats}");

    handle.shutdown();
    assert!(!sock.exists(), "socket file cleaned up on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_shutdown_op_stops_and_drains_the_daemon() {
    let dir = store_dir("shutdown");
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    let handle = serve(server_session, &loopback(), ServeOptions::default()).expect("binds");
    let tier = RemoteTier::new(handle.endpoint().clone(), RetryPolicy::default());

    assert!(tier.put(Stage::Compile, 9, b"entry"));
    tier.shutdown_server().expect("daemon acknowledges");
    let final_stats = handle.join();
    assert_eq!(final_stats.puts, 1);

    // the daemon flushed its manifest on the way out: a cold store
    // snapshot (no rescan) already indexes the entry
    let store = ArtifactStore::open(&dir);
    assert!(store.manifest_path().is_file(), "manifest flushed");
    assert_eq!(store.snapshot().len(), 1);

    // and the endpoint is really closed
    let probe = RemoteTier::new(
        handle_endpoint_clone(&tier),
        RetryPolicy {
            attempts: 1,
            timeout: Duration::from_millis(200),
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        },
    );
    assert!(probe.ping().is_err(), "daemon no longer answers");
    let _ = std::fs::remove_dir_all(&dir);
}

fn handle_endpoint_clone(tier: &RemoteTier) -> Endpoint {
    tier.endpoint().clone()
}

#[test]
fn client_with_local_store_prefers_the_remote_tier() {
    // ISSUE topology: remote sits BETWEEN staging and disk — a client
    // with its own (cold) store still reads a warm server first, and
    // write-through lands on both
    let server_dir = store_dir("order-server");
    let client_dir = store_dir("order-client");
    let server_session = Arc::new(Explorer::new().with_store(&server_dir));
    server_session.explore("fir").expect("server warms up");
    let handle = serve(server_session, &loopback(), ServeOptions::default()).expect("binds");

    let session = Explorer::new()
        .with_remote(&handle.endpoint().to_string(), RetryPolicy::default())
        .expect("endpoint parses")
        .with_store(&client_dir);
    let names: Vec<&'static str> = session
        .tier_stack()
        .tiers()
        .iter()
        .map(|t| t.name())
        .collect();
    assert_eq!(names, ["memory", "remote", "disk"], "stack order");
    session.explore("fir").expect("pipeline");
    let stats = session.cache_stats();
    assert_eq!(stats.total_misses(), 0, "no recompute: {stats}");
    assert!(stats.total_remote_hits() > 0, "remote answered first");
    assert_eq!(
        stats.total_disk_hits(),
        0,
        "the local disk tier sits below the remote tier and is never reached: {stats}"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&server_dir);
    let _ = std::fs::remove_dir_all(&client_dir);
}
