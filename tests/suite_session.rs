//! Integration tests for the suite-level session stages
//! (`design_suite` / `evaluate_suite`) and the session cache bounds:
//! suite cache identity, key sensitivity to the member set / registry /
//! seed, parallel determinism, and LRU eviction accounting.

use asip_explorer::prelude::*;
use std::sync::Arc;

#[test]
fn suite_design_is_cached_and_identity_preserving() {
    // the acceptance scenario: designing the whole 12-benchmark
    // registry twice must hit the suite cache the second time and hand
    // back the same Arc, not a recompute
    let session = Explorer::new();
    let d1 = session.design_suite().expect("designs the suite");
    let d2 = session.design_suite().expect("designs the suite");
    assert_eq!(d1.benchmarks.len(), session.registry().len());
    assert!(
        Arc::ptr_eq(&d1.design, &d2.design),
        "second suite design must be a cache hit, same Arc"
    );
    let stats = session.cache_stats();
    assert_eq!(stats.design_suite.misses, 1);
    assert_eq!(stats.design_suite.hits, 1);
    assert!(
        !d1.design.is_empty(),
        "the combined feedback should propose extensions"
    );

    // the evaluate stage rides the same cache discipline
    let e1 = session.evaluate_suite().expect("evaluates the suite");
    let e2 = session.evaluate_suite().expect("evaluates the suite");
    assert!(Arc::ptr_eq(&e1.evaluations, &e2.evaluations));
    assert!(Arc::ptr_eq(&e1.design, &d1.design), "same shared design");
    assert_eq!(session.cache_stats().evaluate_suite.misses, 1);
    assert_eq!(e1.evaluations.len(), session.registry().len());
}

#[test]
fn suite_key_is_order_insensitive_but_member_sensitive() {
    let session = Explorer::new();
    let cons = DesignConstraints::default();
    let det = DetectorConfig::default();
    let a = session
        .design_suite_with(&["sewha", "fir", "bspline"], cons, det)
        .expect("designs");
    // same set, different order and a duplicate: same canonical key
    let b = session
        .design_suite_with(&["bspline", "sewha", "fir", "sewha"], cons, det)
        .expect("designs");
    assert_eq!(a.benchmarks, b.benchmarks, "canonical sorted member set");
    assert!(Arc::ptr_eq(&a.design, &b.design));
    assert_eq!(session.cache_stats().design_suite.misses, 1);

    // a different member set is a different design
    let c = session
        .design_suite_with(&["sewha", "fir"], cons, det)
        .expect("designs");
    assert_eq!(session.cache_stats().design_suite.misses, 2);
    assert!(!Arc::ptr_eq(&a.design, &c.design));

    // empty and unknown member sets are errors, not panics
    assert!(matches!(
        session.design_suite_with(&[], cons, det).unwrap_err(),
        ExplorerError::EmptySuite
    ));
    assert!(matches!(
        session
            .design_suite_with(&["sewha", "nope"], cons, det)
            .unwrap_err(),
        ExplorerError::UnknownBenchmark { .. }
    ));
}

#[test]
fn suite_key_is_sensitive_to_registry_and_seed() {
    // replacing a registry entry drops cached artifacts entirely…
    let session = Explorer::new();
    let before = session.design_suite().expect("designs");
    let replacement = Benchmark {
        name: "fir",
        description: "user kernel shadowing the built-in",
        suite: Suite::User,
        paper_lines: 4,
        data_description: "4 random integers",
        source: r#"
            input int x[4];
            output int y[4];
            void main() {
                int i;
                for (i = 0; i < 4; i = i + 1) { y[i] = x[i] * 2; }
            }
        "#,
        data: DataSpec::Ints { name: "x", n: 4 },
    };
    let session = session.with_benchmark(replacement);
    let after = session.design_suite().expect("designs");
    assert!(
        !Arc::ptr_eq(&before.design, &after.design),
        "registry changes must not serve the old suite design"
    );
    assert_eq!(session.cache_stats().design_suite.misses, 1);

    // …while a seed change keeps the caches but must miss the suite key
    // (the seed reshapes every profile, hence the combined feedback)
    let session = session.with_seed(2027);
    session.design_suite().expect("designs");
    assert_eq!(
        session.cache_stats().design_suite.misses,
        2,
        "a new seed is a new suite cache key"
    );
}

#[test]
fn evaluate_suite_is_deterministic_across_thread_counts() {
    let run = |threads: usize| {
        let session = Explorer::new().with_threads(threads).with_seed(2026);
        session.evaluate_suite().expect("evaluates the suite")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.benchmarks, parallel.benchmarks);
    assert_eq!(
        *serial.design, *parallel.design,
        "suite selection is deterministic regardless of scheduling"
    );
    assert_eq!(
        *serial.evaluations, *parallel.evaluations,
        "per-member measurements agree across thread counts"
    );
    assert_eq!(serial.geomean_speedup(), parallel.geomean_speedup());
    assert!(serial.geomean_speedup().expect("non-empty") >= 1.0);
}

#[test]
fn cache_capacity_bounds_evict_and_recompute() {
    // capacity 1: compiling a second benchmark evicts the first, so
    // returning to it is a fresh miss and the eviction is accounted
    let session = Explorer::new().with_cache_capacity(1);
    assert_eq!(session.cache_capacity(), Some(1));
    let a1 = session.compile("sewha").expect("compiles");
    session.compile("fir").expect("compiles");
    let stats = session.cache_stats();
    assert_eq!(stats.compile.evictions, 1, "sewha was evicted");
    assert_eq!(stats.compile.entries, 1, "the bound holds");
    let a2 = session.compile("sewha").expect("compiles");
    let stats = session.cache_stats();
    assert_eq!(stats.compile.misses, 3, "eviction forces a recompute");
    assert_eq!(stats.compile.hits, 0);
    assert_eq!(stats.compile.evictions, 2);
    assert!(
        !Arc::ptr_eq(&a1.program, &a2.program),
        "the evicted artifact is genuinely gone"
    );
    assert!(stats.total_evictions() >= 2);

    // an unbounded session never evicts
    let unbounded = Explorer::new();
    assert_eq!(unbounded.cache_capacity(), None);
    unbounded.compile("sewha").expect("compiles");
    unbounded.compile("fir").expect("compiles");
    assert_eq!(unbounded.cache_stats().total_evictions(), 0);
    assert_eq!(unbounded.cache_stats().compile.entries, 2);
}

#[test]
fn bounded_session_still_serves_hot_keys() {
    // LRU, not FIFO: the hot benchmark survives a sweep touching others
    let session = Explorer::new().with_cache_capacity(2);
    let hot = session.compile("sewha").expect("compiles");
    for name in ["fir", "bspline", "flatten"] {
        session.compile("sewha").expect("compiles"); // refresh recency
        session.compile(name).expect("compiles");
    }
    let again = session.compile("sewha").expect("compiles");
    assert!(
        Arc::ptr_eq(&hot.program, &again.program),
        "the most-recently-used entry survives every eviction round"
    );
    assert_eq!(session.cache_stats().compile.misses, 4);
}
