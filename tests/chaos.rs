//! Seeded chaos sweeps: many deterministic [`FaultPlan`]s driven
//! through full `explore_all` sessions — store-backed, remote-backed,
//! and multi-client against one serve daemon — plus a simulated-crash
//! truncation sweep over every on-disk artifact.
//!
//! The invariants are absolute, not statistical:
//!
//! - **byte identity** — a faulted session's results must equal a
//!   fault-free baseline exactly (torn bytes are never served);
//! - **zero escaped panics** — every injected fault degrades inside the
//!   tier contract (the tests passing at all proves this);
//! - **reconciliation** — every injected fault is visible as exactly
//!   one counted degradation in `CacheStats` / `RemoteTotals`.
//!
//! Volume scales with `ASIP_CHAOS_SEEDS` (the CI `chaos` job raises it;
//! the tier-1 default keeps local runs quick), mirroring the
//! `ASIP_GEN_SWEEP_SEEDS` convention of the generator sweep.

use asip_explorer::remote::{serve, Endpoint, RetryPolicy, ServeOptions};
use asip_explorer::{
    Exploration, Explorer, FaultConfig, FaultPlan, FaultTier, MemoryTier, StoreGcConfig,
};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use std::{fs, thread};

/// Seeds per sweep. The CI chaos job sets `ASIP_CHAOS_SEEDS=100`, so
/// the two `explore_all` sweeps alone push 200 distinct plans.
fn seed_count() -> u64 {
    std::env::var("ASIP_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asip-chaos-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn loopback() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".into())
}

/// A retry policy tight enough for fault sweeps: real backoff (so the
/// jittered path runs) but millisecond-scale, seeded so the whole
/// session — workload *and* fault schedule *and* retry schedule — is
/// reproducible from one number.
fn chaos_policy(seed: u64) -> RetryPolicy {
    // the generous timeout is deliberate: injected Timeout faults fail
    // immediately regardless, and a *real* timeout on a loaded CI
    // machine would break the exact faults == failed-attempts
    // reconciliation below
    RetryPolicy {
        attempts: 3,
        timeout: Duration::from_secs(2),
        backoff: Duration::from_millis(1),
        ..RetryPolicy::default()
    }
    .with_jitter_seed(seed)
}

/// Daemon options for chaos runs: short I/O timeout so connections a
/// fault plan kills mid-frame are cut loose quickly.
fn chaos_serve_options() -> ServeOptions {
    ServeOptions {
        io_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    }
}

fn digest(explorations: &[Exploration]) -> String {
    format!("{explorations:?}")
}

/// The fault-free reference: one storeless `explore_all`, computed
/// once. Every faulted sweep below must reproduce it byte for byte.
fn baseline() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let session = Explorer::new();
        digest(&session.explore_all().expect("baseline explores"))
    })
}

// -- store-backed sweep ------------------------------------------------

#[test]
fn disk_fault_sweep_is_byte_identical_and_reconciles() {
    let expected = baseline();
    for i in 0..seed_count() {
        let seed = 0xD15Cu64.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let dir = store_dir(&format!("disk-{i}"));
        let plan = Arc::new(FaultPlan::new(seed, FaultConfig::disk(20)));

        // session 1 computes everything under injected read errors,
        // dropped writes, torn writes and manifest corruption
        {
            let session = Explorer::new().with_store(&dir);
            let store = session.store().expect("store attached");
            store.arm_faults(Arc::clone(&plan));
            let explorations = session.explore_all().expect("faulted session completes");
            assert_eq!(digest(&explorations), expected, "disk seed {seed:#x}");
            // flush the manifest under fault: ManifestCorrupt may tear
            // it; the next open must rebuild by scan
            store.gc(&StoreGcConfig::default());
            store.disarm_faults();
        }

        // session 2, fault-free, over the survivors: every injected
        // write fault must resurface as exactly one recompute, every
        // torn write as exactly one rejected (then healed) entry
        let counts = plan.counts();
        let clean = Explorer::new().with_store(&dir);
        let explorations = clean.explore_all().expect("clean session completes");
        assert_eq!(digest(&explorations), expected, "disk seed {seed:#x}");
        let stats = clean.cache_stats();
        assert_eq!(
            stats.total_misses(),
            counts.disk_write_errors + counts.torn_writes,
            "disk seed {seed:#x}: dropped/torn writes vs recomputes: {stats} vs {counts:?}"
        );
        // every torn entry is rejected as corrupt on read — once via
        // the prefetch batch probe and once again on the direct get
        // before the recompute, so the count lands in [torn, 2*torn];
        // and corrupt reads come from *nowhere else*
        let corrupt = stats.total_disk_corrupt();
        assert!(
            corrupt >= counts.torn_writes && corrupt <= 2 * counts.torn_writes,
            "disk seed {seed:#x}: torn writes vs corrupt reads: {stats} vs {counts:?}"
        );
        // the healed store verifies clean
        let report = clean.store().expect("store attached").verify();
        assert_eq!(report.corrupt, 0, "disk seed {seed:#x}: store heals");
        fs::remove_dir_all(&dir).ok();
    }
}

// -- remote-backed sweep -----------------------------------------------

#[test]
fn remote_fault_sweep_is_byte_identical_and_reconciles() {
    let expected = baseline();
    let dir = store_dir("remote-daemon");
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    let handle = serve(server_session, &loopback(), chaos_serve_options()).expect("binds");
    let addr = handle.endpoint().to_string();

    for i in 0..seed_count() {
        let seed = 0x7E40u64.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let plan = Arc::new(FaultPlan::new(seed, FaultConfig::remote(15)));
        let session = Explorer::new()
            .with_remote(&addr, chaos_policy(seed))
            .expect("daemon endpoint parses");
        session
            .remote()
            .expect("remote attached")
            .arm_faults(Arc::clone(&plan));
        let explorations = session.explore_all().expect("faulted client completes");
        assert_eq!(digest(&explorations), expected, "remote seed {seed:#x}");

        // each injected wire fault killed exactly one attempt, and
        // every killed attempt was either retried or degraded
        let totals = session.cache_stats().remote;
        let counts = plan.counts();
        assert_eq!(
            totals.retries + totals.errors,
            counts.remote_total(),
            "remote seed {seed:#x}: injected faults vs failed attempts: {totals:?} vs {counts:?}"
        );
    }

    let stats = handle.shutdown();
    assert_eq!(stats.panics, 0, "no injected fault may panic the daemon");
    fs::remove_dir_all(&dir).ok();
}

// -- multi-client serve session ----------------------------------------

#[test]
fn concurrent_faulted_clients_stay_byte_identical() {
    let expected = baseline().to_string();
    let dir = store_dir("multi-client");
    let server_session = Arc::new(Explorer::new().with_store(&dir));
    let handle = serve(server_session, &loopback(), chaos_serve_options()).expect("binds");
    let addr = handle.endpoint().to_string();

    let clients: Vec<_> = (0..3u64)
        .map(|t| {
            let addr = addr.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let seed = 0xC11E_0000u64 + t;
                let plan = Arc::new(FaultPlan::new(seed, FaultConfig::remote(10)));
                let session = Explorer::new()
                    .with_remote(&addr, chaos_policy(seed))
                    .expect("daemon endpoint parses");
                session
                    .remote()
                    .expect("remote attached")
                    .arm_faults(Arc::clone(&plan));
                let explorations = session.explore_all().expect("client completes");
                assert_eq!(digest(&explorations), expected, "client {t}");
                let totals = session.cache_stats().remote;
                let counts = plan.counts();
                assert_eq!(
                    totals.retries + totals.errors,
                    counts.remote_total(),
                    "client {t}: injected faults vs failed attempts"
                );
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread must not panic");
    }

    let stats = handle.shutdown();
    assert_eq!(stats.panics, 0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn overloaded_daemon_sheds_typed_and_clients_degrade_correctly() {
    let expected = baseline().to_string();
    let dir = store_dir("overload");
    // a deliberately slow bottom tier (every get sleeps) plus an
    // in-flight bound of 1 forces concurrent clients into the shed path
    let slow = Arc::new(
        FaultTier::new(Arc::new(MemoryTier::new())).with_get_delay(Duration::from_millis(2)),
    );
    let server_session = Arc::new(Explorer::new().with_store(&dir).with_tier(slow));
    let options = ServeOptions {
        max_inflight: 1,
        ..chaos_serve_options()
    };
    let handle = serve(server_session, &loopback(), options).expect("binds");
    let addr = handle.endpoint().to_string();

    let clients: Vec<_> = (0..3u64)
        .map(|t| {
            let addr = addr.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let session = Explorer::new()
                    .with_remote(&addr, chaos_policy(0xBEEF + t))
                    .expect("daemon endpoint parses");
                let explorations = session.explore_all().expect("client completes");
                assert_eq!(digest(&explorations), expected, "client {t}");
                let totals = session.cache_stats().remote;
                assert_eq!(
                    totals.skipped, 0,
                    "client {t}: overload must never trip the health gate"
                );
                totals.overloaded
            })
        })
        .collect();
    let client_sheds: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("client thread must not panic"))
        .sum();

    let stats = handle.shutdown();
    assert!(
        stats.overloaded > 0,
        "three clients against max_inflight=1 must shed"
    );
    assert_eq!(
        stats.overloaded, client_sheds,
        "every shed answered by the server was observed by a client"
    );
    assert_eq!(stats.panics, 0);
    fs::remove_dir_all(&dir).ok();
}

// -- simulated-crash consistency sweep ---------------------------------

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("scratch dir");
    for entry in fs::read_dir(src).expect("readable").flatten() {
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir(&from, &to);
        } else {
            fs::copy(&from, &to).expect("copies");
        }
    }
}

/// Every `.art` entry file in the store, at any stage.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(stages) = fs::read_dir(dir) else {
        return files;
    };
    for stage in stages.flatten() {
        let Ok(entries) = fs::read_dir(stage.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "art") {
                files.push(entry.path());
            }
        }
    }
    files.sort();
    files
}

/// The offsets worth tearing a file at: both edges, the store-entry
/// header boundaries, and the middle.
fn interesting_offsets(len: usize) -> Vec<usize> {
    let mut offsets: Vec<usize> = [0, 1, 8, 12, 13, 21, 29, 37, len / 2, len.saturating_sub(1)]
        .into_iter()
        .filter(|&o| o < len)
        .collect();
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

#[test]
fn crash_truncation_sweep_always_recovers_and_heals() {
    // seed a pristine single-benchmark store with a flushed manifest
    let pristine = store_dir("crash-pristine");
    let expected = {
        let session = Explorer::new().with_store(&pristine);
        let run = session.explore("fir").expect("seeds the store");
        session
            .store()
            .expect("store")
            .gc(&StoreGcConfig::default());
        format!("{run:?}")
    };
    let entries = entry_files(&pristine);
    assert!(entries.len() >= 6, "fir writes every stage: {entries:?}");

    let scratch = store_dir("crash-scratch");
    let mut cases = 0u32;
    for file in &entries {
        let pristine_bytes = fs::read(file).expect("entry readable");
        let rel = file.strip_prefix(&pristine).expect("under store");
        for offset in interesting_offsets(pristine_bytes.len()) {
            // crash mid-write: a strict prefix landed at the final path
            fs::remove_dir_all(&scratch).ok();
            copy_dir(&pristine, &scratch);
            fs::write(scratch.join(rel), &pristine_bytes[..offset]).expect("tears");
            let session = Explorer::new().with_store(&scratch);
            let run = session.explore("fir").expect("recovers from torn entry");
            assert_eq!(
                format!("{run:?}"),
                expected,
                "torn {} at {offset}",
                rel.display()
            );
            // the recompute healed the entry in place
            let report = session.store().expect("store").verify();
            assert_eq!(report.corrupt, 0, "torn {} at {offset}", rel.display());
            cases += 1;

            // bit rot: the same offset flipped instead of truncated
            let mut flipped = pristine_bytes.clone();
            flipped[offset] ^= 0xFF;
            fs::write(scratch.join(rel), &flipped).expect("flips");
            let session = Explorer::new().with_store(&scratch);
            let run = session.explore("fir").expect("recovers from bit rot");
            assert_eq!(
                format!("{run:?}"),
                expected,
                "flipped {} at {offset}",
                rel.display()
            );
            cases += 1;
        }
    }
    assert!(
        cases >= 60,
        "the sweep must cover many crash points: {cases}"
    );
    fs::remove_dir_all(&scratch).ok();
    fs::remove_dir_all(&pristine).ok();
}

#[test]
fn crash_torn_manifest_always_recovers_and_is_rewritten_valid() {
    let pristine = store_dir("crash-manifest");
    let expected = {
        let session = Explorer::new().with_store(&pristine);
        let run = session.explore("fir").expect("seeds the store");
        session
            .store()
            .expect("store")
            .gc(&StoreGcConfig::default());
        format!("{run:?}")
    };
    let manifest_path = {
        let session = Explorer::new().with_store(&pristine);
        session.store().expect("store").manifest_path()
    };
    let pristine_manifest = fs::read(&manifest_path).expect("manifest flushed");

    let scratch = store_dir("crash-manifest-scratch");
    let mut mutations: Vec<Vec<u8>> = interesting_offsets(pristine_manifest.len())
        .into_iter()
        .map(|o| pristine_manifest[..o].to_vec())
        .collect();
    // scribbled tail, wrong header, binary garbage
    let mut scribbled = pristine_manifest.clone();
    scribbled.extend_from_slice(b"\xff\xfegarbage\tnot a manifest line\n");
    mutations.push(scribbled);
    mutations.push(b"not-a-manifest v999\n".to_vec());
    mutations.push(vec![0xFF; 64]);

    for (i, bytes) in mutations.iter().enumerate() {
        fs::remove_dir_all(&scratch).ok();
        copy_dir(&pristine, &scratch);
        let target = {
            let session = Explorer::new().with_store(&scratch);
            session.store().expect("store").manifest_path()
        };
        fs::write(&target, bytes).expect("damages manifest");

        // a damaged manifest must degrade to rebuild-by-scan: full
        // disk reuse, identical results, zero recomputes
        let session = Explorer::new().with_store(&scratch);
        let run = session.explore("fir").expect("recovers from torn manifest");
        assert_eq!(format!("{run:?}"), expected, "manifest mutation {i}");
        let stats = session.cache_stats();
        assert_eq!(
            stats.total_misses(),
            0,
            "manifest damage must not cost recomputes: {stats}"
        );

        // the next flush rewrites a parseable manifest
        session
            .store()
            .expect("store")
            .gc(&StoreGcConfig::default());
        let rewritten = fs::read_to_string(&target).expect("manifest rewritten");
        assert!(
            rewritten.starts_with("asip-manifest v1"),
            "manifest mutation {i}: flush must restore a valid manifest"
        );
    }
    fs::remove_dir_all(&scratch).ok();
    fs::remove_dir_all(&pristine).ok();
}
