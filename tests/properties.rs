//! Property-based tests over `asip-gen` generated programs: the textual
//! format round-trips, cleanup passes preserve observable behavior, the
//! optimizer conserves dynamic work, both simulator back ends agree, and
//! the detector/designer respect their selection contracts.
//!
//! Until PR 8 these properties ran on a hand-rolled op-recipe builder;
//! they now draw from the same seeded generator as the curated corpus
//! (`asip_benchmarks::generated_corpus`), so there is exactly one
//! program-shape generator in the tree and every property exercises the
//! full lexer→parser→sema→lower front end instead of a synthetic IR
//! builder.

use asip_explorer::gen::{generate, GenConfig, GenTy, GeneratedProgram, OpMix};
use asip_explorer::ir::{parse_program, Program};
use asip_explorer::opt::{OptLevel, Optimizer};
use asip_explorer::sim::{DataGen, DataSet, Engine, ReferenceSimulator, Simulator};
use asip_explorer::synth::rewrite::is_fusable_signature;
use asip_explorer::synth::{AsipDesigner, DesignConstraints, Rewriter};
use proptest::prelude::*;
use std::sync::Arc;

/// Keep property programs small: the suite compiles and simulates a few
/// hundred of them, so cap the shape well below the corpus presets.
fn gen_config() -> impl Strategy<Value = GenConfig> {
    (
        (1usize..24, 0usize..3, 1usize..3),
        (1usize..3, 0usize..2, 3usize..6),
        (0u8..101, 0u8..101, 0u8..3),
    )
        .prop_map(
            |(
                (statements, loop_depth, loop_count),
                (int_arrays, float_arrays, len_log2),
                (float_share, chain_density, mix_sel),
            )| GenConfig {
                statements,
                loop_depth,
                loop_count,
                int_arrays,
                float_arrays,
                array_len: 1 << len_log2,
                float_share,
                chain_density,
                mix: match mix_sel {
                    0 => OpMix::default(),
                    1 => OpMix::arith_heavy(),
                    _ => OpMix::memory_heavy(),
                },
            },
        )
}

/// Deterministic input data matching a generated program's declared
/// arrays (the corpus shapes: small ints, unit-interval floats).
fn dataset(prog: &GeneratedProgram) -> DataSet {
    let mut gen = DataGen::new(1995);
    let mut data = DataSet::new();
    for input in &prog.inputs {
        match input.ty {
            GenTy::Int => {
                data.bind_ints(input.name.clone(), gen.ints(input.len, -128, 127));
            }
            GenTy::Float => {
                data.bind_floats(input.name.clone(), gen.floats(input.len, -1.0, 1.0));
            }
        }
    }
    data
}

fn compile(prog: &GeneratedProgram) -> Program {
    asip_explorer::frontend::compile(&prog.name, &prog.source)
        .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{}", prog.source))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_programs_compile_validate_and_run(seed in any::<u64>(), config in gen_config()) {
        // the generator's totality contract, over the whole knob space:
        // arbitrary seeds compile through the front end, validate, and
        // run to completion
        let prog = generate(seed, &config);
        let p = compile(&prog);
        prop_assert!(p.validate().is_ok());
        let exec = Simulator::new(&p).run(&dataset(&prog)).expect("runs");
        prop_assert!(exec.profile.total_ops() > 0);
    }

    #[test]
    fn textual_format_round_trips(seed in any::<u64>(), config in gen_config()) {
        let p = compile(&generate(seed, &config));
        let text = p.to_string();
        let q = parse_program(&text).expect("printed programs parse");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn cleanup_preserves_observable_behavior(seed in any::<u64>(), config in gen_config()) {
        let prog = generate(seed, &config);
        let p = compile(&prog);
        let data = dataset(&prog);
        let before = Simulator::new(&p).run(&data).expect("runs");
        let mut q = p.clone();
        asip_explorer::ir::passes::cleanup(&mut q);
        q.validate().expect("cleanup keeps programs valid");
        let after = Simulator::new(&q).run(&data).expect("still runs");
        prop_assert_eq!(before.memory, after.memory);
        prop_assert_eq!(before.result, after.result);
        prop_assert!(q.inst_count() <= p.inst_count(), "cleanup never grows code");
    }

    #[test]
    fn optimizer_invariants_hold_on_generated_programs(seed in any::<u64>(), config in gen_config()) {
        let prog = generate(seed, &config);
        let p = compile(&prog);
        let profile = Simulator::new(&p).run(&dataset(&prog)).expect("runs").profile;
        let g0 = Optimizer::new(OptLevel::None).run(&p, &profile);
        prop_assert!(g0.check_invariants().is_ok());
        let w0 = g0.chainable_weight();

        // pipelining/compaction conserves dynamic work exactly
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&p, &profile);
        prop_assert!(g1.check_invariants().is_ok());
        let w1 = g1.chainable_weight();
        prop_assert!((w0 - w1).abs() <= 1e-6 * w0.max(1.0),
            "chainable weight {} vs {}", w0, w1);

        // renaming inserts boundary copies: real extra work, never less
        let g2 = Optimizer::new(OptLevel::PipelinedRenamed).run(&p, &profile);
        prop_assert!(g2.check_invariants().is_ok());
        prop_assert!(g2.chainable_weight() >= w1 - 1e-6 * w1.max(1.0),
            "renamed weight {} below pipelined {}", g2.chainable_weight(), w1);
    }

    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), config in gen_config()) {
        let prog = generate(seed, &config);
        let p = compile(&prog);
        let a = Simulator::new(&p).run(&dataset(&prog)).expect("runs");
        let b = Simulator::new(&p).run(&dataset(&prog)).expect("runs");
        prop_assert_eq!(a.profile, b.profile);
        prop_assert_eq!(a.memory, b.memory);
    }

    #[test]
    fn decoded_engine_matches_the_reference_interpreter(seed in any::<u64>(), config in gen_config()) {
        // the differential property behind the engine rewrite: on any
        // generated program, the pre-decoded engine and the retained
        // reference interpreter are byte-identical
        let prog = generate(seed, &config);
        let p = compile(&prog);
        let data = dataset(&prog);
        let reference = ReferenceSimulator::new(&p).run(&data).expect("runs");
        let engine = Engine::new(Arc::new(p)).run(&data).expect("runs");
        prop_assert_eq!(engine.profile, reference.profile);
        prop_assert_eq!(engine.memory, reference.memory);
        prop_assert_eq!(engine.result, reference.result);
    }

    #[test]
    fn pooled_and_fresh_run_states_agree(seed in any::<u64>(), config in gen_config()) {
        // the RunState pooling property: repeated pooled runs (reused,
        // memcpy-reset banks) and a one-shot fresh-state run are
        // byte-identical on any generated program
        let prog = generate(seed, &config);
        let p = compile(&prog);
        let data = dataset(&prog);
        let engine = Engine::new(Arc::new(p));
        let fresh = engine.run(&data).expect("first run");
        let inputs = engine.bind(&data).expect("binds");
        for _ in 0..3 {
            let pooled = engine.run_pooled(&inputs).expect("pooled run");
            prop_assert_eq!(&pooled.profile, &fresh.profile);
            prop_assert_eq!(&pooled.result, &fresh.result);
        }
        // batch over the same dataset thrice: still identical, and the
        // lazy memory materialization matches the one-shot run's
        let batch = engine.run_batch(&[&data, &data, &data]).expect("batch runs");
        for exec in &batch {
            prop_assert_eq!(&exec.profile, &fresh.profile);
            prop_assert_eq!(&exec.memory, &fresh.memory);
            prop_assert_eq!(&exec.result, &fresh.result);
        }
        let stats = engine.run_state_stats();
        prop_assert_eq!(stats.creates, 1, "one state serves every run");
        prop_assert_eq!(stats.checkouts, 5);
    }

    #[test]
    fn decoded_engine_step_limits_match_the_reference(seed in any::<u64>(), limit in 0u64..512) {
        // whatever the limit lands on (mid-block included), both
        // interpreters agree on success vs StepLimit and on the payload
        let prog = generate(seed, &GenConfig { array_len: 8, ..GenConfig::small() });
        let p = compile(&prog);
        let data = dataset(&prog);
        let reference = ReferenceSimulator::new(&p).with_step_limit(limit).run(&data);
        let engine = Engine::new(Arc::new(p)).with_step_limit(limit).run(&data);
        match (reference, engine) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.profile, b.profile);
                prop_assert_eq!(a.memory, b.memory);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "diverged at limit {}: {:?} vs {:?}", limit, a, b),
        }
    }

    #[test]
    fn designer_respects_constraints_and_static_matchability(
        seed in any::<u64>(),
        config in gen_config(),
        area_sel in 0u8..4,
        max_extensions in 0usize..5,
        level_sel in 0u8..3,
    ) {
        // the detector/designer contract on arbitrary programs: a design
        // never exceeds its hardware constraints, and every selected
        // extension is fusable and statically present in the code it was
        // selected for (no silicon for chains the rewriter can't fire)
        let prog = generate(seed, &config);
        let p = compile(&prog);
        let data = dataset(&prog);
        let profile = Simulator::new(&p).run(&data).expect("runs").profile;
        let constraints = DesignConstraints {
            area_budget: [0.0, 1500.0, 6000.0, 20_000.0][area_sel as usize],
            max_extensions,
            opt_level: OptLevel::all()[level_sel as usize],
            ..DesignConstraints::default()
        };
        let design = AsipDesigner::new(constraints).design_for(&p, &profile);
        prop_assert!(design.extensions.len() <= constraints.max_extensions,
            "{} extensions exceed slot budget {}", design.extensions.len(), constraints.max_extensions);
        prop_assert!(design.extension_area <= constraints.area_budget + 1e-9,
            "area {} exceeds budget {}", design.extension_area, constraints.area_budget);
        for ext in &design.extensions {
            prop_assert!(is_fusable_signature(&ext.signature),
                "selected unfusable signature {:?}", ext.signature);
            prop_assert!(Rewriter::count_static_matches(&p, &ext.signature) > 0,
                "selected signature {:?} never statically matches", ext.signature);
        }

        // and applying the design preserves observable behavior exactly
        let original = ReferenceSimulator::new(&p).run(&data).expect("runs");
        let mut rewritten = p.clone();
        let stats = Rewriter::new(design.clone()).apply(&mut rewritten);
        prop_assert!(rewritten.validate().is_ok());
        prop_assert!(design.is_empty() || stats.fused_chains > 0,
            "a non-empty design applied to its own program must fire at least once");
        let after = ReferenceSimulator::new(&rewritten).run(&data).expect("runs");
        prop_assert_eq!(original.memory, after.memory);
        prop_assert_eq!(original.result, after.result);
    }
}
