//! Property-based tests over randomly generated programs: the textual
//! format round-trips, cleanup passes preserve observable behavior, and
//! the optimizer conserves dynamic work.

use asip_explorer::ir::{parse_program, BinOp, Operand, Program, ProgramBuilder, Reg, Ty, UnOp};
use asip_explorer::opt::{OptLevel, Optimizer};
use asip_explorer::sim::{DataSet, Engine, ReferenceSimulator, Simulator};
use proptest::prelude::*;
use std::sync::Arc;

/// Recipe for one random straight-line op.
#[derive(Debug, Clone)]
enum OpRecipe {
    IntBin(u8, u8, u8), // op selector, two operand selectors
    FloatBin(u8, u8, u8),
    IntUn(u8, u8),
    Load(u8),
    Store(u8, u8),
}

fn op_recipe() -> impl Strategy<Value = OpRecipe> {
    prop_oneof![
        (0u8..10, any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| OpRecipe::IntBin(o, a, b)),
        (0u8..4, any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| OpRecipe::FloatBin(o, a, b)),
        (0u8..2, any::<u8>()).prop_map(|(o, a)| OpRecipe::IntUn(o, a)),
        any::<u8>().prop_map(OpRecipe::Load),
        (any::<u8>(), any::<u8>()).prop_map(|(i, v)| OpRecipe::Store(i, v)),
    ]
}

/// Build a valid program from recipes: a straight-line body over one
/// int array, with every value eventually stored so DCE cannot remove
/// everything. Optionally wrapped in a bounded counted loop.
fn build_program(recipes: &[OpRecipe], with_loop: bool) -> Program {
    const LEN: i64 = 8;
    let mut b = ProgramBuilder::new("prop");
    let arr = b.input_array("x", Ty::Int, LEN as usize);
    let out = b.output_array("y", Ty::Int, LEN as usize);
    let entry = b.entry_block();

    let (body, exit, counter) = if with_loop {
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        let g = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(4));
        b.branch(g.into(), body, exit);
        b.select_block(body);
        (Some(body), Some(exit), Some(i))
    } else {
        b.select_block(entry);
        (None, None, None)
    };

    let mut ints: Vec<Reg> = Vec::new();
    let mut floats: Vec<Reg> = Vec::new();
    let int_operand = |ints: &Vec<Reg>, sel: u8| -> Operand {
        if ints.is_empty() || sel.is_multiple_of(3) {
            Operand::imm_int((sel % 7) as i64 + 1)
        } else {
            ints[sel as usize % ints.len()].into()
        }
    };
    let float_operand = |floats: &Vec<Reg>, sel: u8| -> Operand {
        if floats.is_empty() || sel.is_multiple_of(3) {
            Operand::imm_float((sel % 5) as f64 * 0.5 + 0.5)
        } else {
            floats[sel as usize % floats.len()].into()
        }
    };

    for r in recipes {
        match r {
            OpRecipe::IntBin(o, a, bsel) => {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::CmpLt,
                ];
                let lhs = int_operand(&ints, *a);
                let rhs = int_operand(&ints, *bsel);
                ints.push(b.binary(ops[*o as usize % ops.len()], lhs, rhs));
            }
            OpRecipe::FloatBin(o, a, bsel) => {
                let ops = [BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FDiv];
                let lhs = float_operand(&floats, *a);
                let rhs = float_operand(&floats, *bsel);
                floats.push(b.binary(ops[*o as usize % ops.len()], lhs, rhs));
            }
            OpRecipe::IntUn(o, a) => {
                let src = int_operand(&ints, *a);
                let op = if *o == 0 { UnOp::Neg } else { UnOp::Not };
                ints.push(b.unary(op, src));
            }
            OpRecipe::Load(sel) => {
                let idx = (*sel as i64) % LEN;
                ints.push(b.load(arr, Operand::imm_int(idx)));
            }
            OpRecipe::Store(isel, vsel) => {
                let idx = (*isel as i64) % LEN;
                let v = int_operand(&ints, *vsel);
                b.store(out, Operand::imm_int(idx), v);
            }
        }
    }
    // observe the last values so they stay live
    if let Some(&last) = ints.last() {
        b.store(out, Operand::imm_int(0), last.into());
    }
    if let Some(&lastf) = floats.last() {
        let as_int = b.unary(UnOp::FloatToInt, lastf.into());
        b.store(out, Operand::imm_int(1), as_int.into());
    }

    match (body, exit, counter) {
        (Some(body), Some(exit), Some(i)) => {
            b.binary_to(i, BinOp::Add, i.into(), Operand::imm_int(1));
            let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(4));
            b.branch(c.into(), body, exit);
            b.select_block(exit);
            b.ret(None);
        }
        _ => {
            b.ret(None);
        }
    }
    b.finish().expect("generated programs are valid")
}

fn dataset() -> DataSet {
    let mut d = DataSet::new();
    d.bind_ints("x", (1..=8).collect());
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn textual_format_round_trips(recipes in prop::collection::vec(op_recipe(), 1..40), with_loop in any::<bool>()) {
        let p = build_program(&recipes, with_loop);
        let text = p.to_string();
        let q = parse_program(&text).expect("printed programs parse");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn cleanup_preserves_observable_behavior(recipes in prop::collection::vec(op_recipe(), 1..40), with_loop in any::<bool>()) {
        let p = build_program(&recipes, with_loop);
        let before = Simulator::new(&p).run(&dataset()).expect("runs");
        let mut q = p.clone();
        asip_explorer::ir::passes::cleanup(&mut q);
        q.validate().expect("cleanup keeps programs valid");
        let after = Simulator::new(&q).run(&dataset()).expect("still runs");
        prop_assert_eq!(before.memory, after.memory);
        prop_assert_eq!(before.result, after.result);
        prop_assert!(q.inst_count() <= p.inst_count(), "cleanup never grows code");
    }

    #[test]
    fn optimizer_invariants_hold_on_random_programs(recipes in prop::collection::vec(op_recipe(), 1..30), with_loop in any::<bool>()) {
        let p = build_program(&recipes, with_loop);
        let profile = Simulator::new(&p).run(&dataset()).expect("runs").profile;
        let g0 = Optimizer::new(OptLevel::None).run(&p, &profile);
        prop_assert!(g0.check_invariants().is_ok());
        let w0 = g0.chainable_weight();

        // pipelining/compaction conserves dynamic work exactly
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&p, &profile);
        prop_assert!(g1.check_invariants().is_ok());
        let w1 = g1.chainable_weight();
        prop_assert!((w0 - w1).abs() <= 1e-6 * w0.max(1.0),
            "chainable weight {} vs {}", w0, w1);

        // renaming inserts boundary copies: real extra work, never less
        let g2 = Optimizer::new(OptLevel::PipelinedRenamed).run(&p, &profile);
        prop_assert!(g2.check_invariants().is_ok());
        prop_assert!(g2.chainable_weight() >= w1 - 1e-6 * w1.max(1.0),
            "renamed weight {} below pipelined {}", g2.chainable_weight(), w1);
    }

    #[test]
    fn simulation_is_deterministic(recipes in prop::collection::vec(op_recipe(), 1..30), with_loop in any::<bool>()) {
        let p = build_program(&recipes, with_loop);
        let a = Simulator::new(&p).run(&dataset()).expect("runs");
        let b = Simulator::new(&p).run(&dataset()).expect("runs");
        prop_assert_eq!(a.profile, b.profile);
        prop_assert_eq!(a.memory, b.memory);
    }

    #[test]
    fn decoded_engine_matches_the_reference_interpreter(recipes in prop::collection::vec(op_recipe(), 1..40), with_loop in any::<bool>()) {
        // the differential property behind the engine rewrite: on any
        // generated program, the pre-decoded engine and the retained
        // reference interpreter are byte-identical
        let p = build_program(&recipes, with_loop);
        let reference = ReferenceSimulator::new(&p).run(&dataset()).expect("runs");
        let engine = Engine::new(Arc::new(p)).run(&dataset()).expect("runs");
        prop_assert_eq!(engine.profile, reference.profile);
        prop_assert_eq!(engine.memory, reference.memory);
        prop_assert_eq!(engine.result, reference.result);
    }

    #[test]
    fn decoded_engine_step_limits_match_the_reference(recipes in prop::collection::vec(op_recipe(), 1..20), limit in 0u64..64) {
        // whatever the limit lands on (mid-block included), both
        // interpreters agree on success vs StepLimit and on the payload
        let p = build_program(&recipes, true);
        let reference = ReferenceSimulator::new(&p).with_step_limit(limit).run(&dataset());
        let engine = Engine::new(Arc::new(p)).with_step_limit(limit).run(&dataset());
        match (reference, engine) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.profile, b.profile);
                prop_assert_eq!(a.memory, b.memory);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "diverged at limit {}: {:?} vs {:?}", limit, a, b),
        }
    }
}
