//! Integration: the full paper pipeline (Figure 2) across crates, on
//! real benchmarks.

use asip_explorer::prelude::*;

/// The subset used where full-suite runs would be slow under the debug
/// profile (dft alone interprets ~1.4M dynamic ops).
const FAST_SUITE: &[&str] = &["sewha", "feowf", "bspline", "fir", "iir", "edge", "flatten"];

#[test]
fn full_pipeline_runs_for_every_benchmark() {
    for bench in registry().iter() {
        let program = bench.compile().expect("compiles");
        program.validate().expect("valid IR");
        let profile = bench.profile(&program).expect("simulates");
        assert!(profile.total_ops() > 0);
        for level in OptLevel::all() {
            let graph = Optimizer::new(level).run(&program, &profile);
            graph.check_invariants().expect("graph invariants");
            assert_eq!(graph.total_profile_ops, profile.total_ops());
        }
    }
}

#[test]
fn detection_is_deterministic_end_to_end() {
    let benches = registry();
    let bench = benches.find("sewha").expect("built-in");
    let run = || {
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("simulates");
        let graph = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
        SequenceDetector::new(DetectorConfig::default())
            .analyze(&graph)
            .entries()
            .to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn optimization_never_reduces_detected_sequences() {
    // the paper's core claim: the optimized graph offers a superset of
    // chaining opportunities
    let detector = SequenceDetector::new(DetectorConfig::default());
    for name in FAST_SUITE {
        let benches = registry();
        let bench = benches.find(name).expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("simulates");
        let g0 = Optimizer::new(OptLevel::None).run(&program, &profile);
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
        let n0 = detector.occurrences(&g0).len();
        let n1 = detector.occurrences(&g1).len();
        assert!(
            n1 >= n0,
            "{name}: pipelined occurrences {n1} < sequential {n0}"
        );
    }
}

#[test]
fn coverage_is_a_percentage_everywhere() {
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    for name in FAST_SUITE {
        let benches = registry();
        let bench = benches.find(name).expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("simulates");
        for level in OptLevel::all() {
            let graph = Optimizer::new(level).run(&program, &profile);
            let cov = analyzer.analyze(&graph).coverage();
            assert!(
                (0.0..=100.0 + 1e-9).contains(&cov),
                "{name}@{level}: coverage {cov} out of range"
            );
        }
    }
}

#[test]
fn frequencies_are_bounded_per_signature() {
    let detector = SequenceDetector::new(DetectorConfig::default());
    for name in FAST_SUITE {
        let benches = registry();
        let bench = benches.find(name).expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("simulates");
        for level in OptLevel::all() {
            let graph = Optimizer::new(level).run(&program, &profile);
            let report = detector.analyze(&graph);
            for (sig, stats) in report.entries() {
                assert!(
                    stats.frequency <= 100.0 + 1e-9,
                    "{name}@{level}: {sig} at {:.2}% overcounts",
                    stats.frequency
                );
                assert!(stats.frequency > 0.0);
                assert!(stats.occurrences > 0);
            }
        }
    }
}

#[test]
fn chainable_weight_is_conserved_by_optimization() {
    for name in FAST_SUITE {
        let benches = registry();
        let bench = benches.find(name).expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("simulates");
        let g0 = Optimizer::new(OptLevel::None).run(&program, &profile);
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
        let w0 = g0.chainable_weight();
        let w1 = g1.chainable_weight();
        assert!(
            (w0 - w1).abs() / w0.max(1.0) < 1e-9,
            "{name}: chainable weight changed {w0} -> {w1}"
        );
    }
}

#[test]
fn textual_ir_round_trips_for_all_benchmarks() {
    for bench in registry().iter() {
        let program = bench.compile().expect("compiles");
        let text = program.to_string();
        let parsed = asip_explorer::ir::parse_program(&text)
            .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}", bench.name));
        assert_eq!(program, parsed, "{} round-trip mismatch", bench.name);
    }
}
