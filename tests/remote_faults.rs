//! Fault-injection tests for the remote artifact tier: every failure
//! mode — server absent, server killed mid-request, corrupt frames,
//! protocol-version skew, a silent server — must degrade to a counted
//! recompute with byte-identical results, never a panic, an error, or
//! a hang beyond the retry policy's bounds.

use asip_explorer::prelude::*;
use asip_explorer::remote::proto::{
    self, read_frame, write_frame, write_frame_versioned, PROTO_VERSION,
};
use asip_explorer::remote::{Endpoint, RemoteTier, RetryPolicy};
use asip_explorer::RemoteError;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// A fast policy so fault paths resolve in milliseconds: two attempts,
/// short timeout, tiny backoff.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        timeout: Duration::from_millis(300),
        backoff: Duration::from_millis(1),
        ..RetryPolicy::default()
    }
}

/// An address with nothing listening (bound, resolved, then dropped).
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

#[test]
fn absent_server_degrades_to_clean_recompute() {
    let session = Explorer::new()
        .with_remote(&dead_addr(), fast_policy())
        .expect("valid endpoint");
    // the whole pipeline must run normally — the dead server costs
    // counted errors, not correctness
    let exploration = session.explore("fir").expect("pipeline completes");
    assert!(exploration.speedup() >= 1.0);
    let stats = session.cache_stats();
    assert!(stats.total_misses() > 0, "everything recomputed");
    assert_eq!(stats.total_remote_hits(), 0);
    assert!(
        stats.remote.errors >= 1,
        "connect failures counted: {stats}"
    );
    assert!(
        stats.remote.skipped >= 1,
        "unhealthy server skipped after the first failure: {stats}"
    );
    assert!(!session.remote().expect("attached").is_healthy());
}

#[test]
fn absent_server_recompute_is_byte_identical_to_local() {
    let local = Explorer::new();
    let remote = Explorer::new()
        .with_remote(&dead_addr(), fast_policy())
        .expect("valid endpoint");
    let a = local.explore("sewha").expect("local pipeline");
    let b = remote.explore("sewha").expect("degraded pipeline");
    assert_eq!(
        a.speedup().to_bits(),
        b.speedup().to_bits(),
        "bit-identical speedup"
    );
    assert_eq!(
        a.designed.design.extensions.len(),
        b.designed.design.extensions.len()
    );
}

#[test]
fn malformed_address_is_a_loud_configuration_error() {
    let err = Explorer::new()
        .with_remote("not an endpoint", RetryPolicy::default())
        .expect_err("must not build");
    assert!(matches!(
        err,
        asip_explorer::ExplorerError::InvalidEndpoint { .. }
    ));
    assert!(err.to_string().contains("not an endpoint"));
}

/// A rogue server: accepts one connection, runs `script` on it, exits.
fn rogue_server(
    script: impl FnOnce(std::net::TcpStream) + Send + 'static,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            script(stream);
        }
    });
    (addr, handle)
}

#[test]
fn server_killed_mid_request_is_a_counted_miss() {
    // reads the request header then slams the connection shut
    let (addr, handle) = rogue_server(|mut stream| {
        let mut buf = [0u8; proto::HEADER_BYTES];
        let _ = stream.read_exact(&mut buf);
        drop(stream);
    });
    let tier = RemoteTier::new(
        Endpoint::parse(&addr).expect("valid"),
        RetryPolicy {
            attempts: 1,
            timeout: Duration::from_millis(300),
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        },
    );
    assert!(matches!(
        tier.get(Stage::Compile, 1),
        asip_explorer::TierRead::Miss
    ));
    assert_eq!(tier.remote_totals().errors, 1);
    handle.join().expect("rogue server exits");
}

#[test]
fn corrupt_response_frame_is_rejected_and_counted() {
    // answers any request with garbage bytes
    let (addr, handle) = rogue_server(|mut stream| {
        let mut buf = [0u8; proto::HEADER_BYTES];
        let _ = stream.read_exact(&mut buf);
        let _ = stream.write_all(b"this is not a frame at all, sorry!!!!!!!!");
        let _ = stream.flush();
    });
    let tier = RemoteTier::new(
        Endpoint::parse(&addr).expect("valid"),
        RetryPolicy {
            attempts: 1,
            timeout: Duration::from_millis(300),
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        },
    );
    assert!(matches!(
        tier.get(Stage::Compile, 1),
        asip_explorer::TierRead::Miss
    ));
    let totals = tier.remote_totals();
    assert_eq!(totals.errors, 1, "frame damage counted: {totals:?}");
    handle.join().expect("rogue server exits");
}

#[test]
fn protocol_version_skew_is_detected_not_misread() {
    // a well-formed frame from the "future": same layout, version+1
    let (addr, handle) = rogue_server(|mut stream| {
        let frame = {
            let mut first = [0u8; 1];
            stream.read_exact(&mut first).expect("request arrives");
            proto::read_frame_after(first[0], &mut stream).expect("request parses")
        };
        write_frame_versioned(
            &mut stream,
            PROTO_VERSION + 1,
            proto::kind::VALUE,
            frame.request_id,
            &[],
        )
        .expect("skewed reply written");
    });
    let tier = RemoteTier::new(
        Endpoint::parse(&addr).expect("valid"),
        RetryPolicy {
            attempts: 1,
            timeout: Duration::from_millis(500),
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        },
    );
    // surfaced precisely through the typed API …
    match tier.ping() {
        Err(RemoteError::VersionSkew { peer }) => assert_eq!(peer, PROTO_VERSION + 1),
        other => panic!("expected VersionSkew, got {other:?}"),
    }
    // … and degraded (not propagated) through the tier API
    assert!(matches!(
        tier.get(Stage::Compile, 1),
        asip_explorer::TierRead::Miss
    ));
    handle.join().expect("rogue server exits");
}

#[test]
fn silent_server_times_out_within_policy_bounds() {
    // accepts, reads the request, never answers
    let (addr, handle) = rogue_server(|mut stream| {
        let mut buf = [0u8; 256];
        let _ = stream.read(&mut buf);
        std::thread::sleep(Duration::from_secs(2));
    });
    let policy = RetryPolicy {
        attempts: 1,
        timeout: Duration::from_millis(200),
        backoff: Duration::ZERO,
        ..RetryPolicy::default()
    };
    let tier = RemoteTier::new(Endpoint::parse(&addr).expect("valid"), policy);
    let start = Instant::now();
    assert!(matches!(
        tier.get(Stage::Compile, 1),
        asip_explorer::TierRead::Miss
    ));
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(1),
        "one attempt with a 200ms timeout must not stall: took {elapsed:?}"
    );
    assert_eq!(tier.remote_totals().errors, 1);
    handle.join().expect("rogue server exits");
}

#[test]
fn frame_codec_rejects_tampering_on_loopback() {
    // round-trip a frame through a real socket pair and tamper with the
    // body: the reader must reject it by checksum, not misread it
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr");
    let writer = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connects");
        let mut frame = Vec::new();
        write_frame(&mut frame, proto::kind::PING, 42, &[]).expect("encodes");
        // flip one bit in the header checksum field
        let n = frame.len();
        frame[n - 1] ^= 0x01;
        // grow the body so the checksum actually gets exercised
        stream.write_all(&frame).expect("sends");
    });
    let (mut conn, _) = listener.accept().expect("accepts");
    conn.set_read_timeout(Some(Duration::from_secs(2)))
        .expect("timeout set");
    let err = read_frame(&mut conn).expect_err("tampered frame rejected");
    assert!(
        matches!(err, RemoteError::Frame { .. }),
        "got {err:?} instead of a frame rejection"
    );
    writer.join().expect("writer exits");
}
