//! Persistence integration tests: the on-disk artifact store must give
//! separate `Explorer` sessions (stand-ins for separate bench-binary
//! processes) cross-session reuse, and every corruption mode must
//! degrade to a clean recompute — never an error, never a wrong result.

use asip_explorer::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

/// A per-test store directory under the system temp dir, cleared on
/// entry so reruns start cold. Tests run in one process but in
/// parallel, so the tag keeps them from sharing a store.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asip-persistence-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Every `.art` entry file in the store, at any stage.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(stages) = fs::read_dir(dir) else {
        return files;
    };
    for stage in stages.flatten() {
        let Ok(entries) = fs::read_dir(stage.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "art") {
                files.push(entry.path());
            }
        }
    }
    files
}

fn assert_no_recomputes(stats: &CacheStats) {
    for stage in Stage::all() {
        assert_eq!(
            stats.stage(stage).misses,
            0,
            "stage {stage} recomputed despite a warm store: {stats}"
        );
    }
}

#[test]
fn second_session_serves_the_whole_pipeline_from_disk() {
    let dir = store_dir("cross-session");

    // session 1 — the "first binary": computes and writes through
    let first = Explorer::new().with_store(&dir);
    let run1 = first.explore("sewha").expect("pipeline runs");
    let stats1 = first.cache_stats();
    assert!(stats1.compile.misses > 0, "cold store computes");
    assert_eq!(stats1.compile.disk_hits, 0, "nothing to hit yet");
    assert!(
        stats1.total_disk_writes() >= 6,
        "every stage writes through: {stats1}"
    );

    // session 2 — the "second binary", sharing the directory while the
    // first session is still alive: zero recomputes anywhere
    let second = Explorer::new().with_store(&dir);
    let run2 = second.explore("sewha").expect("pipeline replays");
    let stats2 = second.cache_stats();
    assert_no_recomputes(&stats2);
    for stage in [
        Stage::Compile,
        Stage::Profile,
        Stage::Schedule,
        Stage::Analyze,
    ] {
        assert!(
            stats2.stage(stage).disk_hits > 0,
            "stage {stage} should hit disk: {stats2}"
        );
    }
    assert!(stats2.stage(Stage::Design).disk_hits > 0, "{stats2}");
    assert!(stats2.stage(Stage::Evaluate).disk_hits > 0, "{stats2}");
    assert_eq!(stats2.total_disk_corrupt(), 0);

    // and the artifacts are *identical*, not merely equivalent
    assert_eq!(run1.compiled.program, run2.compiled.program);
    assert_eq!(run1.profiled.profile, run2.profiled.profile);
    assert_eq!(run1.levels.len(), run2.levels.len());
    for ((s1, a1), (s2, a2)) in run1.levels.iter().zip(run2.levels.iter()) {
        assert_eq!(s1.graph, s2.graph);
        assert_eq!(a1.report, a2.report);
    }
    assert_eq!(run1.designed.design, run2.designed.design);
    assert_eq!(run1.evaluated.evaluation, run2.evaluated.evaluation);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn suite_stages_share_the_store_across_sessions() {
    let dir = store_dir("suite");
    let members = ["sewha", "fir"];

    let first = Explorer::new().with_store(&dir);
    let suite1 = first
        .evaluate_suite_with(
            &members,
            DesignConstraints::default(),
            DetectorConfig::default(),
        )
        .expect("suite evaluates");
    assert!(first.cache_stats().design_suite.disk_writes > 0);

    let second = Explorer::new().with_store(&dir);
    let suite2 = second
        .evaluate_suite_with(
            &members,
            DesignConstraints::default(),
            DetectorConfig::default(),
        )
        .expect("suite replays");
    let stats = second.cache_stats();
    assert_no_recomputes(&stats);
    assert!(stats.design_suite.disk_hits > 0, "{stats}");
    assert!(stats.evaluate_suite.disk_hits > 0, "{stats}");
    assert_eq!(suite1.design, suite2.design);
    assert_eq!(suite1.evaluations, suite2.evaluations);
    assert_eq!(suite1.geomean_speedup(), suite2.geomean_speedup());

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn different_configs_share_a_store_without_crosstalk() {
    let dir = store_dir("configs");
    let baseline = Explorer::new().with_store(&dir);
    let expected = baseline
        .analyze("sewha", OptLevel::Pipelined)
        .expect("analyzes");

    // a session with different optimizer knobs must not be served the
    // baseline's schedule from disk
    let tweaked = Explorer::new().with_store(&dir).with_opt_config(OptConfig {
        unroll: 4,
        ..OptConfig::default()
    });
    let other = tweaked
        .analyze("sewha", OptLevel::Pipelined)
        .expect("analyzes");
    assert!(
        tweaked.cache_stats().schedule.misses > 0,
        "a different OptConfig must recompute, not reuse"
    );
    assert_ne!(
        expected.report.series(),
        other.report.series(),
        "the tweaked config produces different feedback, so disk \
         crosstalk would be observable here"
    );

    // while the *same* config in a fresh session still hits
    let replay = Explorer::new().with_store(&dir);
    let again = replay
        .analyze("sewha", OptLevel::Pipelined)
        .expect("replays");
    assert_eq!(replay.cache_stats().schedule.misses, 0);
    assert_eq!(expected.report, again.report);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_entries_recompute_cleanly_and_heal_the_store() {
    let dir = store_dir("corrupt");
    let first = Explorer::new().with_store(&dir);
    let clean = first.evaluate("sewha").expect("computes");

    // scribble garbage over every entry (checksum/decode failures)
    let files = entry_files(&dir);
    assert!(!files.is_empty(), "store was populated");
    for f in &files {
        fs::write(f, b"not an artifact at all").expect("overwrite");
    }

    let second = Explorer::new().with_store(&dir);
    let healed = second
        .evaluate("sewha")
        .expect("recomputes despite corruption");
    let stats = second.cache_stats();
    assert!(
        stats.total_disk_corrupt() > 0,
        "corruption was observed: {stats}"
    );
    assert!(stats.total_misses() > 0, "stages recomputed");
    assert_eq!(
        clean.evaluation, healed.evaluation,
        "results are unaffected"
    );

    // the recompute wrote fresh entries: a third session hits again
    let third = Explorer::new().with_store(&dir);
    third.evaluate("sewha").expect("replays");
    let stats = third.cache_stats();
    assert_no_recomputes(&stats);
    assert_eq!(stats.total_disk_corrupt(), 0, "the store healed: {stats}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_entries_recompute_cleanly() {
    let dir = store_dir("truncate");
    let first = Explorer::new().with_store(&dir);
    let clean = first.evaluate("sewha").expect("computes");

    // keep only a prefix of every entry: valid magic, missing tail
    for f in entry_files(&dir) {
        let bytes = fs::read(&f).expect("readable");
        fs::write(&f, &bytes[..bytes.len() / 2]).expect("truncate");
    }

    let second = Explorer::new().with_store(&dir);
    let healed = second
        .evaluate("sewha")
        .expect("recomputes despite truncation");
    let stats = second.cache_stats();
    assert!(stats.total_disk_corrupt() > 0, "{stats}");
    assert_eq!(clean.evaluation, healed.evaluation);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_bump_invalidates_old_entries() {
    let dir = store_dir("version");
    let first = Explorer::new().with_store(&dir);
    let clean = first.profile("sewha").expect("computes");

    // forge a future format version into every file header (bytes 8..12,
    // straight after the 8-byte magic); payloads stay byte-identical
    for f in entry_files(&dir) {
        let mut bytes = fs::read(&f).expect("readable");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&f, &bytes).expect("rewrite");
    }

    let second = Explorer::new().with_store(&dir);
    let recomputed = second
        .profile("sewha")
        .expect("recomputes under version skew");
    let stats = second.cache_stats();
    assert_eq!(
        stats.total_disk_hits(),
        0,
        "no stale entry may be served: {stats}"
    );
    assert!(stats.total_disk_corrupt() > 0, "{stats}");
    assert_eq!(clean.profile, recomputed.profile);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn deleting_the_store_mid_session_only_costs_recomputes() {
    let dir = store_dir("rm-rf");
    let session = Explorer::new().with_store(&dir);
    session.analyze("sewha", OptLevel::None).expect("computes");

    // `rm -rf` the store while the session is live…
    fs::remove_dir_all(&dir).expect("store removable");

    // …memory-cached artifacts still hit, and a *new* key (different
    // level) recomputes and repopulates the directory without error
    session
        .analyze("sewha", OptLevel::None)
        .expect("memory hit");
    session
        .analyze("sewha", OptLevel::Pipelined)
        .expect("recomputes after rm -rf");
    assert!(!entry_files(&dir).is_empty(), "the store was repopulated");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn sessions_without_a_store_never_touch_disk_counters() {
    let session = Explorer::new();
    session.analyze("sewha", OptLevel::None).expect("computes");
    let stats = session.cache_stats();
    assert_eq!(stats.total_disk_hits(), 0);
    assert_eq!(stats.total_disk_misses(), 0);
    assert_eq!(stats.total_disk_writes(), 0);
    assert_eq!(stats.total_disk_corrupt(), 0);
    assert!(session.store().is_none());
}
