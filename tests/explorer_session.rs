//! Integration tests for the `Explorer` session facade: artifact
//! cache identity, seeded determinism under parallel exploration, the
//! sweep-caching contract, and the unified error type.

use asip_explorer::prelude::*;
use std::sync::Arc;

#[test]
fn session_reuse_returns_cache_identical_artifacts() {
    let session = Explorer::new();
    let c1 = session.compile("sewha").expect("compiles");
    let c2 = session.compile("sewha").expect("compiles");
    assert!(
        Arc::ptr_eq(&c1.program, &c2.program),
        "repeated compile must return the same artifact, not a copy"
    );
    let p1 = session.profile("sewha").expect("profiles");
    let p2 = session.profile("sewha").expect("profiles");
    assert!(Arc::ptr_eq(&p1.profile, &p2.profile));
    let s1 = session
        .schedule("sewha", OptLevel::Pipelined)
        .expect("schedules");
    let s2 = session
        .schedule("sewha", OptLevel::Pipelined)
        .expect("schedules");
    assert!(Arc::ptr_eq(&s1.graph, &s2.graph));
    let a1 = session
        .analyze("sewha", OptLevel::Pipelined)
        .expect("analyzes");
    let a2 = session
        .analyze("sewha", OptLevel::Pipelined)
        .expect("analyzes");
    assert!(Arc::ptr_eq(&a1.report, &a2.report));

    let stats = session.cache_stats();
    assert_eq!(stats.compile.misses, 1);
    assert_eq!(stats.profile.misses, 1);
    assert_eq!(stats.schedule.misses, 1);
    assert_eq!(stats.analyze.misses, 1);
    assert!(stats.total_hits() >= 4, "every second call must hit");
}

#[test]
fn repeated_sweep_compiles_and_profiles_each_benchmark_once() {
    // the ablation scenario: many detector and optimizer configurations
    // over the same benchmark must share one compile and one profile
    let session = Explorer::new();
    for window in 0..=3 {
        let det = DetectorConfig::default().with_window(window);
        session
            .analyze_with("sewha", OptLevel::Pipelined, OptConfig::default(), det)
            .expect("analyzes");
    }
    for unroll in [1usize, 2, 4] {
        let opt = OptConfig {
            unroll,
            ..OptConfig::default()
        };
        session
            .analyze_with("sewha", OptLevel::Pipelined, opt, DetectorConfig::default())
            .expect("analyzes");
    }
    for budget in [500.0, 6000.0] {
        let constraints = DesignConstraints {
            area_budget: budget,
            ..DesignConstraints::default()
        };
        session
            .evaluate_with("sewha", constraints, DetectorConfig::default())
            .expect("evaluates");
    }
    let stats = session.cache_stats();
    assert_eq!(
        stats.compile.misses, 1,
        "the whole sweep performs exactly one compile"
    );
    assert_eq!(
        stats.profile.misses, 1,
        "the whole sweep performs exactly one profiling simulation"
    );
    assert!(stats.compile.hits > 0);
    assert_eq!(
        stats.schedule.misses, 3,
        "one schedule per distinct optimizer config (default, unroll 1, unroll 4)"
    );
}

#[test]
fn dataset_with_seed_is_deterministic_across_parallel_explore_all() {
    let run = |threads: usize| {
        let session = Explorer::new()
            .with_levels([OptLevel::Pipelined])
            .with_seed(2026)
            .with_threads(threads);
        session.explore_all().expect("built-ins explore")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.benchmark.name, b.benchmark.name, "registry order kept");
        assert_eq!(
            a.benchmark.dataset_with_seed(2026),
            b.benchmark.dataset_with_seed(2026),
            "{}: seeded data generation is deterministic",
            a.benchmark.name
        );
        assert_eq!(
            a.profiled.profile, b.profiled.profile,
            "{}: profiles agree across thread counts",
            a.benchmark.name
        );
        assert_eq!(
            a.report_at(OptLevel::Pipelined).expect("configured level"),
            b.report_at(OptLevel::Pipelined).expect("configured level"),
            "{}: reports agree across thread counts",
            a.benchmark.name
        );
        assert_eq!(a.speedup(), b.speedup());
    }
}

#[test]
fn explorer_error_converts_from_each_stage_error() {
    // unknown benchmark
    let session = Explorer::new();
    let err = session.explore("not-a-benchmark").unwrap_err();
    assert!(matches!(err, ExplorerError::UnknownBenchmark { .. }));
    assert!(err.to_string().contains("not-a-benchmark"));

    // front-end error, via the From<FrontendError> conversion
    let broken = Benchmark {
        name: "broken",
        description: "does not parse",
        suite: Suite::User,
        paper_lines: 1,
        data_description: "none",
        source: "void main() { $ }",
        data: DataSpec::Ints { name: "x", n: 1 },
    };
    let session = Explorer::new().with_benchmark(broken);
    let err = session.compile("broken").unwrap_err();
    assert!(matches!(err, ExplorerError::Frontend(_)));
    let source = std::error::Error::source(&err).expect("carries the stage error");
    assert!(source.to_string().contains("line"));

    // simulator error, via From<SimError>: the program wants `x` but
    // the data spec binds `y`
    let unbound = Benchmark {
        name: "unbound",
        description: "input array never bound",
        suite: Suite::User,
        paper_lines: 1,
        data_description: "wrong binding",
        source: r#"
            input int x[4];
            output int y[4];
            void main() {
                int i;
                for (i = 0; i < 4; i = i + 1) { y[i] = x[i] + 1; }
            }
        "#,
        data: DataSpec::Ints { name: "z", n: 4 },
    };
    let session = Explorer::new().with_benchmark(unbound);
    assert!(session.compile("unbound").is_ok(), "compiles fine");
    let err = session.profile("unbound").unwrap_err();
    assert!(matches!(err, ExplorerError::Sim(_)), "got: {err:?}");

    // the IR conversion exists too (exercised directly; the built-in
    // pipeline validates before the session ever sees the program)
    let ir_err: ExplorerError = asip_explorer::ir::IrError::EmptyProgram.into();
    assert!(matches!(ir_err, ExplorerError::Ir(_)));
}

#[test]
fn with_benchmark_replaces_name_collisions_and_invalidates_caches() {
    // a user kernel reusing a built-in name must win the lookup, and
    // artifacts cached before the registry change must not survive it
    let session = Explorer::new();
    let builtin = session.compile("fir").expect("compiles");
    let replacement = Benchmark {
        name: "fir",
        description: "user kernel shadowing the built-in",
        suite: Suite::User,
        paper_lines: 6,
        data_description: "4 random integers",
        source: r#"
            input int x[4];
            output int y[4];
            void main() {
                int i;
                for (i = 0; i < 4; i = i + 1) { y[i] = x[i] * 2; }
            }
        "#,
        data: DataSpec::Ints { name: "x", n: 4 },
    };
    let session = session.with_benchmark(replacement);
    assert_eq!(
        session
            .registry()
            .iter()
            .filter(|b| b.name == "fir")
            .count(),
        1,
        "replacement, not a shadowed duplicate"
    );
    let compiled = session.compile("fir").expect("compiles");
    assert!(
        compiled.program.inst_count() < builtin.program.inst_count(),
        "the session must serve the replacement, not the stale cache"
    );
    assert_eq!(compiled.benchmark.paper_lines, 6);
}

#[test]
fn reset_drops_artifacts_but_keeps_configuration() {
    let session = Explorer::new().with_levels([OptLevel::None]).with_seed(77);
    let before = session.compile("bspline").expect("compiles");
    session.reset();
    assert_eq!(session.cache_stats().total_misses(), 0, "counters cleared");
    let after = session.compile("bspline").expect("compiles");
    assert!(
        !Arc::ptr_eq(&before.program, &after.program),
        "reset dropped the cached artifact"
    );
    assert_eq!(before.program, after.program, "recompute is equal");
    assert_eq!(session.seed(), 77, "permanent configuration survives");
    assert_eq!(session.levels(), &[OptLevel::None]);
}

#[test]
fn exploration_exposes_typed_stage_artifacts() {
    let session = Explorer::new().with_levels([OptLevel::None, OptLevel::Pipelined]);
    let exploration = session.explore("sewha").expect("explores");
    assert_eq!(exploration.benchmark.name, "sewha");
    assert_eq!(exploration.levels.len(), 2);
    assert!(exploration.graph_at(OptLevel::Pipelined).is_some());
    assert!(exploration.report_at(OptLevel::Pipelined).is_some());
    assert!(
        exploration.report_at(OptLevel::PipelinedRenamed).is_none(),
        "unconfigured levels are absent, not silently computed"
    );
    assert!(exploration.speedup() >= 1.0);
    // the unified artifact enum tags each stage
    let art = asip_explorer::Artifact::Compiled(exploration.compiled.clone());
    assert_eq!(art.stage(), Stage::Compile);
    assert_eq!(art.benchmark().expect("per-benchmark stage").name, "sewha");
    // suite artifacts span many benchmarks: no single owner
    let suite = session.design_suite().expect("designs the suite");
    let art = asip_explorer::Artifact::DesignedSuite(suite);
    assert_eq!(art.stage(), Stage::DesignSuite);
    assert!(art.benchmark().is_none());
}

#[test]
fn design_reuses_the_cached_analyze_schedule() {
    // the headline fix: after an analyze at the feedback level, the
    // design and evaluate stages must perform ZERO optimizer runs —
    // selection reads the session's cached schedule, so design feedback
    // is byte-identical to what the analyze stage reported
    let session = Explorer::new();
    let level = session.constraints().opt_level;
    session.analyze("sewha", level).expect("analyzes");
    let schedule_runs = session.cache_stats().schedule.misses;
    let designed = session.design("sewha").expect("designs");
    assert!(!designed.design.is_empty());
    session.evaluate("sewha").expect("evaluates");
    assert_eq!(
        session.cache_stats().schedule.misses,
        schedule_runs,
        "design/evaluate must not add schedule-stage misses"
    );
}

#[test]
fn design_respects_the_session_opt_config() {
    // regression for the headline bug: the design stage used to re-run
    // the optimizer with a DEFAULT OptConfig, so two sessions differing
    // only in optimizer knobs produced the same design; and the design
    // cache key omitted the config, so a session whose config changed
    // mid-flight served stale cross-config hits
    let sensitive = OptConfig {
        unroll: 1,
        width: 1,
        hoist_passes: 0,
        if_convert_max_ops: 0,
        ..OptConfig::default()
    };
    let tuned = Explorer::new();
    let detuned = Explorer::new().with_opt_config(sensitive);
    let d_tuned = tuned.design("fir").expect("designs");
    let d_detuned = detuned.design("fir").expect("designs");
    assert_ne!(
        *d_tuned.design, *d_detuned.design,
        "sessions differing only in OptConfig must see different feedback"
    );

    // same session, config changed through the builder mid-flight: the
    // OptKey in the design/evaluate cache keys must force a recompute
    // rather than serve the other config's entry
    let session = Explorer::new();
    let before = session.design("fir").expect("designs");
    let session = session.with_opt_config(sensitive);
    let after = session.design("fir").expect("designs");
    assert_eq!(
        session.cache_stats().design.misses,
        2,
        "a different OptConfig is a different design cache key"
    );
    assert_eq!(session.cache_stats().design.hits, 0);
    assert!(!std::sync::Arc::ptr_eq(&before.design, &after.design));
    assert_eq!(*d_detuned.design, *after.design, "recompute, not staleness");
}

#[test]
fn concurrent_same_key_requests_single_flight() {
    // two workers racing the same missing key must not both run the
    // stage: one computes, the rest wait and share the artifact, and
    // the miss is counted exactly once
    let session = Explorer::new();
    let barrier = std::sync::Barrier::new(8);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                barrier.wait();
                session
                    .schedule("dft", OptLevel::Pipelined)
                    .expect("schedules");
            });
        }
    });
    let stats = session.cache_stats();
    assert_eq!(stats.compile.misses, 1, "one compile despite the race");
    assert_eq!(stats.profile.misses, 1, "one profile despite the race");
    assert_eq!(stats.schedule.misses, 1, "one schedule despite the race");
    assert_eq!(
        stats.schedule.hits + stats.schedule.misses,
        8,
        "every racer was served (and counted) exactly once"
    );
}

#[test]
fn evaluated_shares_the_cached_evaluation_arc() {
    // the Evaluation payload rides the same Arc as every other stage
    // artifact — a second evaluate must not deep-clone it
    let session = Explorer::new();
    let e1 = session.evaluate("sewha").expect("evaluates");
    let e2 = session.evaluate("sewha").expect("evaluates");
    assert!(Arc::ptr_eq(&e1.evaluation, &e2.evaluation));
    assert!(Arc::ptr_eq(&e1.design, &e2.design));
}
