//! Health-gate behaviour of the remote tier: an unhealthy server is
//! probed at most once per probe interval (everything else is declined
//! locally), a recovered daemon is re-admitted within one probe, and
//! the `requests`/`skipped` counters always reconcile with the number
//! of operations issued.

use asip_explorer::remote::{serve, Endpoint, RemoteTier, RetryPolicy, ServeOptions};
use asip_explorer::{ArtifactTier, Explorer, Stage, TierRead};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asip-health-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn unhealthy_server_is_probed_once_per_interval_and_counters_reconcile() {
    // nothing listens here: the first request fails and marks the
    // server unhealthy; after that only probe-slot claimants may try
    let tier = RemoteTier::new(
        Endpoint::Tcp("127.0.0.1:1".into()),
        RetryPolicy::fail_fast(),
    )
    .with_probe_interval(Duration::from_millis(200));

    let issued: u64 = 40;
    let start = Instant::now();
    for _ in 0..issued {
        assert!(matches!(tier.get(Stage::Compile, 1), TierRead::Miss));
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed = start.elapsed();

    let totals = tier.remote_totals();
    assert_eq!(
        totals.requests + totals.skipped,
        issued,
        "every issued op is either attempted or declined: {totals:?}"
    );
    assert_eq!(
        totals.errors, totals.requests,
        "with no server, every attempted request fails: {totals:?}"
    );
    // the initial failure plus at most one probe per elapsed interval
    // (+1 slack for the boundary)
    let probe_budget = 1 + (elapsed.as_millis() / 200) as u64 + 1;
    assert!(
        totals.requests <= probe_budget,
        "the gate must hold attempts to one probe per interval: \
         {} attempted, budget {probe_budget} over {elapsed:?}",
        totals.requests
    );
    assert!(
        totals.skipped >= issued - probe_budget,
        "everything else is declined without touching the wire: {totals:?}"
    );
}

#[test]
fn restarted_daemon_is_readmitted_within_one_probe() {
    let dir = store_dir("recovery");
    let sock =
        std::env::temp_dir().join(format!("asip-health-recovery-{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let endpoint = Endpoint::Unix(sock.clone());
    let interval = Duration::from_millis(100);
    let tier =
        RemoteTier::new(endpoint.clone(), RetryPolicy::fail_fast()).with_probe_interval(interval);
    let mut issued: u64 = 0;

    // daemon 1 up: the tier is healthy and serves round trips
    let first = serve(
        Arc::new(Explorer::new().with_store(&dir)),
        &endpoint,
        ServeOptions::default(),
    )
    .expect("binds the socket");
    assert!(tier.put(Stage::Compile, 7, b"payload"));
    issued += 1;
    assert!(matches!(tier.get(Stage::Compile, 7), TierRead::Hit(p) if p == b"payload"));
    issued += 1;
    first.shutdown();

    // daemon down: ops degrade to misses, and after the first failure
    // the gate declines locally (at most one probe per interval)
    for _ in 0..10 {
        assert!(matches!(tier.get(Stage::Compile, 7), TierRead::Miss));
        issued += 1;
    }
    let down = tier.remote_totals();
    assert!(
        down.skipped > 0,
        "the gate must decline while down: {down:?}"
    );

    // daemon 2 on the same socket, same store: within one probe
    // interval (plus scheduling slack) the tier must be re-admitted
    let second = serve(
        Arc::new(Explorer::new().with_store(&dir)),
        &endpoint,
        ServeOptions::default(),
    )
    .expect("rebinds the socket");
    let restart = Instant::now();
    let deadline = restart + Duration::from_secs(5);
    let mut recovered_after = None;
    while Instant::now() < deadline {
        issued += 1;
        if matches!(tier.get(Stage::Compile, 7), TierRead::Hit(p) if p == b"payload") {
            recovered_after = Some(restart.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let recovered_after = recovered_after.expect("tier re-admits the recovered daemon");
    assert!(
        recovered_after < interval + Duration::from_secs(1),
        "re-admission must take at most one probe interval plus slack, took {recovered_after:?}"
    );

    // once healthy again, requests flow without further declines
    let before = tier.remote_totals();
    assert!(matches!(tier.get(Stage::Compile, 7), TierRead::Hit(_)));
    issued += 1;
    let after = tier.remote_totals();
    assert_eq!(
        after.skipped, before.skipped,
        "a healthy tier declines nothing: {after:?}"
    );

    // full reconciliation: every op issued in this test was either
    // attempted on the wire or declined by the gate — none vanished
    assert_eq!(
        after.requests + after.skipped,
        issued,
        "issued ops vs requests+skipped: {after:?}"
    );

    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
