//! The artifact tier stack: pluggable cache tiers under the typed
//! session caches.
//!
//! PR 3 wired the on-disk [`ArtifactStore`](crate::store::ArtifactStore)
//! under the in-memory stage caches with hand-written memory-then-disk
//! branches inside the session. This module replaces that wiring with an
//! explicit, pluggable architecture:
//!
//! - [`ArtifactTier`] is the contract every cache tier implements —
//!   `get`/`put`/`contains` over *encoded payload bytes* keyed by
//!   `(Stage, u64)`, plus per-stage [`TierStats`]. The in-memory staging
//!   tier ([`MemoryTier`](crate::cache::MemoryTier)) and the disk store
//!   both implement it; a future remote tier (HTTP, object store) is a
//!   one-struct addition behind the same interface.
//! - [`TierStack`] is an ordered list of tiers with read-through,
//!   write-through and prefetch-staging semantics, and the one generic
//!   `get_or_compute` every session stage goes through.
//!
//! # The tier contract
//!
//! Tier bytes are always a complete [`ArtifactCodec`] payload — the
//! value's encoding with *no* file header; framing (magic, version,
//! checksum) is each persistent tier's private concern. A tier never
//! fails a request: `get` answers [`TierRead::Miss`] for absent entries
//! and [`TierRead::Corrupt`] for entries it rejected itself; `put` may
//! silently drop the write (full disk, over budget). When payload bytes
//! pass a tier's own validation but fail *typed* decoding upstream, the
//! stack reports that back through [`ArtifactTier::mark_corrupt`] so the
//! tier can count it and discard the entry.
//!
//! # Lookup order
//!
//! A stage request resolves in this order, stopping at the first hit:
//!
//! 1. the session's typed per-stage LRU (artifacts shared by `Arc` — the
//!    only tier that never re-decodes);
//! 2. each stack tier top-down (staging memory first, then disk, then
//!    any custom tier) — a hit decodes the payload and promotes the
//!    value into the typed LRU;
//! 3. the stage computation, whose result is written through to every
//!    [persistent](ArtifactTier::persistent) tier.
//!
//! Single-flighting wraps the whole sequence: concurrent requests for
//! one missing key perform one tier walk and at most one computation.

use crate::artifact::{ArtifactCodec, Stage, STAGE_COUNT};
use crate::cache::LruCache;
use crate::error::ExplorerError;
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Counters and occupancy for one pipeline stage of one tier.
///
/// `hits`/`misses`/`corrupt` count [`ArtifactTier::get`] outcomes,
/// `writes` counts landed [`ArtifactTier::put`]s, and
/// `entries`/`bytes` describe what the tier currently holds for the
/// stage. `bytes` is the tier's *own* footprint accounting — encoded
/// payload bytes for the in-memory tier, whole entry files (framing
/// included) for the disk store — so compare byte totals within one
/// tier, not across tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Probes served with a validated payload.
    pub hits: u64,
    /// Probes that found no entry.
    pub misses: u64,
    /// Entries written (or replaced).
    pub writes: u64,
    /// Entries the tier rejected (its own validation) or was told to
    /// discard ([`ArtifactTier::mark_corrupt`]).
    pub corrupt: u64,
    /// Entries currently resident for this stage.
    pub entries: u64,
    /// Payload bytes currently resident for this stage.
    pub bytes: u64,
}

impl TierStats {
    /// Component-wise sum.
    pub fn merge(self, other: TierStats) -> TierStats {
        TierStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            writes: self.writes + other.writes,
            corrupt: self.corrupt + other.corrupt,
            entries: self.entries + other.entries,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// The outcome of probing one tier for one entry.
#[derive(Debug)]
pub enum TierRead {
    /// The entry was present and passed the tier's own validation; the
    /// payload is the complete [`ArtifactCodec`] encoding.
    Hit(Vec<u8>),
    /// No entry under this key.
    Miss,
    /// An entry existed but the tier rejected it (bad framing, checksum
    /// mismatch, version skew). The tier has already counted it; the
    /// stack continues to the next tier.
    Corrupt,
}

/// One pluggable cache tier holding encoded artifact payloads keyed by
/// `(Stage, u64)`.
///
/// Implemented by the in-memory staging tier
/// ([`MemoryTier`](crate::cache::MemoryTier)) and the persistent disk
/// store ([`ArtifactStore`](crate::store::ArtifactStore)); a shared
/// remote tier implements the same five methods and plugs into
/// [`Explorer::with_tier`](crate::Explorer::with_tier) unchanged.
///
/// Tiers are infallible by contract: absence is a [`TierRead::Miss`],
/// damage is a counted [`TierRead::Corrupt`], and a failed `put` returns
/// `false` — never an error. See the [module docs](self) for the byte
/// contract.
pub trait ArtifactTier: Send + Sync + fmt::Debug {
    /// Short stable tier name ("memory", "disk", …) for stats displays.
    fn name(&self) -> &'static str;

    /// Probe for the payload stored under `(stage, key)`, counting
    /// exactly one of hit/miss/corrupt.
    fn get(&self, stage: Stage, key: u64) -> TierRead;

    /// Probe many entries at once, returning one [`TierRead`] per key
    /// in order. The default loops [`ArtifactTier::get`]; tiers with a
    /// cheaper bulk path (one network round trip for the whole
    /// prefetch set) override it and report
    /// [`batched`](ArtifactTier::batched).
    fn get_batch(&self, keys: &[(Stage, u64)]) -> Vec<TierRead> {
        keys.iter()
            .map(|&(stage, key)| self.get(stage, key))
            .collect()
    }

    /// Whether [`get_batch`](ArtifactTier::get_batch) is genuinely
    /// cheaper than per-key [`get`](ArtifactTier::get)s (e.g. it
    /// collapses a prefetch sweep into one network round trip). The
    /// stack uses this to pick between the parallel per-key staging
    /// path and [`TierStack::stage_in_batch`].
    fn batched(&self) -> bool {
        false
    }

    /// Store a payload under `(stage, key)`, replacing any previous
    /// entry. Returns whether the write landed; failures are swallowed
    /// (a tier is an optimization, never a correctness requirement).
    fn put(&self, stage: Stage, key: u64, payload: &[u8]) -> bool;

    /// Whether an entry exists under `(stage, key)`, without touching
    /// hit/miss counters or recency.
    fn contains(&self, stage: Stage, key: u64) -> bool;

    /// Snapshot one stage's counters and occupancy.
    fn stats(&self, stage: Stage) -> TierStats;

    /// Counters and occupancy summed over every stage.
    fn totals(&self) -> TierStats {
        Stage::all()
            .into_iter()
            .fold(TierStats::default(), |acc, s| acc.merge(self.stats(s)))
    }

    /// Whether computed artifacts should be written through to this
    /// tier. `true` for tiers that outlive the request path (disk,
    /// remote); `false` for staging buffers that are only populated by
    /// prefetch/promotion (the in-memory byte tier).
    fn persistent(&self) -> bool {
        true
    }

    /// Callback from the stack: this entry's payload passed the tier's
    /// own validation but failed typed decoding. The tier should count
    /// it as corrupt and discard the entry so the healed rewrite is not
    /// shadowed.
    fn mark_corrupt(&self, stage: Stage, key: u64) {
        let _ = (stage, key);
    }

    /// Zero the tier's counters (occupancy is state, not a counter, and
    /// is unaffected).
    fn reset_counters(&self);
}

/// A fixed-size bundle of per-stage hit/miss/write/corrupt counters,
/// shared by tier implementations.
#[derive(Debug, Default)]
pub(crate) struct TierCounters {
    hits: [AtomicU64; STAGE_COUNT],
    misses: [AtomicU64; STAGE_COUNT],
    writes: [AtomicU64; STAGE_COUNT],
    corrupt: [AtomicU64; STAGE_COUNT],
}

impl TierCounters {
    pub(crate) fn count_hit(&self, stage: Stage) {
        self.hits[stage as usize].fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_miss(&self, stage: Stage) {
        self.misses[stage as usize].fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_write(&self, stage: Stage) {
        self.writes[stage as usize].fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_corrupt(&self, stage: Stage) {
        self.corrupt[stage as usize].fetch_add(1, Ordering::Relaxed);
    }
    /// Reclassify an already-counted hit as corrupt (typed decode failed
    /// after the tier's own validation passed).
    pub(crate) fn demote_hit(&self, stage: Stage) {
        self.hits[stage as usize].fetch_sub(1, Ordering::Relaxed);
        self.corrupt[stage as usize].fetch_add(1, Ordering::Relaxed);
    }
    /// Snapshot one stage's counters into a [`TierStats`] (occupancy
    /// fields zero; the tier fills them in).
    pub(crate) fn snapshot(&self, stage: Stage) -> TierStats {
        let i = stage as usize;
        TierStats {
            hits: self.hits[i].load(Ordering::Relaxed),
            misses: self.misses[i].load(Ordering::Relaxed),
            writes: self.writes[i].load(Ordering::Relaxed),
            corrupt: self.corrupt[i].load(Ordering::Relaxed),
            entries: 0,
            bytes: 0,
        }
    }
    pub(crate) fn reset(&self) {
        for i in 0..STAGE_COUNT {
            self.hits[i].store(0, Ordering::Relaxed);
            self.misses[i].store(0, Ordering::Relaxed);
            self.writes[i].store(0, Ordering::Relaxed);
            self.corrupt[i].store(0, Ordering::Relaxed);
        }
    }
}

// -- the typed front cache ---------------------------------------------

/// One stage's typed front cache: a bounded LRU map of finished
/// artifacts, the set of keys currently being computed (single-flight),
/// and the stage's memory-tier counters. Sits *above* the byte-level
/// tier stack — it is the only layer that shares decoded values by
/// `Arc` instead of re-decoding payload bytes.
#[derive(Debug)]
pub(crate) struct StageCache<K, V> {
    state: Mutex<CacheState<K, V>>,
    ready: Condvar,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) prefetch_hits: AtomicU64,
}

impl<K, V> Default for StageCache<K, V> {
    fn default() -> Self {
        StageCache {
            state: Mutex::new(CacheState::default()),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct CacheState<K, V> {
    lru: LruCache<K, Arc<V>>,
    inflight: HashSet<K>,
}

impl<K, V> Default for CacheState<K, V> {
    fn default() -> Self {
        CacheState {
            lru: LruCache::default(),
            inflight: HashSet::new(),
        }
    }
}

impl<K: Eq + Hash + Clone, V> StageCache<K, V> {
    /// Bound (or unbound) the LRU, returning immediate evictions.
    pub(crate) fn set_capacity(&self, capacity: Option<usize>) -> u64 {
        let evicted = lock(&self.state).lru.set_capacity(capacity);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Entries currently resident.
    pub(crate) fn len(&self) -> usize {
        lock(&self.state).lru.len()
    }

    /// Whether a finished artifact is resident under `key`, without
    /// refreshing recency (used by the prefetcher to skip disk reads
    /// for entries the typed cache will serve anyway).
    pub(crate) fn contains_key(&self, key: &K) -> bool {
        lock(&self.state).lru.contains_key(key)
    }

    /// Drop every entry and zero the counters.
    pub(crate) fn reset(&self) {
        lock(&self.state).lru.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.prefetch_hits.store(0, Ordering::Relaxed);
    }

    fn insert(&self, key: K, value: Arc<V>) {
        let evicted = lock(&self.state).lru.insert(key, value);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }
}

/// Releases a single-flight claim on drop (success, error, or panic)
/// and wakes every thread waiting for the key.
struct InflightClaim<'a, K: Eq + Hash + Clone, V> {
    cache: &'a StageCache<K, V>,
    key: K,
}

impl<K: Eq + Hash + Clone, V> Drop for InflightClaim<'_, K, V> {
    fn drop(&mut self) {
        lock(&self.cache.state).inflight.remove(&self.key);
        self.cache.ready.notify_all();
    }
}

/// Lock a tier mutex, recovering from poisoning: maps are only mutated
/// by whole-entry insertion/removal, so a panicking worker cannot leave
/// an entry half-written.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// -- the stack ---------------------------------------------------------

/// An ordered stack of [`ArtifactTier`]s with read-through,
/// write-through and prefetch-staging semantics.
///
/// The stack itself is cheap to clone (tiers are shared by `Arc`) and
/// may be empty — an empty stack degenerates every request to
/// compute-and-memoize, which is exactly the storeless session of PR 1.
#[derive(Debug, Clone, Default)]
pub struct TierStack {
    tiers: Vec<Arc<dyn ArtifactTier>>,
}

impl TierStack {
    /// An empty stack (typed caches only).
    pub fn new() -> Self {
        TierStack::default()
    }

    /// Append a tier at the bottom of the stack (probed after every
    /// tier already present).
    pub fn push(&mut self, tier: Arc<dyn ArtifactTier>) {
        self.tiers.push(tier);
    }

    /// The tiers, top (probed first) to bottom.
    pub fn tiers(&self) -> &[Arc<dyn ArtifactTier>] {
        &self.tiers
    }

    /// True when the stack holds no tiers at all.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Whether any tier accepts computed-artifact write-through.
    pub fn has_persistent(&self) -> bool {
        self.tiers.iter().any(|t| t.persistent())
    }

    /// Whether the stack can stage prefetched payloads (has a
    /// non-persistent tier above at least one persistent tier).
    pub fn can_stage(&self) -> bool {
        let first_staging = self.tiers.iter().position(|t| !t.persistent());
        match first_staging {
            Some(i) => self.tiers[i + 1..].iter().any(|t| t.persistent()),
            None => false,
        }
    }

    /// Per-stage stats summed across every tier.
    pub fn stats(&self, stage: Stage) -> TierStats {
        self.tiers
            .iter()
            .fold(TierStats::default(), |acc, t| acc.merge(t.stats(stage)))
    }

    /// Zero every tier's counters.
    pub fn reset_counters(&self) {
        for t in &self.tiers {
            t.reset_counters();
        }
    }

    /// Probe tiers `start..` top-down for `(stage, key)`. Returns the
    /// index of the serving tier and the payload, or `None` when every
    /// tier missed. Corrupt entries are skipped (each tier counts its
    /// own).
    fn read_from(&self, start: usize, stage: Stage, key: u64) -> Option<(usize, Vec<u8>)> {
        for (i, tier) in self.tiers.iter().enumerate().skip(start) {
            match tier.get(stage, key) {
                TierRead::Hit(payload) => return Some((i, payload)),
                TierRead::Miss | TierRead::Corrupt => continue,
            }
        }
        None
    }

    /// Write a computed artifact's payload through to every persistent
    /// tier.
    fn write_through(&self, stage: Stage, key: u64, payload: &[u8]) {
        for tier in &self.tiers {
            if tier.persistent() {
                tier.put(stage, key, payload);
            }
        }
    }

    /// Prefetch one entry: read it from the persistent tiers and stage
    /// the payload in the topmost non-persistent tier, so a later
    /// request finds it in memory instead of performing its own disk
    /// read. Returns whether a payload was staged (false when the stack
    /// cannot stage, the entry is already staged, or no persistent tier
    /// holds it).
    pub fn stage_in(&self, stage: Stage, key: u64) -> bool {
        let Some(staging_idx) = self.tiers.iter().position(|t| !t.persistent()) else {
            return false;
        };
        let staging = &self.tiers[staging_idx];
        if staging.contains(stage, key) {
            return false;
        }
        match self.read_from(staging_idx + 1, stage, key) {
            Some((_, payload)) => staging.put(stage, key, &payload),
            None => false,
        }
    }

    /// Whether any tier offers a genuine bulk read
    /// ([`ArtifactTier::batched`]), making
    /// [`TierStack::stage_in_batch`] worthwhile.
    pub fn has_batched(&self) -> bool {
        self.tiers.iter().any(|t| t.batched())
    }

    /// Prefetch a whole key set: probe the persistent tiers top-down
    /// with one [`ArtifactTier::get_batch`] per tier (keys a higher
    /// tier already served are not probed again below) and stage every
    /// payload found in the topmost non-persistent tier. The batched
    /// sibling of [`TierStack::stage_in`], used when a tier offers a
    /// bulk path — one network round trip covers the whole warm-suite
    /// prefetch instead of one request per artifact. Returns how many
    /// entries were staged.
    pub fn stage_in_batch(&self, keys: &[(Stage, u64)]) -> usize {
        let Some(staging_idx) = self.tiers.iter().position(|t| !t.persistent()) else {
            return 0;
        };
        let staging = &self.tiers[staging_idx];
        let mut pending: Vec<(Stage, u64)> = keys
            .iter()
            .copied()
            .filter(|&(stage, key)| !staging.contains(stage, key))
            .collect();
        let mut staged = 0;
        for tier in &self.tiers[staging_idx + 1..] {
            if pending.is_empty() {
                break;
            }
            if !tier.persistent() {
                continue;
            }
            let reads = tier.get_batch(&pending);
            let mut rest = Vec::new();
            for ((stage, key), read) in pending.into_iter().zip(reads) {
                match read {
                    TierRead::Hit(payload) => {
                        if staging.put(stage, key, &payload) {
                            staged += 1;
                        }
                    }
                    TierRead::Miss | TierRead::Corrupt => rest.push((stage, key)),
                }
            }
            pending = rest;
        }
        staged
    }

    /// Memoize one stage computation through the full tier hierarchy
    /// with single-flight semantics: typed LRU → each tier top-down →
    /// `compute`, writing computed results through to every persistent
    /// tier.
    ///
    /// `key_of` derives the stable cross-tier key and is a *closure* so
    /// the (source-bytes) hash is only paid after a typed-cache miss,
    /// never on the hot hit path; it returns `None` when the stack is
    /// not in play for this request. A tier hit decodes the payload and
    /// is **not** a miss — `cache.misses` counts exactly the times
    /// `compute` ran. Hits served from a non-persistent (staging) tier
    /// additionally count as `prefetch_hits`. If the computation fails
    /// or panics, the in-flight claim is released so a waiter can retry.
    pub(crate) fn get_or_compute<K, V, D, F>(
        &self,
        stage: Stage,
        cache: &StageCache<K, V>,
        key: K,
        key_of: D,
        compute: F,
    ) -> Result<Arc<V>, ExplorerError>
    where
        K: Eq + Hash + Clone,
        V: ArtifactCodec,
        D: FnOnce() -> Option<u64>,
        F: FnOnce() -> Result<V, ExplorerError>,
    {
        {
            let mut state = lock(&cache.state);
            loop {
                if let Some(v) = state.lru.get(&key) {
                    cache.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(v));
                }
                if !state.inflight.contains(&key) {
                    break;
                }
                state = cache
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            state.inflight.insert(key.clone());
        }
        // This thread owns the computation for `key`; the claim is
        // released (and waiters woken) on every exit path, panics
        // included, via the guard.
        let claim = InflightClaim {
            cache,
            key: key.clone(),
        };
        let tier_key = key_of();
        if let Some(h) = tier_key {
            let mut start = 0;
            while let Some((i, payload)) = self.read_from(start, stage, h) {
                match V::from_bytes(&payload) {
                    Ok(v) => {
                        if !self.tiers[i].persistent() {
                            cache.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        let value = Arc::new(v);
                        cache.insert(key, Arc::clone(&value));
                        drop(claim);
                        return Ok(value);
                    }
                    Err(_) => {
                        // The tier's own framing validated but the typed
                        // decode rejected the payload (e.g. stage
                        // semantics changed under one FORMAT_VERSION).
                        // Tell the tier, then keep probing lower tiers.
                        self.tiers[i].mark_corrupt(stage, h);
                        start = i + 1;
                    }
                }
            }
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute()?);
        if let Some(h) = tier_key {
            if self.has_persistent() {
                self.write_through(stage, h, &value.to_bytes());
            }
        }
        cache.insert(key, Arc::clone(&value));
        drop(claim);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MemoryTier;
    use crate::store::ArtifactStore;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("asip-tier-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ArtifactStore::open(dir)
    }

    fn stack(tag: &str) -> (TierStack, Arc<MemoryTier>, Arc<ArtifactStore>) {
        let staging = Arc::new(MemoryTier::new());
        let disk = Arc::new(temp_store(tag));
        let mut stack = TierStack::new();
        stack.push(staging.clone());
        stack.push(disk.clone());
        (stack, staging, disk)
    }

    #[test]
    fn empty_stack_computes_and_memoizes() {
        let stack = TierStack::new();
        assert!(!stack.has_persistent());
        assert!(!stack.can_stage());
        let cache: StageCache<u32, u64> = StageCache::default();
        let v = stack
            .get_or_compute(Stage::Compile, &cache, 1, || None, || Ok(7u64))
            .expect("computes");
        assert_eq!(*v, 7);
        let again = stack
            .get_or_compute(Stage::Compile, &cache, 1, || None, || panic!("cached"))
            .expect("hits");
        assert!(Arc::ptr_eq(&v, &again));
        assert_eq!(cache.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn write_through_skips_staging_and_lands_on_disk() {
        let (stack, staging, disk) = stack("write-through");
        assert!(stack.has_persistent());
        assert!(stack.can_stage());
        let cache: StageCache<u32, u64> = StageCache::default();
        stack
            .get_or_compute(Stage::Compile, &cache, 1, || Some(42), || Ok(9u64))
            .expect("computes");
        assert_eq!(staging.totals().writes, 0, "staging is not written through");
        assert_eq!(disk.totals().writes, 1);
        assert!(disk.contains(Stage::Compile, 42));
        std::fs::remove_dir_all(disk.dir()).ok();
    }

    #[test]
    fn staged_entries_serve_and_count_prefetch_hits() {
        let (stack, staging, disk) = stack("staged");
        let cache: StageCache<u32, u64> = StageCache::default();
        stack
            .get_or_compute(Stage::Profile, &cache, 1, || Some(5), || Ok(11u64))
            .expect("computes");

        // a fresh front cache (new "session") with the same stack:
        // prefetch stages the payload, the request decodes from memory
        let cold: StageCache<u32, u64> = StageCache::default();
        assert!(stack.stage_in(Stage::Profile, 5), "staged from disk");
        assert!(!stack.stage_in(Stage::Profile, 5), "already staged");
        assert!(staging.contains(Stage::Profile, 5));
        let v = stack
            .get_or_compute(
                Stage::Profile,
                &cold,
                1,
                || Some(5),
                || Err(ExplorerError::EmptySuite),
            )
            .expect("served from staging");
        assert_eq!(*v, 11);
        assert_eq!(cold.prefetch_hits.load(Ordering::Relaxed), 1);
        assert_eq!(cold.misses.load(Ordering::Relaxed), 0);
        std::fs::remove_dir_all(disk.dir()).ok();
    }

    #[test]
    fn undecodable_payload_demotes_to_corrupt_and_recomputes() {
        let (stack, staging, disk) = stack("demote");
        // stage bytes that validate as framing but are not a u64 payload
        staging.put(Stage::Compile, 3, b"junk");
        let cache: StageCache<u32, u64> = StageCache::default();
        let v = stack
            .get_or_compute(Stage::Compile, &cache, 1, || Some(3), || Ok(8u64))
            .expect("recomputes");
        assert_eq!(*v, 8);
        assert_eq!(staging.totals().corrupt, 1, "demoted after typed decode");
        assert_eq!(staging.totals().entries, 0, "bad entry discarded");
        assert_eq!(cache.misses.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(disk.dir()).ok();
    }

    #[test]
    fn failed_compute_releases_the_inflight_claim() {
        let stack = TierStack::new();
        let cache: StageCache<u32, u32> = StageCache::default();
        let err = stack.get_or_compute(
            Stage::Compile,
            &cache,
            7,
            || None,
            || Err(ExplorerError::EmptySuite),
        );
        assert!(err.is_err());
        // the claim is gone: a retry computes (it would deadlock or
        // panic otherwise) and succeeds
        let v = stack
            .get_or_compute(Stage::Compile, &cache, 7, || None, || Ok(99))
            .expect("retry succeeds");
        assert_eq!(*v, 99);
        assert!(lock(&cache.state).inflight.is_empty());
    }
}
