//! The [`Explorer`] session: staged, cached, parallel design-space
//! exploration.
//!
//! An `Explorer` is a long-lived session object in the style of a
//! compiler driver: *permanent* state (the benchmark registry and the
//! stage configurations, fixed by the builder) and *ephemeral* state
//! (per-stage artifact caches plus hit/miss/eviction counters, dropped
//! by [`Explorer::reset`]). Every stage method is memoized on
//! `(benchmark, stage parameters)`, so a sweep that revisits a
//! benchmark under many detector or optimizer configurations compiles
//! and simulates it exactly once — the expensive early stages are
//! shared across the whole sweep, and [`Explorer::cache_stats`] proves
//! it.
//!
//! Three properties make the session safe to park behind a long-lived
//! service:
//!
//! - **Feedback coherence.** The design stage selects extensions from
//!   the *same* cached [`ScheduleGraph`] the analyze stage reported
//!   (the session's [`OptConfig`] included), instead of silently
//!   re-running the optimizer under default knobs — so a
//!   [`Explorer::design`] after an [`Explorer::analyze`] performs zero
//!   additional optimizer runs.
//! - **Single-flight computes.** Concurrent requests for the same
//!   missing key block on the one in-flight computation instead of
//!   duplicating it; each stage value is computed (and counted) once.
//! - **Bounded caches.** [`Explorer::with_cache_capacity`] puts an LRU
//!   bound on every stage cache; evictions and live entry counts are
//!   surfaced through [`CacheStats`].
//!
//! ```
//! use asip_explorer::Explorer;
//!
//! # fn main() -> Result<(), asip_explorer::ExplorerError> {
//! let session = Explorer::new();
//! let a = session.analyze("sewha", asip_explorer::opt::OptLevel::Pipelined)?;
//! assert!(!a.report.is_empty());
//! // a second request is served from cache — same Arc, no recompute
//! let b = session.analyze("sewha", asip_explorer::opt::OptLevel::Pipelined)?;
//! assert!(std::sync::Arc::ptr_eq(&a.report, &b.report));
//! assert_eq!(session.cache_stats().analyze.hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::artifact::{
    Analyzed, Compiled, Designed, DesignedSuite, Evaluated, EvaluatedSuite, Exploration, Profiled,
    Scheduled, Stage,
};
use crate::cache::LruCache;
use crate::error::ExplorerError;
use asip_benchmarks::{Benchmark, Registry, DEFAULT_SEED};
use asip_chains::{DetectorConfig, SequenceDetector, SequenceReport};
use asip_ir::Program;
use asip_opt::{OptConfig, OptLevel, Optimizer, ScheduleGraph};
use asip_sim::{Profile, Simulator};
use asip_synth::{AsipDesign, AsipDesigner, DesignConstraints, Evaluation};
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hit/miss/eviction counters (and the live entry count) for one stage
/// cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Requests served from the session cache.
    pub hits: u64,
    /// Requests that ran the stage.
    pub misses: u64,
    /// Entries dropped by the LRU bound (see
    /// [`Explorer::with_cache_capacity`]).
    pub evictions: u64,
    /// Entries currently resident in the cache.
    pub entries: u64,
}

/// A snapshot of the session's per-stage cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compile-stage counters.
    pub compile: StageStats,
    /// Profile-stage counters.
    pub profile: StageStats,
    /// Schedule-stage counters.
    pub schedule: StageStats,
    /// Analyze-stage counters.
    pub analyze: StageStats,
    /// Design-stage counters.
    pub design: StageStats,
    /// Evaluate-stage counters.
    pub evaluate: StageStats,
    /// Suite-design-stage counters.
    pub design_suite: StageStats,
    /// Suite-evaluate-stage counters.
    pub evaluate_suite: StageStats,
}

impl CacheStats {
    /// Counters for one stage.
    pub fn stage(&self, stage: Stage) -> StageStats {
        match stage {
            Stage::Compile => self.compile,
            Stage::Profile => self.profile,
            Stage::Schedule => self.schedule,
            Stage::Analyze => self.analyze,
            Stage::Design => self.design,
            Stage::Evaluate => self.evaluate,
            Stage::DesignSuite => self.design_suite,
            Stage::EvaluateSuite => self.evaluate_suite,
        }
    }

    /// Total cache hits across stages.
    pub fn total_hits(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).hits).sum()
    }

    /// Total stage executions across stages.
    pub fn total_misses(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).misses).sum()
    }

    /// Total LRU evictions across stages.
    pub fn total_evictions(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).evictions).sum()
    }

    /// Total entries currently resident across stage caches.
    pub fn total_entries(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).entries).sum()
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stage) in Stage::all().into_iter().enumerate() {
            let st = self.stage(stage);
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{stage}: {}h/{}m", st.hits, st.misses)?;
            if st.evictions > 0 {
                write!(f, "/{}ev", st.evictions)?;
            }
        }
        Ok(())
    }
}

// -- cache keys --------------------------------------------------------

/// Hashable identity of an [`OptConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OptKey {
    unroll: usize,
    merge_blocks: bool,
    width: usize,
    hoist_passes: usize,
    if_convert_max_ops: usize,
}

impl From<OptConfig> for OptKey {
    fn from(c: OptConfig) -> Self {
        OptKey {
            unroll: c.unroll,
            merge_blocks: c.merge_blocks,
            width: c.width,
            hoist_passes: c.hoist_passes,
            if_convert_max_ops: c.if_convert_max_ops,
        }
    }
}

/// Hashable identity of a [`DetectorConfig`] (the chainable-class
/// policy hashes by function address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DetKey {
    min_len: usize,
    max_len: usize,
    window: usize,
    prune_floor_bits: u64,
    chainable: usize,
}

impl From<DetectorConfig> for DetKey {
    fn from(c: DetectorConfig) -> Self {
        DetKey {
            min_len: c.min_len,
            max_len: c.max_len,
            window: c.window,
            prune_floor_bits: c.prune_floor.to_bits(),
            chainable: c.chainable as usize,
        }
    }
}

/// Hashable identity of [`DesignConstraints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConsKey {
    area_bits: u64,
    clock_bits: u64,
    max_extensions: usize,
    opt_level: OptLevel,
}

impl From<DesignConstraints> for ConsKey {
    fn from(c: DesignConstraints) -> Self {
        ConsKey {
            area_bits: c.area_budget.to_bits(),
            clock_bits: c.clock_ns.to_bits(),
            max_extensions: c.max_extensions,
            opt_level: c.opt_level,
        }
    }
}

/// Cache key of the suite-level stages: the *sorted, deduplicated*
/// member set plus every configuration that feeds the suite design.
type SuiteKey = (Vec<String>, u64, ConsKey, DetKey, OptKey);

// -- the session -------------------------------------------------------

/// One stage's cache: a bounded LRU map of finished artifacts plus the
/// set of keys currently being computed. A thread that misses on a key
/// another thread is already computing waits on `ready` instead of
/// duplicating the work (single-flight).
#[derive(Debug)]
struct StageCache<K, V> {
    state: Mutex<CacheState<K, V>>,
    ready: Condvar,
}

impl<K, V> Default for StageCache<K, V> {
    fn default() -> Self {
        StageCache {
            state: Mutex::new(CacheState::default()),
            ready: Condvar::new(),
        }
    }
}

#[derive(Debug)]
struct CacheState<K, V> {
    lru: LruCache<K, Arc<V>>,
    inflight: HashSet<K>,
}

impl<K, V> Default for CacheState<K, V> {
    fn default() -> Self {
        CacheState {
            lru: LruCache::default(),
            inflight: HashSet::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Caches {
    compile: StageCache<String, Program>,
    profile: StageCache<(String, u64), Profile>,
    schedule: StageCache<(String, u64, OptLevel, OptKey), ScheduleGraph>,
    analyze: StageCache<(String, u64, OptLevel, OptKey, DetKey), SequenceReport>,
    design: StageCache<(String, u64, ConsKey, DetKey, OptKey), AsipDesign>,
    evaluate: StageCache<(String, u64, ConsKey, DetKey, OptKey), Evaluation>,
    design_suite: StageCache<SuiteKey, AsipDesign>,
    evaluate_suite: StageCache<SuiteKey, Vec<(String, Evaluation)>>,
}

#[derive(Debug, Default)]
struct Counters {
    hits: [AtomicU64; 8],
    misses: [AtomicU64; 8],
    evictions: [AtomicU64; 8],
}

/// A staged, cached, parallel design-space exploration session over the
/// benchmark registry. See the [module docs](self) for the state model
/// and a usage example.
#[derive(Debug)]
pub struct Explorer {
    registry: Registry,
    levels: Vec<OptLevel>,
    detector: DetectorConfig,
    opt_config: OptConfig,
    constraints: DesignConstraints,
    seed: u64,
    threads: usize,
    cache_capacity: Option<usize>,
    caches: Caches,
    counters: Counters,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            registry: asip_benchmarks::registry(),
            levels: OptLevel::all().to_vec(),
            detector: DetectorConfig::default(),
            opt_config: OptConfig::default(),
            constraints: DesignConstraints::default(),
            seed: DEFAULT_SEED,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: None,
            caches: Caches::default(),
            counters: Counters::default(),
        }
    }
}

impl Explorer {
    /// A session over the Table-1 registry with default configuration:
    /// all three optimization levels, default detector and constraints,
    /// the paper seed, unbounded caches, and one worker per available
    /// core.
    pub fn new() -> Self {
        Explorer::default()
    }

    // -- builder (permanent state) -------------------------------------

    /// Replace the benchmark registry. Drops any cached artifacts, since
    /// a name may now resolve to a different program.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self.reset();
        self
    }

    /// Add one benchmark (e.g. a user kernel) to the session registry.
    /// A benchmark with the same name replaces the existing entry, and
    /// any cached artifacts are dropped so the name cannot serve stale
    /// results.
    pub fn with_benchmark(mut self, bench: Benchmark) -> Self {
        self.registry.push(bench);
        self.reset();
        self
    }

    /// Restrict which optimization levels [`Explorer::explore`] visits.
    pub fn with_levels(mut self, levels: impl IntoIterator<Item = OptLevel>) -> Self {
        self.levels = levels.into_iter().collect();
        self
    }

    /// Set the default sequence-detector configuration.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Set the default optimizer configuration. Cached artifacts stay
    /// valid — every stage key downstream of the optimizer includes the
    /// config, so old and new schedules (and the designs selected from
    /// them) coexist in the cache without cross-talk.
    pub fn with_opt_config(mut self, config: OptConfig) -> Self {
        self.opt_config = config;
        self
    }

    /// Set the default hardware constraints for the design stage.
    pub fn with_constraints(mut self, constraints: DesignConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Set the input-data seed (default: the paper seed, 1995).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the worker-thread count for [`Explorer::explore_all`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bound every stage cache to at most `capacity` entries (least
    /// recently used entries are evicted first; a capacity of 0 is
    /// treated as 1). The default is unbounded, which is fine for the
    /// twelve-benchmark registry but not for a session serving an open
    /// stream of sweeps — evictions are counted per stage in
    /// [`CacheStats`].
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        let cap = Some(capacity.max(1));
        self.cache_capacity = cap;
        let c = &self.caches;
        let evicted = [
            (Stage::Compile, lock(&c.compile.state).lru.set_capacity(cap)),
            (Stage::Profile, lock(&c.profile.state).lru.set_capacity(cap)),
            (
                Stage::Schedule,
                lock(&c.schedule.state).lru.set_capacity(cap),
            ),
            (Stage::Analyze, lock(&c.analyze.state).lru.set_capacity(cap)),
            (Stage::Design, lock(&c.design.state).lru.set_capacity(cap)),
            (
                Stage::Evaluate,
                lock(&c.evaluate.state).lru.set_capacity(cap),
            ),
            (
                Stage::DesignSuite,
                lock(&c.design_suite.state).lru.set_capacity(cap),
            ),
            (
                Stage::EvaluateSuite,
                lock(&c.evaluate_suite.state).lru.set_capacity(cap),
            ),
        ];
        for (stage, n) in evicted {
            self.counters.evictions[stage as usize].fetch_add(n, Ordering::Relaxed);
        }
        self
    }

    // -- accessors -----------------------------------------------------

    /// The session's benchmark registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The levels [`Explorer::explore`] visits.
    pub fn levels(&self) -> &[OptLevel] {
        &self.levels
    }

    /// The session detector configuration.
    pub fn detector(&self) -> DetectorConfig {
        self.detector
    }

    /// The session optimizer configuration.
    pub fn opt_config(&self) -> OptConfig {
        self.opt_config
    }

    /// The session design constraints.
    pub fn constraints(&self) -> DesignConstraints {
        self.constraints
    }

    /// The session input-data seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-stage cache entry bound, if one was set.
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    // -- ephemeral-state management ------------------------------------

    /// Drop every cached artifact and zero the counters. Configuration
    /// (registry, levels, stage parameters, cache bounds) is permanent
    /// and survives.
    pub fn reset(&self) {
        lock(&self.caches.compile.state).lru.clear();
        lock(&self.caches.profile.state).lru.clear();
        lock(&self.caches.schedule.state).lru.clear();
        lock(&self.caches.analyze.state).lru.clear();
        lock(&self.caches.design.state).lru.clear();
        lock(&self.caches.evaluate.state).lru.clear();
        lock(&self.caches.design_suite.state).lru.clear();
        lock(&self.caches.evaluate_suite.state).lru.clear();
        for i in 0..8 {
            self.counters.hits[i].store(0, Ordering::Relaxed);
            self.counters.misses[i].store(0, Ordering::Relaxed);
            self.counters.evictions[i].store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot the per-stage cache hit/miss/eviction counters and live
    /// entry counts.
    pub fn cache_stats(&self) -> CacheStats {
        let c = &self.caches;
        let entries: [u64; 8] = [
            lock(&c.compile.state).lru.len() as u64,
            lock(&c.profile.state).lru.len() as u64,
            lock(&c.schedule.state).lru.len() as u64,
            lock(&c.analyze.state).lru.len() as u64,
            lock(&c.design.state).lru.len() as u64,
            lock(&c.evaluate.state).lru.len() as u64,
            lock(&c.design_suite.state).lru.len() as u64,
            lock(&c.evaluate_suite.state).lru.len() as u64,
        ];
        let get = |s: Stage| StageStats {
            hits: self.counters.hits[s as usize].load(Ordering::Relaxed),
            misses: self.counters.misses[s as usize].load(Ordering::Relaxed),
            evictions: self.counters.evictions[s as usize].load(Ordering::Relaxed),
            entries: entries[s as usize],
        };
        CacheStats {
            compile: get(Stage::Compile),
            profile: get(Stage::Profile),
            schedule: get(Stage::Schedule),
            analyze: get(Stage::Analyze),
            design: get(Stage::Design),
            evaluate: get(Stage::Evaluate),
            design_suite: get(Stage::DesignSuite),
            evaluate_suite: get(Stage::EvaluateSuite),
        }
    }

    // -- stage methods -------------------------------------------------

    /// Resolve a benchmark by name.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::UnknownBenchmark`] if `name` is not registered.
    pub fn benchmark(&self, name: &str) -> Result<Benchmark, ExplorerError> {
        self.registry
            .find(name)
            .copied()
            .ok_or_else(|| ExplorerError::UnknownBenchmark { name: name.into() })
    }

    /// Compile stage: mini-C source → validated 3-address code.
    ///
    /// # Errors
    ///
    /// Unknown benchmarks and front-end failures.
    pub fn compile(&self, name: &str) -> Result<Compiled, ExplorerError> {
        let benchmark = self.benchmark(name)?;
        let program = self.cached(
            Stage::Compile,
            &self.caches.compile,
            name.to_string(),
            || Ok(benchmark.compile()?),
        )?;
        Ok(Compiled { benchmark, program })
    }

    /// Profile stage: run the benchmark on its seeded Table-1 input
    /// data and collect per-instruction dynamic counts.
    ///
    /// # Errors
    ///
    /// Compile-stage errors plus simulator failures.
    pub fn profile(&self, name: &str) -> Result<Profiled, ExplorerError> {
        let compiled = self.compile(name)?;
        let seed = self.seed;
        let profile = self.cached(
            Stage::Profile,
            &self.caches.profile,
            (name.to_string(), seed),
            || {
                let data = compiled.benchmark.dataset_with_seed(seed);
                Ok(Simulator::new(&compiled.program).run(&data)?.profile)
            },
        )?;
        Ok(Profiled {
            benchmark: compiled.benchmark,
            seed,
            profile,
        })
    }

    /// Schedule stage at `level` with the session optimizer config.
    ///
    /// # Errors
    ///
    /// Propagates compile/profile-stage errors.
    pub fn schedule(&self, name: &str, level: OptLevel) -> Result<Scheduled, ExplorerError> {
        self.schedule_with(name, level, self.opt_config)
    }

    /// Schedule stage with an explicit optimizer config (sweeps share
    /// the cached compile and profile artifacts across configs).
    ///
    /// # Errors
    ///
    /// Propagates compile/profile-stage errors.
    pub fn schedule_with(
        &self,
        name: &str,
        level: OptLevel,
        config: OptConfig,
    ) -> Result<Scheduled, ExplorerError> {
        let profiled = self.profile(name)?;
        let compiled = self.compile(name)?;
        let key = (name.to_string(), self.seed, level, OptKey::from(config));
        let graph = self.cached(Stage::Schedule, &self.caches.schedule, key, || {
            Ok(Optimizer::new(level)
                .with_config(config)
                .run(&compiled.program, &profiled.profile))
        })?;
        Ok(Scheduled {
            benchmark: compiled.benchmark,
            level,
            graph,
        })
    }

    /// Analyze stage at `level` with the session detector config.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn analyze(&self, name: &str, level: OptLevel) -> Result<Analyzed, ExplorerError> {
        self.analyze_with(name, level, self.opt_config, self.detector)
    }

    /// Analyze stage with explicit optimizer and detector configs.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn analyze_with(
        &self,
        name: &str,
        level: OptLevel,
        opt: OptConfig,
        detector: DetectorConfig,
    ) -> Result<Analyzed, ExplorerError> {
        let scheduled = self.schedule_with(name, level, opt)?;
        let key = (
            name.to_string(),
            self.seed,
            level,
            OptKey::from(opt),
            DetKey::from(detector),
        );
        let report = self.cached(Stage::Analyze, &self.caches.analyze, key, || {
            Ok(SequenceDetector::new(detector).analyze(&scheduled.graph))
        })?;
        Ok(Analyzed {
            benchmark: scheduled.benchmark,
            level,
            report,
        })
    }

    /// Design stage: select ISA extensions under the session constraints
    /// from the *cached* schedule at the constraints' feedback level —
    /// the same graph [`Explorer::analyze`] reports, session
    /// [`OptConfig`] included. After an `analyze` at that level, this
    /// performs zero optimizer runs.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn design(&self, name: &str) -> Result<Designed, ExplorerError> {
        self.design_with(name, self.constraints, self.detector)
    }

    /// Design stage with explicit constraints and detector config. The
    /// schedule feeding selection still honors the session
    /// [`OptConfig`], and the cache key includes it, so sessions (or
    /// sweeps) differing only in optimizer knobs never share design
    /// entries.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn design_with(
        &self,
        name: &str,
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<Designed, ExplorerError> {
        let scheduled = self.schedule_with(name, constraints.opt_level, self.opt_config)?;
        let compiled = self.compile(name)?;
        let key = (
            name.to_string(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
            OptKey::from(self.opt_config),
        );
        let design = self.cached(Stage::Design, &self.caches.design, key, || {
            Ok(AsipDesigner::new(constraints)
                .with_detector(detector)
                .design_from_schedule(&scheduled.graph, &compiled.program))
        })?;
        Ok(Designed {
            benchmark: compiled.benchmark,
            design,
        })
    }

    /// Evaluate stage: rewrite the program with the selected design and
    /// measure the cycle-count effect on the profiling simulator.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; simulator failures during the
    /// measurement rerun surface as [`ExplorerError::Eval`].
    pub fn evaluate(&self, name: &str) -> Result<Evaluated, ExplorerError> {
        self.evaluate_with(name, self.constraints, self.detector)
    }

    /// Evaluate stage with explicit constraints and detector config
    /// (budget/clock sweeps share every earlier stage).
    ///
    /// # Errors
    ///
    /// As [`Explorer::evaluate`].
    pub fn evaluate_with(
        &self,
        name: &str,
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<Evaluated, ExplorerError> {
        let designed = self.design_with(name, constraints, detector)?;
        let compiled = self.compile(name)?;
        let key = (
            name.to_string(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
            OptKey::from(self.opt_config),
        );
        let evaluation = self.cached(Stage::Evaluate, &self.caches.evaluate, key, || {
            let data = compiled.benchmark.dataset_with_seed(self.seed);
            asip_synth::evaluate(&compiled.program, &designed.design, &data)
                .map_err(ExplorerError::Eval)
        })?;
        Ok(Evaluated {
            benchmark: compiled.benchmark,
            design: designed.design,
            evaluation,
        })
    }

    // -- suite stages --------------------------------------------------

    /// Suite-design stage over the whole registry: one shared extension
    /// set tuned to every registered benchmark (the paper's "an ASIP …
    /// tuned to a suite of applications"), under the session
    /// constraints and detector.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::EmptySuite`] for an empty registry, plus
    /// earlier-stage errors for any member.
    pub fn design_suite(&self) -> Result<DesignedSuite, ExplorerError> {
        let names: Vec<&str> = self.registry.iter().map(|b| b.name).collect();
        self.design_suite_with(&names, self.constraints, self.detector)
    }

    /// Suite-design stage for an explicit member set with explicit
    /// constraints and detector config. The members are deduplicated
    /// and sorted, so any ordering of the same set is the same cache
    /// key; the key also carries the seed and every configuration that
    /// feeds selection. Member schedules are computed in parallel on
    /// the session thread pool (each a cache hit if already present).
    ///
    /// # Errors
    ///
    /// [`ExplorerError::EmptySuite`] when `names` is empty,
    /// [`ExplorerError::UnknownBenchmark`] for an unregistered member,
    /// plus earlier-stage errors.
    pub fn design_suite_with(
        &self,
        names: &[&str],
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<DesignedSuite, ExplorerError> {
        let members = self.suite_members(names)?;
        let key = self.suite_key(&members, constraints, detector);
        let opt = self.opt_config;
        let design = self.cached(Stage::DesignSuite, &self.caches.design_suite, key, || {
            let staged = self.map_slice(&members, |name| {
                let scheduled = self.schedule_with(name, constraints.opt_level, opt)?;
                let compiled = self.compile(name)?;
                Ok((scheduled, compiled))
            })?;
            let suite: Vec<(&ScheduleGraph, &Program)> = staged
                .iter()
                .map(|(s, c)| (s.graph.as_ref(), c.program.as_ref()))
                .collect();
            Ok(AsipDesigner::new(constraints)
                .with_detector(detector)
                .design_from_schedules(&suite))
        })?;
        Ok(DesignedSuite {
            benchmarks: members,
            design,
        })
    }

    /// Suite-evaluate stage over the whole registry: design one shared
    /// extension set ([`Explorer::design_suite`]) and measure it on
    /// every member.
    ///
    /// # Errors
    ///
    /// As [`Explorer::evaluate_suite_with`].
    pub fn evaluate_suite(&self) -> Result<EvaluatedSuite, ExplorerError> {
        let names: Vec<&str> = self.registry.iter().map(|b| b.name).collect();
        self.evaluate_suite_with(&names, self.constraints, self.detector)
    }

    /// Suite-evaluate stage for an explicit member set: the shared
    /// design is applied to each member program and measured on the
    /// profiling simulator, in parallel over the session thread pool.
    /// Results are keyed and ordered by the sorted member set.
    ///
    /// # Errors
    ///
    /// Everything [`Explorer::design_suite_with`] raises; measurement
    /// failures surface as [`ExplorerError::Eval`].
    pub fn evaluate_suite_with(
        &self,
        names: &[&str],
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<EvaluatedSuite, ExplorerError> {
        let designed = self.design_suite_with(names, constraints, detector)?;
        let key = self.suite_key(&designed.benchmarks, constraints, detector);
        let design = Arc::clone(&designed.design);
        let evaluations = self.cached(
            Stage::EvaluateSuite,
            &self.caches.evaluate_suite,
            key,
            || {
                self.map_slice(&designed.benchmarks, |name| {
                    let compiled = self.compile(name)?;
                    let data = compiled.benchmark.dataset_with_seed(self.seed);
                    let evaluation = asip_synth::evaluate(&compiled.program, &design, &data)
                        .map_err(ExplorerError::Eval)?;
                    Ok((name.clone(), evaluation))
                })
            },
        )?;
        Ok(EvaluatedSuite {
            benchmarks: designed.benchmarks,
            design: designed.design,
            evaluations,
        })
    }

    /// The one place a [`SuiteKey`] is built, so the design- and
    /// evaluate-suite caches can never drift apart on which
    /// configuration components distinguish entries.
    fn suite_key(
        &self,
        members: &[String],
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> SuiteKey {
        (
            members.to_vec(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
            OptKey::from(self.opt_config),
        )
    }

    /// Validate and canonicalize a suite member set: every name must
    /// resolve, duplicates collapse, and the result is sorted so member
    /// order never changes the cache key (or the combine order).
    fn suite_members(&self, names: &[&str]) -> Result<Vec<String>, ExplorerError> {
        if names.is_empty() {
            return Err(ExplorerError::EmptySuite);
        }
        let mut members = BTreeSet::new();
        for name in names {
            self.benchmark(name)?;
            members.insert((*name).to_string());
        }
        Ok(members.into_iter().collect())
    }

    /// Run the complete pipeline for one benchmark: every configured
    /// level's schedule and analysis, plus the design and its measured
    /// evaluation.
    ///
    /// # Errors
    ///
    /// Propagates the first stage error encountered.
    pub fn explore(&self, name: &str) -> Result<Exploration, ExplorerError> {
        let compiled = self.compile(name)?;
        let profiled = self.profile(name)?;
        let mut levels = Vec::with_capacity(self.levels.len());
        for &level in &self.levels {
            let scheduled = self.schedule(name, level)?;
            let analyzed = self.analyze(name, level)?;
            levels.push((scheduled, analyzed));
        }
        let designed = self.design(name)?;
        let evaluated = self.evaluate(name)?;
        Ok(Exploration {
            benchmark: compiled.benchmark,
            compiled,
            profiled,
            levels,
            designed,
            evaluated,
        })
    }

    /// Explore every benchmark in the registry, fanning the work out
    /// over the session's worker threads. Results come back in registry
    /// order regardless of scheduling.
    ///
    /// # Errors
    ///
    /// The first stage error encountered (work in flight completes).
    pub fn explore_all(&self) -> Result<Vec<Exploration>, ExplorerError> {
        self.map_all(|b| self.explore(b.name))
    }

    /// Run `f` for every registry benchmark on the session thread pool,
    /// preserving registry order. `f` typically composes stage methods,
    /// so all workers share the session caches.
    ///
    /// # Errors
    ///
    /// The first error any worker produced (in registry order).
    pub fn map_all<T, F>(&self, f: F) -> Result<Vec<T>, ExplorerError>
    where
        T: Send,
        F: Fn(&Benchmark) -> Result<T, ExplorerError> + Sync,
    {
        let benches: Vec<Benchmark> = self.registry.iter().copied().collect();
        self.map_slice(&benches, f)
    }

    /// The worker pool behind [`Explorer::map_all`]: a shared atomic
    /// work index over `items`, one result slot per item.
    fn map_slice<I, T, F>(&self, items: &[I], f: F) -> Result<Vec<T>, ExplorerError>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> Result<T, ExplorerError> + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T, ExplorerError>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    *lock(&slots[i]) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                lock(&slot)
                    .take()
                    .expect("every slot is filled before scope exit")
            })
            .collect()
    }

    // -- cache plumbing ------------------------------------------------

    /// Memoize one stage computation with single-flight semantics: a
    /// cache hit returns the shared artifact; the first thread to miss
    /// on a key computes it (counted as exactly one miss) while any
    /// other thread asking for the same key waits on the result instead
    /// of duplicating the work. If the computation fails or panics, the
    /// in-flight claim is released so a waiter can retry.
    fn cached<K, V, F>(
        &self,
        stage: Stage,
        cache: &StageCache<K, V>,
        key: K,
        compute: F,
    ) -> Result<Arc<V>, ExplorerError>
    where
        K: Eq + Hash + Clone,
        F: FnOnce() -> Result<V, ExplorerError>,
    {
        {
            let mut state = lock(&cache.state);
            loop {
                if let Some(v) = state.lru.get(&key) {
                    self.counters.hits[stage as usize].fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(v));
                }
                if !state.inflight.contains(&key) {
                    break;
                }
                state = cache
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            state.inflight.insert(key.clone());
        }
        // This thread owns the computation for `key`; the claim is
        // released (and waiters woken) on every exit path, panics
        // included, via the guard.
        let claim = InflightClaim {
            cache,
            key: key.clone(),
        };
        self.counters.misses[stage as usize].fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute()?);
        let evicted = lock(&cache.state).lru.insert(key, Arc::clone(&value));
        self.counters.evictions[stage as usize].fetch_add(evicted, Ordering::Relaxed);
        drop(claim);
        Ok(value)
    }
}

/// Releases a single-flight claim on drop (success, error, or panic)
/// and wakes every thread waiting for the key.
struct InflightClaim<'a, K: Eq + Hash + Clone, V> {
    cache: &'a StageCache<K, V>,
    key: K,
}

impl<K: Eq + Hash + Clone, V> Drop for InflightClaim<'_, K, V> {
    fn drop(&mut self) {
        lock(&self.cache.state).inflight.remove(&self.key);
        self.cache.ready.notify_all();
    }
}

/// Lock a session mutex, recovering from poisoning: cache maps are
/// only mutated by whole-entry insertion, so a panicking worker cannot
/// leave an entry half-written.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_counter_layout() {
        // `Stage as usize` indexes the counter arrays; pin the layout.
        for (i, s) in Stage::all().into_iter().enumerate() {
            assert_eq!(s as usize, i);
        }
        assert_eq!(Stage::all().len(), 8);
    }

    #[test]
    fn unknown_benchmark_is_an_error_not_a_panic() {
        let session = Explorer::new();
        let err = session.compile("not-a-benchmark").unwrap_err();
        assert!(matches!(err, ExplorerError::UnknownBenchmark { .. }));
    }

    #[test]
    fn reset_clears_ephemeral_state_only() {
        let session = Explorer::new().with_levels([OptLevel::Pipelined]);
        session.profile("sewha").expect("profiles");
        assert_eq!(session.cache_stats().compile.misses, 1);
        session.reset();
        assert_eq!(session.cache_stats(), CacheStats::default());
        // permanent state survives: same configuration, fresh caches
        assert_eq!(session.levels(), &[OptLevel::Pipelined]);
        session.profile("sewha").expect("profiles again");
        assert_eq!(session.cache_stats().profile.misses, 1);
    }

    #[test]
    fn suite_members_sort_dedup_and_validate() {
        let session = Explorer::new();
        let members = session
            .suite_members(&["fir", "sewha", "fir", "bspline"])
            .expect("all registered");
        assert_eq!(members, ["bspline", "fir", "sewha"]);
        assert!(matches!(
            session.suite_members(&[]).unwrap_err(),
            ExplorerError::EmptySuite
        ));
        assert!(matches!(
            session.suite_members(&["fir", "nope"]).unwrap_err(),
            ExplorerError::UnknownBenchmark { .. }
        ));
    }

    #[test]
    fn failed_compute_releases_the_inflight_claim() {
        let session = Explorer::new();
        let cache: StageCache<u32, u32> = StageCache::default();
        let err = session.cached(Stage::Compile, &cache, 7, || Err(ExplorerError::EmptySuite));
        assert!(err.is_err());
        // the claim is gone: a retry computes (it would deadlock or
        // panic otherwise) and succeeds
        let v = session
            .cached(Stage::Compile, &cache, 7, || Ok(99))
            .expect("retry succeeds");
        assert_eq!(*v, 99);
        assert!(lock(&cache.state).inflight.is_empty());
    }
}
