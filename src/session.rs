//! The [`Explorer`] session: staged, cached, parallel design-space
//! exploration.
//!
//! An `Explorer` is a long-lived session object in the style of a
//! compiler driver: *permanent* state (the benchmark registry and the
//! stage configurations, fixed by the builder) and *ephemeral* state
//! (per-stage artifact caches plus hit/miss/eviction counters, dropped
//! by [`Explorer::reset`]). Every stage method is memoized on
//! `(benchmark, stage parameters)`, so a sweep that revisits a
//! benchmark under many detector or optimizer configurations compiles
//! and simulates it exactly once — the expensive early stages are
//! shared across the whole sweep, and [`Explorer::cache_stats`] proves
//! it.
//!
//! Five properties make the session safe to park behind a long-lived
//! service:
//!
//! - **Feedback coherence.** The design stage selects extensions from
//!   the *same* cached [`ScheduleGraph`] the analyze stage reported
//!   (the session's [`OptConfig`] included), instead of silently
//!   re-running the optimizer under default knobs — so a
//!   [`Explorer::design`] after an [`Explorer::analyze`] performs zero
//!   additional optimizer runs.
//! - **Single-flight computes.** Concurrent requests for the same
//!   missing key block on the one in-flight computation instead of
//!   duplicating it; each stage value is computed (and counted) once.
//! - **Bounded caches.** [`Explorer::with_cache_capacity`] puts an LRU
//!   bound on every stage cache; evictions and live entry counts are
//!   surfaced through [`CacheStats`].
//! - **Pluggable persistence.** [`Explorer::with_store`] attaches an
//!   on-disk, content-addressed artifact store under the memory caches
//!   so separate processes share work. Every stage request flows
//!   through one generic [`TierStack`] (see [`crate::tier`]): typed
//!   memory cache → staging byte tier → disk → compute, with
//!   write-through of computed artifacts; [`Explorer::with_tier`] plugs
//!   in additional tiers (e.g. a future shared remote store) behind the
//!   same [`ArtifactTier`] interface. Corrupted or stale entries fall
//!   back to recompute, and the disk tier's
//!   hit/miss/write/corrupt/byte counters are part of [`CacheStats`].
//! - **Parallel warm starts.** [`Explorer::explore_all`] and the suite
//!   stages [`prefetch`](Explorer::prefetch) their persisted artifacts
//!   on the session thread pool before fan-out, so a warm run performs
//!   its disk reads concurrently instead of one file at a time
//!   (`prefetch_hits` in [`CacheStats`] shows the effect).
//!
//! ```
//! use asip_explorer::Explorer;
//!
//! # fn main() -> Result<(), asip_explorer::ExplorerError> {
//! let session = Explorer::new();
//! let a = session.analyze("sewha", asip_explorer::opt::OptLevel::Pipelined)?;
//! assert!(!a.report.is_empty());
//! // a second request is served from cache — same Arc, no recompute
//! let b = session.analyze("sewha", asip_explorer::opt::OptLevel::Pipelined)?;
//! assert!(std::sync::Arc::ptr_eq(&a.report, &b.report));
//! assert_eq!(session.cache_stats().analyze.hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::artifact::{
    Analyzed, ArtifactCodec, Compiled, DesignSpaced, Designed, DesignedSuite, Evaluated,
    EvaluatedSuite, Exploration, Profiled, Scheduled, Stage,
};
use crate::cache::{LruCache, MemoryTier};
use crate::error::ExplorerError;
use crate::remote::{Endpoint, RemoteTier, RemoteTotals, RetryPolicy};
use crate::store::{ArtifactStore, StableHasher, StoreGcConfig};
use crate::tier::{lock, ArtifactTier, StageCache, TierStack, TierStats};
use asip_benchmarks::{Benchmark, DataSpec, Registry, DEFAULT_SEED};
use asip_chains::{DetectorConfig, SequenceDetector, SequenceReport};
use asip_ir::{OpClass, Program};
use asip_opt::{OptConfig, OptLevel, Optimizer, ScheduleGraph};
use asip_sim::{Engine, Profile, RunStateStats};
use asip_synth::{
    AsipDesign, AsipDesigner, DesignConstraints, DesignSpace, Evaluation, LevelFeedback,
    PreparedDesign,
};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters (and the live entry count) for one stage
/// cache, plus the disk-tier counters for the same stage when a store is
/// attached ([`Explorer::with_store`]).
///
/// The tiers count disjoint outcomes: a request is either a memory
/// `hit`, a prefetch hit (`prefetch_hits` — decoded from bytes the
/// parallel prefetcher staged in memory), a disk hit (`disk_hits` — the
/// artifact was decoded from disk, *not* recomputed), or a `miss` (the
/// stage actually ran). `misses` therefore always equals the number of
/// times the stage's computation executed in this session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Requests served from the in-memory session cache.
    pub hits: u64,
    /// Requests that ran the stage (no cache tier could serve).
    pub misses: u64,
    /// Entries dropped by the LRU bound (see
    /// [`Explorer::with_cache_capacity`]).
    pub evictions: u64,
    /// Entries currently resident in the in-memory cache.
    pub entries: u64,
    /// Requests served by decoding bytes staged in the in-memory byte
    /// tier by the parallel suite prefetcher
    /// ([`Explorer::prefetch`]) — no recompute *and* no request-path
    /// disk read.
    pub prefetch_hits: u64,
    /// Requests served by decoding a persisted artifact (no recompute).
    /// Prefetched entries count here at staging time, so a warm
    /// prefetched run still shows one disk hit per artifact read.
    pub disk_hits: u64,
    /// Disk probes that found no entry (the stage then ran, or — for a
    /// prefetch probe — nothing was staged).
    pub disk_misses: u64,
    /// Artifacts written through to the store.
    pub disk_writes: u64,
    /// Store entries rejected as corrupted or version-skewed (the stage
    /// then ran and the entry was rewritten).
    pub disk_corrupt: u64,
    /// On-disk bytes currently held by this stage's store entries
    /// (whole files; session-local view — see
    /// [`ArtifactStore::snapshot`] for the authoritative index).
    pub disk_bytes: u64,
    /// Store entries this session's [`ArtifactStore::gc`] passes
    /// evicted for this stage.
    pub gc_evictions: u64,
    /// Requests served by the remote tier ([`Explorer::with_remote`]) —
    /// the server had the artifact, no local recompute.
    pub remote_hits: u64,
    /// Remote probes that missed: the server had no entry, or the
    /// request degraded on a network failure (see
    /// [`CacheStats::remote`] for the wire-level split).
    pub remote_misses: u64,
    /// Artifacts written through to the remote tier.
    pub remote_writes: u64,
    /// Remote payloads that arrived intact (frame checksum) but failed
    /// typed decoding; the recompute's write-through replaces them.
    pub remote_corrupt: u64,
}

/// A snapshot of the session's per-stage cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compile-stage counters.
    pub compile: StageStats,
    /// Profile-stage counters.
    pub profile: StageStats,
    /// Schedule-stage counters.
    pub schedule: StageStats,
    /// Analyze-stage counters.
    pub analyze: StageStats,
    /// Design-stage counters.
    pub design: StageStats,
    /// Evaluate-stage counters.
    pub evaluate: StageStats,
    /// Suite-design-stage counters.
    pub design_suite: StageStats,
    /// Suite-evaluate-stage counters.
    pub evaluate_suite: StageStats,
    /// Design-space-stage counters.
    pub design_space: StageStats,
    /// Wire-level counters of the remote tier
    /// ([`Explorer::with_remote`]): requests, errors, retries,
    /// unhealthy-skips and bytes over the wire. All zero for a session
    /// without a remote tier.
    pub remote: RemoteTotals,
    /// Aggregated run-state pool counters of every live engine the
    /// session holds (baseline engines and rewritten-design engines):
    /// `checkouts` counts simulator runs served through the pools,
    /// `creates` counts actual bank allocations. A store-warm sweep
    /// should show `creates` frozen while `checkouts` grows — zero
    /// per-run bank allocations.
    pub run_state: RunStateStats,
}

impl CacheStats {
    /// Counters for one stage.
    pub fn stage(&self, stage: Stage) -> StageStats {
        match stage {
            Stage::Compile => self.compile,
            Stage::Profile => self.profile,
            Stage::Schedule => self.schedule,
            Stage::Analyze => self.analyze,
            Stage::Design => self.design,
            Stage::Evaluate => self.evaluate,
            Stage::DesignSuite => self.design_suite,
            Stage::EvaluateSuite => self.evaluate_suite,
            Stage::DesignSpace => self.design_space,
        }
    }

    /// Total cache hits across stages.
    pub fn total_hits(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).hits).sum()
    }

    /// Total stage executions across stages.
    pub fn total_misses(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).misses).sum()
    }

    /// Total LRU evictions across stages.
    pub fn total_evictions(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).evictions).sum()
    }

    /// Total entries currently resident across stage caches.
    pub fn total_entries(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).entries).sum()
    }

    /// Total disk-tier hits across stages (artifacts decoded from the
    /// store instead of recomputed).
    pub fn total_disk_hits(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).disk_hits).sum()
    }

    /// Total disk-tier misses across stages.
    pub fn total_disk_misses(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).disk_misses)
            .sum()
    }

    /// Total artifacts written through to the store across stages.
    pub fn total_disk_writes(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).disk_writes)
            .sum()
    }

    /// Total corrupted/version-skewed store entries rejected across
    /// stages.
    pub fn total_disk_corrupt(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).disk_corrupt)
            .sum()
    }

    /// Total requests served from prefetch-staged bytes across stages.
    pub fn total_prefetch_hits(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).prefetch_hits)
            .sum()
    }

    /// Total store entries evicted by this session's GC passes.
    pub fn total_gc_evictions(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).gc_evictions)
            .sum()
    }

    /// Total on-disk bytes across every stage's store entries
    /// (session-local view).
    pub fn total_disk_bytes(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).disk_bytes).sum()
    }

    /// Total remote-tier hits across stages (artifacts served by the
    /// daemon instead of recomputed).
    pub fn total_remote_hits(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).remote_hits)
            .sum()
    }

    /// Total remote-tier misses across stages (server had no entry, or
    /// the request degraded on a network failure).
    pub fn total_remote_misses(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).remote_misses)
            .sum()
    }

    /// Total artifacts written through to the remote tier across
    /// stages.
    pub fn total_remote_writes(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).remote_writes)
            .sum()
    }

    /// Total remote payloads rejected by typed decoding across stages.
    pub fn total_remote_corrupt(&self) -> u64 {
        Stage::all()
            .iter()
            .map(|s| self.stage(*s).remote_corrupt)
            .sum()
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stage) in Stage::all().into_iter().enumerate() {
            let st = self.stage(stage);
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{stage}: {}h/{}m", st.hits, st.misses)?;
            if st.evictions > 0 {
                write!(f, "/{}ev", st.evictions)?;
            }
        }
        let (dh, dm, dw, dc) = (
            self.total_disk_hits(),
            self.total_disk_misses(),
            self.total_disk_writes(),
            self.total_disk_corrupt(),
        );
        if dh + dm + dw + dc > 0 {
            write!(f, "  disk: {dh}h/{dm}m/{dw}w")?;
            if dc > 0 {
                write!(f, "/{dc}corrupt")?;
            }
        }
        let (rh, rm, rw, rc) = (
            self.total_remote_hits(),
            self.total_remote_misses(),
            self.total_remote_writes(),
            self.total_remote_corrupt(),
        );
        if rh + rm + rw + rc > 0 || self.remote != RemoteTotals::default() {
            write!(f, "  remote: {rh}h/{rm}m/{rw}w")?;
            if rc > 0 {
                write!(f, "/{rc}corrupt")?;
            }
            let r = self.remote;
            if r.errors + r.retries + r.skipped > 0 {
                write!(f, " ({}err/{}retry/{}skip)", r.errors, r.retries, r.skipped)?;
            }
            if r.overloaded > 0 {
                write!(f, " ({}shed)", r.overloaded)?;
            }
        }
        let pf = self.total_prefetch_hits();
        if pf > 0 {
            write!(f, "  prefetch: {pf}h")?;
        }
        let gc = self.total_gc_evictions();
        if gc > 0 {
            write!(f, "  gc: {gc}ev")?;
        }
        if self.run_state != RunStateStats::default() {
            write!(
                f,
                "  run-state: {}co/{}alloc",
                self.run_state.checkouts, self.run_state.creates
            )?;
        }
        Ok(())
    }
}

// -- cache keys --------------------------------------------------------

/// Hashable identity of an [`OptConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OptKey {
    unroll: usize,
    merge_blocks: bool,
    width: usize,
    hoist_passes: usize,
    if_convert_max_ops: usize,
}

impl From<OptConfig> for OptKey {
    fn from(c: OptConfig) -> Self {
        OptKey {
            unroll: c.unroll,
            merge_blocks: c.merge_blocks,
            width: c.width,
            hoist_passes: c.hoist_passes,
            if_convert_max_ops: c.if_convert_max_ops,
        }
    }
}

/// Hashable identity of a [`DetectorConfig`] (the chainable-class
/// policy hashes by function address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DetKey {
    min_len: usize,
    max_len: usize,
    window: usize,
    prune_floor_bits: u64,
    chainable: usize,
}

impl From<DetectorConfig> for DetKey {
    fn from(c: DetectorConfig) -> Self {
        DetKey {
            min_len: c.min_len,
            max_len: c.max_len,
            window: c.window,
            prune_floor_bits: c.prune_floor.to_bits(),
            chainable: c.chainable as usize,
        }
    }
}

/// Hashable identity of [`DesignConstraints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConsKey {
    area_bits: u64,
    clock_bits: u64,
    max_extensions: usize,
    opt_level: OptLevel,
}

impl From<DesignConstraints> for ConsKey {
    fn from(c: DesignConstraints) -> Self {
        ConsKey {
            area_bits: c.area_budget.to_bits(),
            clock_bits: c.clock_ns.to_bits(),
            max_extensions: c.max_extensions,
            opt_level: c.opt_level,
        }
    }
}

/// Cache key of the suite-level stages: the *sorted, deduplicated*
/// member set plus every configuration that feeds the suite design.
type SuiteKey = (Vec<String>, u64, ConsKey, DetKey, OptKey);

/// Cache key of the design-space stage: the sorted member set plus the
/// *canonicalized* (sorted, deduplicated) constraint grid and every
/// configuration that feeds selection.
type SpaceKey = (Vec<String>, u64, Vec<ConsKey>, DetKey, OptKey);

/// Stable digest of an [`AsipDesign`]'s full identity — every field
/// that affects the rewrite (extension ids, signatures, areas,
/// benefits, total area), in order. Two designs with the same digest
/// rewrite a program identically, so the digest keys the session's
/// rewritten-engine cache.
fn design_digest(design: &AsipDesign) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(design.extensions.len());
    for ext in &design.extensions {
        h.write_u64(ext.id as u64);
        h.write_str(&ext.signature.to_string());
        h.write_f64(ext.area);
        h.write_f64(ext.expected_benefit);
    }
    h.write_f64(design.extension_area);
    h.finish()
}

// -- the session -------------------------------------------------------

/// The typed front caches: one single-flighted, counter-carrying
/// [`StageCache`] per pipeline stage (see [`crate::tier`]). The
/// byte-level tiers below them live in the session's [`TierStack`].
#[derive(Debug, Default)]
struct Caches {
    compile: StageCache<String, Program>,
    profile: StageCache<(String, u64), Profile>,
    schedule: StageCache<(String, u64, OptLevel, OptKey), ScheduleGraph>,
    analyze: StageCache<(String, u64, OptLevel, OptKey, DetKey), SequenceReport>,
    design: StageCache<(String, u64, ConsKey, DetKey, OptKey), AsipDesign>,
    evaluate: StageCache<(String, u64, ConsKey, DetKey, OptKey), Evaluation>,
    design_suite: StageCache<SuiteKey, AsipDesign>,
    evaluate_suite: StageCache<SuiteKey, Vec<(String, Evaluation)>>,
    design_space: StageCache<SpaceKey, DesignSpace>,
}

impl Caches {
    /// Run `f` over every stage cache's counter-facing surface, in
    /// stage order. The typed caches have nine distinct types, so
    /// uniform access goes through this visitor instead of an array.
    fn for_each(&self, mut f: impl FnMut(Stage, &dyn StageCacheOps)) {
        f(Stage::Compile, &self.compile);
        f(Stage::Profile, &self.profile);
        f(Stage::Schedule, &self.schedule);
        f(Stage::Analyze, &self.analyze);
        f(Stage::Design, &self.design);
        f(Stage::Evaluate, &self.evaluate);
        f(Stage::DesignSuite, &self.design_suite);
        f(Stage::EvaluateSuite, &self.evaluate_suite);
        f(Stage::DesignSpace, &self.design_space);
    }
}

/// The type-erased slice of [`StageCache`] the session needs for
/// uniform bookkeeping (capacity, reset, counter snapshots).
trait StageCacheOps {
    fn set_capacity(&self, capacity: Option<usize>) -> u64;
    fn reset(&self);
    fn front_stats(&self) -> FrontStats;
}

/// A snapshot of one typed cache's counters and occupancy.
#[derive(Debug, Clone, Copy, Default)]
struct FrontStats {
    hits: u64,
    misses: u64,
    evictions: u64,
    prefetch_hits: u64,
    entries: u64,
}

impl<K: Eq + Hash + Clone, V> StageCacheOps for StageCache<K, V> {
    fn set_capacity(&self, capacity: Option<usize>) -> u64 {
        StageCache::set_capacity(self, capacity)
    }
    fn reset(&self) {
        StageCache::reset(self)
    }
    fn front_stats(&self) -> FrontStats {
        FrontStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// A staged, cached, parallel design-space exploration session over the
/// benchmark registry. See the [module docs](self) for the state model
/// and a usage example.
#[derive(Debug)]
pub struct Explorer {
    registry: Registry,
    levels: Vec<OptLevel>,
    detector: DetectorConfig,
    opt_config: OptConfig,
    constraints: DesignConstraints,
    seed: u64,
    threads: usize,
    cache_capacity: Option<usize>,
    store: Option<Arc<ArtifactStore>>,
    remote: Option<Arc<RemoteTier>>,
    extra_tiers: Vec<Arc<dyn ArtifactTier>>,
    staging: Option<Arc<MemoryTier>>,
    tiers: TierStack,
    caches: Caches,
    /// Decoded simulator engines, keyed by benchmark name. Not a stage
    /// cache: engines are derived (never persisted) artifacts that the
    /// profile and evaluate stages share so one session decodes each
    /// program exactly once.
    engines: Mutex<LruCache<String, Arc<Engine>>>,
    /// Rewritten-design engines, keyed by `(benchmark, design digest)`.
    /// Design sweeps re-measure the same `(program, design)` pair
    /// across datasets and constraint grids; caching the
    /// [`PreparedDesign`] here means each pair is rewritten and decoded
    /// exactly once per session instead of once per evaluation.
    rewritten: Mutex<LruCache<(String, u64), Arc<PreparedDesign>>>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            registry: asip_benchmarks::registry(),
            levels: OptLevel::all().to_vec(),
            detector: DetectorConfig::default(),
            opt_config: OptConfig::default(),
            constraints: DesignConstraints::default(),
            seed: DEFAULT_SEED,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: None,
            store: None,
            remote: None,
            extra_tiers: Vec::new(),
            staging: None,
            tiers: TierStack::new(),
            caches: Caches::default(),
            engines: Mutex::new(LruCache::default()),
            rewritten: Mutex::new(LruCache::default()),
        }
    }
}

impl Explorer {
    /// A session over the Table-1 registry with default configuration:
    /// all three optimization levels, default detector and constraints,
    /// the paper seed, unbounded caches, and one worker per available
    /// core.
    pub fn new() -> Self {
        Explorer::default()
    }

    // -- builder (permanent state) -------------------------------------

    /// Replace the benchmark registry. Drops any cached artifacts, since
    /// a name may now resolve to a different program.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self.reset();
        self
    }

    /// Add one benchmark (e.g. a user kernel) to the session registry.
    /// A benchmark with the same name replaces the existing entry, and
    /// any cached artifacts are dropped so the name cannot serve stale
    /// results.
    pub fn with_benchmark(mut self, bench: Benchmark) -> Self {
        self.registry.push(bench);
        self.reset();
        self
    }

    /// Restrict which optimization levels [`Explorer::explore`] visits.
    pub fn with_levels(mut self, levels: impl IntoIterator<Item = OptLevel>) -> Self {
        self.levels = levels.into_iter().collect();
        self
    }

    /// Set the default sequence-detector configuration.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Set the default optimizer configuration. Cached artifacts stay
    /// valid — every stage key downstream of the optimizer includes the
    /// config, so old and new schedules (and the designs selected from
    /// them) coexist in the cache without cross-talk.
    pub fn with_opt_config(mut self, config: OptConfig) -> Self {
        self.opt_config = config;
        self
    }

    /// Set the default hardware constraints for the design stage.
    pub fn with_constraints(mut self, constraints: DesignConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Set the input-data seed (default: the paper seed, 1995).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the worker-thread count for [`Explorer::explore_all`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bound every stage cache to at most `capacity` entries (least
    /// recently used entries are evicted first; a capacity of 0 is
    /// treated as 1). The default is unbounded, which is fine for the
    /// twelve-benchmark registry but not for a session serving an open
    /// stream of sweeps — evictions are counted per stage in
    /// [`CacheStats`].
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        let cap = Some(capacity.max(1));
        self.cache_capacity = cap;
        self.caches.for_each(|_, cache| {
            cache.set_capacity(cap);
        });
        lock(&self.engines).set_capacity(cap);
        lock(&self.rewritten).set_capacity(cap);
        self
    }

    /// Attach a persistent [`ArtifactStore`] rooted at `dir` as a
    /// read-through/write-through tier under the in-memory caches, so
    /// stage artifacts survive the process and separate binaries share
    /// work (see the [`store`](crate::store) module docs for the disk
    /// layout).
    ///
    /// Lookup order per stage request: typed memory cache → staging
    /// byte tier → disk store → compute (then write through to every
    /// persistent tier) — one [`TierStack`] walk, see [`crate::tier`].
    /// Store keys hash the benchmark *source bytes*, the data spec, the
    /// seed and every configuration the stage depends on, so a store
    /// directory can be shared by sessions with different
    /// configurations — they simply address different entries. Missing,
    /// corrupted or version-skewed entries silently fall back to
    /// recompute; the per-stage disk counters in [`CacheStats`] make
    /// hits, misses and corruption observable.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(Arc::new(ArtifactStore::open(dir)));
        self.rebuild_tiers();
        self
    }

    /// As [`Explorer::with_store`], plus one budgeted
    /// [`ArtifactStore::gc`] pass at attach time, so long-lived hosts
    /// (bench machines, services) keep the shared store inside a
    /// standing budget without a manual `store gc` invocation. The
    /// evictions are counted in [`StageStats::gc_evictions`] like any
    /// other GC pass; an empty or fresh store makes the pass a cheap
    /// no-op.
    pub fn with_store_gc(self, dir: impl Into<PathBuf>, config: StoreGcConfig) -> Self {
        let session = self.with_store(dir);
        if let Some(store) = &session.store {
            store.gc(&config);
        }
        session
    }

    /// Attach a [`RemoteTier`] speaking to a running `serve` daemon at
    /// `addr` (`host:port` or `unix:/path` — see [`Endpoint::parse`]),
    /// inserted *between* the staging tier and the disk store: a warm
    /// server answers before any local disk read, and a storeless
    /// client (`staging → remote`) runs entirely off the fleet-shared
    /// stack. Computed artifacts are written through, so every client
    /// populates the server for the others.
    ///
    /// Server failures are never session errors: each one degrades to
    /// a counted miss under `policy`'s retry/timeout/backoff bounds,
    /// and an unhealthy server is skipped (one probe per second) until
    /// it answers again. The per-stage `remote_*` counters and the
    /// wire-level [`CacheStats::remote`] totals make every degradation
    /// observable.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::InvalidEndpoint`] when `addr` does not parse —
    /// a malformed address is a configuration bug worth failing
    /// loudly, unlike runtime server failures.
    pub fn with_remote(mut self, addr: &str, policy: RetryPolicy) -> Result<Self, ExplorerError> {
        let endpoint = Endpoint::parse(addr).map_err(|detail| ExplorerError::InvalidEndpoint {
            addr: addr.into(),
            detail,
        })?;
        self.remote = Some(Arc::new(RemoteTier::new(endpoint, policy)));
        self.rebuild_tiers();
        Ok(self)
    }

    /// Plug an additional [`ArtifactTier`] into the bottom of the tier
    /// stack (probed after the staging tier, the remote tier and the
    /// disk store, written through like any persistent tier). This is
    /// the extension point for custom shared caches — anything beyond
    /// the built-in disk store and [`Explorer::with_remote`] daemon —
    /// which need nothing beyond the trait's five methods.
    pub fn with_tier(mut self, tier: Arc<dyn ArtifactTier>) -> Self {
        self.extra_tiers.push(tier);
        self.rebuild_tiers();
        self
    }

    /// Reassemble the tier stack from its parts: a fresh staging byte
    /// tier on top (prefetch target), then the remote tier, then the
    /// disk store, then any custom tiers in registration order.
    fn rebuild_tiers(&mut self) {
        let mut stack = TierStack::new();
        if self.store.is_some() || self.remote.is_some() || !self.extra_tiers.is_empty() {
            let staging = Arc::new(MemoryTier::new());
            self.staging = Some(Arc::clone(&staging));
            stack.push(staging);
            if let Some(remote) = &self.remote {
                stack.push(Arc::clone(remote) as Arc<dyn ArtifactTier>);
            }
            if let Some(store) = &self.store {
                stack.push(Arc::clone(store) as Arc<dyn ArtifactTier>);
            }
            for tier in &self.extra_tiers {
                stack.push(Arc::clone(tier));
            }
        } else {
            self.staging = None;
        }
        self.tiers = stack;
    }

    // -- accessors -----------------------------------------------------

    /// The session's benchmark registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The levels [`Explorer::explore`] visits.
    pub fn levels(&self) -> &[OptLevel] {
        &self.levels
    }

    /// The session detector configuration.
    pub fn detector(&self) -> DetectorConfig {
        self.detector
    }

    /// The session optimizer configuration.
    pub fn opt_config(&self) -> OptConfig {
        self.opt_config
    }

    /// The session design constraints.
    pub fn constraints(&self) -> DesignConstraints {
        self.constraints
    }

    /// The session input-data seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-stage cache entry bound, if one was set.
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    /// The attached artifact store, if [`Explorer::with_store`] was
    /// called.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    /// The attached remote tier, if [`Explorer::with_remote`] was
    /// called — for wire-level totals ([`RemoteTier::remote_totals`]),
    /// health probes ([`RemoteTier::ping`]) and server statistics
    /// ([`RemoteTier::server_stats`]).
    pub fn remote(&self) -> Option<&RemoteTier> {
        self.remote.as_deref()
    }

    /// The session's tier stack (empty for a storeless session). Useful
    /// for inspecting per-tier [`TierStats`] beyond the per-stage
    /// aggregation in [`CacheStats`].
    pub fn tier_stack(&self) -> &TierStack {
        &self.tiers
    }

    /// `(tier name, summed stats)` for every tier in the stack, top to
    /// bottom — the per-tier byte totals next to the hit/miss counters.
    pub fn tier_totals(&self) -> Vec<(&'static str, TierStats)> {
        self.tiers
            .tiers()
            .iter()
            .map(|t| (t.name(), t.totals()))
            .collect()
    }

    // -- ephemeral-state management ------------------------------------

    /// Drop every cached in-memory artifact (the staging byte tier
    /// included) and zero the counters (disk-tier counters included).
    /// Configuration (registry, levels, stage parameters, cache bounds)
    /// is permanent and survives — as do the *entries* of an attached
    /// store: they are persistent state, shared with other processes,
    /// and stay valid because their keys hash artifact content identity
    /// rather than session history.
    pub fn reset(&self) {
        self.caches.for_each(|_, cache| cache.reset());
        lock(&self.engines).clear();
        lock(&self.rewritten).clear();
        if let Some(staging) = &self.staging {
            staging.clear();
        }
        self.tiers.reset_counters();
    }

    /// Snapshot the per-stage cache hit/miss/eviction counters and live
    /// entry counts, joined with the disk tier's counters and byte
    /// totals when a store is attached.
    pub fn cache_stats(&self) -> CacheStats {
        let mut fronts = [FrontStats::default(); 9];
        self.caches.for_each(|stage, cache| {
            fronts[stage as usize] = cache.front_stats();
        });
        let get = |s: Stage| {
            let front = fronts[s as usize];
            let (disk, gc_evictions) = self
                .store
                .as_ref()
                .map(|store| (store.as_ref().stats(s), store.gc_evictions(s)))
                .unwrap_or_default();
            let remote = self
                .remote
                .as_ref()
                .map(|tier| ArtifactTier::stats(tier.as_ref(), s))
                .unwrap_or_default();
            StageStats {
                hits: front.hits,
                misses: front.misses,
                evictions: front.evictions,
                entries: front.entries,
                prefetch_hits: front.prefetch_hits,
                disk_hits: disk.hits,
                disk_misses: disk.misses,
                disk_writes: disk.writes,
                disk_corrupt: disk.corrupt,
                disk_bytes: disk.bytes,
                gc_evictions,
                remote_hits: remote.hits,
                remote_misses: remote.misses,
                remote_writes: remote.writes,
                remote_corrupt: remote.corrupt,
            }
        };
        CacheStats {
            compile: get(Stage::Compile),
            profile: get(Stage::Profile),
            schedule: get(Stage::Schedule),
            analyze: get(Stage::Analyze),
            design: get(Stage::Design),
            evaluate: get(Stage::Evaluate),
            design_suite: get(Stage::DesignSuite),
            evaluate_suite: get(Stage::EvaluateSuite),
            design_space: get(Stage::DesignSpace),
            remote: self
                .remote
                .as_ref()
                .map(|tier| tier.remote_totals())
                .unwrap_or_default(),
            run_state: self.run_state_stats(),
        }
    }

    /// Aggregated run-state pool counters across every live engine the
    /// session holds — the baseline engines plus the rewritten-design
    /// engines. The counters live on the engines themselves, so
    /// [`Explorer::reset`] (which drops the engines) zeroes them along
    /// with everything else ephemeral.
    fn run_state_stats(&self) -> RunStateStats {
        let mut stats = RunStateStats::default();
        for engine in lock(&self.engines).values() {
            stats.absorb(engine.run_state_stats());
        }
        for prepared in lock(&self.rewritten).values() {
            stats.absorb(prepared.engine().run_state_stats());
        }
        stats
    }

    // -- stage methods -------------------------------------------------

    /// Resolve a benchmark by name.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::UnknownBenchmark`] if `name` is not registered.
    pub fn benchmark(&self, name: &str) -> Result<Benchmark, ExplorerError> {
        self.registry
            .find(name)
            .copied()
            .ok_or_else(|| ExplorerError::UnknownBenchmark { name: name.into() })
    }

    /// Compile stage: mini-C source → validated 3-address code.
    ///
    /// # Errors
    ///
    /// Unknown benchmarks and front-end failures.
    pub fn compile(&self, name: &str) -> Result<Compiled, ExplorerError> {
        let benchmark = self.benchmark(name)?;
        let disk = || self.key_compile(&benchmark);
        let program = self.cached(
            Stage::Compile,
            &self.caches.compile,
            name.to_string(),
            disk,
            || Ok(benchmark.compile()?),
        )?;
        Ok(Compiled { benchmark, program })
    }

    /// The session's decoded simulator [`Engine`] for a benchmark:
    /// the compiled program lowered once into the pre-decoded execution
    /// form (see [`asip_sim::decode`]) and cached, so every simulation
    /// the session performs for this program — the profile stage, the
    /// evaluate stage's baseline re-run, suite sweeps — shares one
    /// decode. The cache is dropped by [`Explorer::reset`] and bounded
    /// by [`Explorer::with_cache_capacity`] like the stage caches.
    ///
    /// # Errors
    ///
    /// Compile-stage errors.
    pub fn engine(&self, name: &str) -> Result<Arc<Engine>, ExplorerError> {
        if let Some(engine) = lock(&self.engines).get(&name.to_string()) {
            return Ok(Arc::clone(engine));
        }
        let compiled = self.compile(name)?;
        let engine = Arc::new(Engine::new(Arc::clone(&compiled.program)));
        // a concurrent decode of the same program is benign (decode is
        // cheap and pure); last writer wins
        lock(&self.engines).insert(name.to_string(), Arc::clone(&engine));
        Ok(engine)
    }

    /// The session's rewritten-and-decoded engine for a `(benchmark,
    /// design)` pair (see [`asip_synth::prepare`]), cached by a stable
    /// digest of the design so sweeps that re-measure the same design
    /// across datasets and constraint grids rewrite and decode it once.
    /// Like the baseline engine cache, this is derived state: dropped
    /// by [`Explorer::reset`], bounded by
    /// [`Explorer::with_cache_capacity`].
    ///
    /// # Errors
    ///
    /// Compile-stage errors.
    pub fn prepared(
        &self,
        name: &str,
        design: &AsipDesign,
    ) -> Result<Arc<PreparedDesign>, ExplorerError> {
        let key = (name.to_string(), design_digest(design));
        if let Some(prepared) = lock(&self.rewritten).get(&key) {
            return Ok(Arc::clone(prepared));
        }
        let compiled = self.compile(name)?;
        let prepared = Arc::new(asip_synth::prepare(&compiled.program, design));
        // as with the baseline engines: a concurrent prepare of the
        // same pair is benign (pure, milliseconds); last writer wins
        lock(&self.rewritten).insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Profile stage: run the benchmark on its seeded Table-1 input
    /// data and collect per-instruction dynamic counts.
    ///
    /// # Errors
    ///
    /// Compile-stage errors plus simulator failures.
    pub fn profile(&self, name: &str) -> Result<Profiled, ExplorerError> {
        let compiled = self.compile(name)?;
        let seed = self.seed;
        let disk = || self.key_profile(&compiled.benchmark);
        let profile = self.cached(
            Stage::Profile,
            &self.caches.profile,
            (name.to_string(), seed),
            disk,
            || {
                let data = compiled.benchmark.dataset_with_seed(seed);
                // profile-only pooled run: no Vec<Value> output banks
                // are ever materialized on this path
                Ok(self.engine(name)?.run_profile(&data)?.profile)
            },
        )?;
        Ok(Profiled {
            benchmark: compiled.benchmark,
            seed,
            profile,
        })
    }

    /// Schedule stage at `level` with the session optimizer config.
    ///
    /// # Errors
    ///
    /// Propagates compile/profile-stage errors.
    pub fn schedule(&self, name: &str, level: OptLevel) -> Result<Scheduled, ExplorerError> {
        self.schedule_with(name, level, self.opt_config)
    }

    /// Schedule stage with an explicit optimizer config (sweeps share
    /// the cached compile and profile artifacts across configs).
    ///
    /// # Errors
    ///
    /// Propagates compile/profile-stage errors.
    pub fn schedule_with(
        &self,
        name: &str,
        level: OptLevel,
        config: OptConfig,
    ) -> Result<Scheduled, ExplorerError> {
        let profiled = self.profile(name)?;
        let compiled = self.compile(name)?;
        let key = (name.to_string(), self.seed, level, OptKey::from(config));
        let disk = || self.key_schedule(&compiled.benchmark, level, config);
        let graph = self.cached(Stage::Schedule, &self.caches.schedule, key, disk, || {
            Ok(Optimizer::new(level)
                .with_config(config)
                .run(&compiled.program, &profiled.profile))
        })?;
        Ok(Scheduled {
            benchmark: compiled.benchmark,
            level,
            graph,
        })
    }

    /// Analyze stage at `level` with the session detector config.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn analyze(&self, name: &str, level: OptLevel) -> Result<Analyzed, ExplorerError> {
        self.analyze_with(name, level, self.opt_config, self.detector)
    }

    /// Analyze stage with explicit optimizer and detector configs.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn analyze_with(
        &self,
        name: &str,
        level: OptLevel,
        opt: OptConfig,
        detector: DetectorConfig,
    ) -> Result<Analyzed, ExplorerError> {
        let scheduled = self.schedule_with(name, level, opt)?;
        let key = (
            name.to_string(),
            self.seed,
            level,
            OptKey::from(opt),
            DetKey::from(detector),
        );
        let disk = || self.key_analyze(&scheduled.benchmark, level, opt, detector);
        let report = self.cached(Stage::Analyze, &self.caches.analyze, key, disk, || {
            Ok(SequenceDetector::new(detector).analyze(&scheduled.graph))
        })?;
        Ok(Analyzed {
            benchmark: scheduled.benchmark,
            level,
            report,
        })
    }

    /// Design stage: select ISA extensions under the session constraints
    /// from the *cached* schedule at the constraints' feedback level —
    /// the same graph [`Explorer::analyze`] reports, session
    /// [`OptConfig`] included. After an `analyze` at that level, this
    /// performs zero optimizer runs.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn design(&self, name: &str) -> Result<Designed, ExplorerError> {
        self.design_with(name, self.constraints, self.detector)
    }

    /// Design stage with explicit constraints and detector config. The
    /// schedule feeding selection still honors the session
    /// [`OptConfig`], and the cache key includes it, so sessions (or
    /// sweeps) differing only in optimizer knobs never share design
    /// entries.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn design_with(
        &self,
        name: &str,
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<Designed, ExplorerError> {
        let scheduled = self.schedule_with(name, constraints.opt_level, self.opt_config)?;
        let compiled = self.compile(name)?;
        let key = (
            name.to_string(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
            OptKey::from(self.opt_config),
        );
        let disk = || self.key_design(Stage::Design, &compiled.benchmark, constraints, detector);
        let design = self.cached(Stage::Design, &self.caches.design, key, disk, || {
            Ok(AsipDesigner::new(constraints)
                .with_detector(detector)
                .design_from_schedule(&scheduled.graph, &compiled.program))
        })?;
        Ok(Designed {
            benchmark: compiled.benchmark,
            design,
        })
    }

    /// Evaluate stage: rewrite the program with the selected design and
    /// measure the cycle-count effect on the profiling simulator.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; simulator failures during the
    /// measurement rerun surface as [`ExplorerError::Eval`].
    pub fn evaluate(&self, name: &str) -> Result<Evaluated, ExplorerError> {
        self.evaluate_with(name, self.constraints, self.detector)
    }

    /// Evaluate stage with explicit constraints and detector config
    /// (budget/clock sweeps share every earlier stage).
    ///
    /// # Errors
    ///
    /// As [`Explorer::evaluate`].
    pub fn evaluate_with(
        &self,
        name: &str,
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<Evaluated, ExplorerError> {
        let designed = self.design_with(name, constraints, detector)?;
        let compiled = self.compile(name)?;
        let key = (
            name.to_string(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
            OptKey::from(self.opt_config),
        );
        let disk = || self.key_design(Stage::Evaluate, &compiled.benchmark, constraints, detector);
        let evaluation = self.cached(Stage::Evaluate, &self.caches.evaluate, key, disk, || {
            let data = compiled.benchmark.dataset_with_seed(self.seed);
            let prepared = self.prepared(name, &designed.design)?;
            asip_synth::evaluate_prepared(&*self.engine(name)?, &prepared, &data)
                .map_err(ExplorerError::Eval)
        })?;
        Ok(Evaluated {
            benchmark: compiled.benchmark,
            design: designed.design,
            evaluation,
        })
    }

    // -- suite stages --------------------------------------------------

    /// Suite-design stage over the whole registry: one shared extension
    /// set tuned to every registered benchmark (the paper's "an ASIP …
    /// tuned to a suite of applications"), under the session
    /// constraints and detector.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::EmptySuite`] for an empty registry, plus
    /// earlier-stage errors for any member.
    pub fn design_suite(&self) -> Result<DesignedSuite, ExplorerError> {
        let names: Vec<&str> = self.registry.iter().map(|b| b.name).collect();
        self.design_suite_with(&names, self.constraints, self.detector)
    }

    /// Suite-design stage for an explicit member set with explicit
    /// constraints and detector config. The members are deduplicated
    /// and sorted, so any ordering of the same set is the same cache
    /// key; the key also carries the seed and every configuration that
    /// feeds selection. Member schedules are computed in parallel on
    /// the session thread pool (each a cache hit if already present).
    ///
    /// # Errors
    ///
    /// [`ExplorerError::EmptySuite`] when `names` is empty,
    /// [`ExplorerError::UnknownBenchmark`] for an unregistered member,
    /// plus earlier-stage errors.
    pub fn design_suite_with(
        &self,
        names: &[&str],
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<DesignedSuite, ExplorerError> {
        let members = self.suite_members(names)?;
        let key = self.suite_key(&members, constraints, detector);
        let opt = self.opt_config;
        let disk = || {
            self.disk_key(Stage::DesignSuite, |h| {
                self.hash_suite(h, &members, constraints, detector)
            })
        };
        let design = self.cached(
            Stage::DesignSuite,
            &self.caches.design_suite,
            key,
            disk,
            || {
                // a warm-but-not-memoized suite reads its members'
                // compile/profile/schedule artifacts from disk: stage
                // them in parallel first (no-op without a store)
                self.prefetch_keys(self.member_stage_keys(&members, constraints.opt_level, opt));
                let staged = self.map_slice(&members, |name| {
                    let scheduled = self.schedule_with(name, constraints.opt_level, opt)?;
                    let compiled = self.compile(name)?;
                    Ok((scheduled, compiled))
                })?;
                let suite: Vec<(&ScheduleGraph, &Program)> = staged
                    .iter()
                    .map(|(s, c)| (s.graph.as_ref(), c.program.as_ref()))
                    .collect();
                Ok(AsipDesigner::new(constraints)
                    .with_detector(detector)
                    .design_from_schedules(&suite))
            },
        )?;
        Ok(DesignedSuite {
            benchmarks: members,
            design,
        })
    }

    /// Suite-evaluate stage over the whole registry: design one shared
    /// extension set ([`Explorer::design_suite`]) and measure it on
    /// every member.
    ///
    /// # Errors
    ///
    /// As [`Explorer::evaluate_suite_with`].
    pub fn evaluate_suite(&self) -> Result<EvaluatedSuite, ExplorerError> {
        let names: Vec<&str> = self.registry.iter().map(|b| b.name).collect();
        self.evaluate_suite_with(&names, self.constraints, self.detector)
    }

    /// Suite-evaluate stage for an explicit member set: the shared
    /// design is applied to each member program and measured on the
    /// profiling simulator, in parallel over the session thread pool.
    /// Results are keyed and ordered by the sorted member set.
    ///
    /// # Errors
    ///
    /// Everything [`Explorer::design_suite_with`] raises; measurement
    /// failures surface as [`ExplorerError::Eval`].
    pub fn evaluate_suite_with(
        &self,
        names: &[&str],
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<EvaluatedSuite, ExplorerError> {
        let designed = self.design_suite_with(names, constraints, detector)?;
        let key = self.suite_key(&designed.benchmarks, constraints, detector);
        let design = Arc::clone(&designed.design);
        let disk = || {
            self.disk_key(Stage::EvaluateSuite, |h| {
                self.hash_suite(h, &designed.benchmarks, constraints, detector)
            })
        };
        let evaluations = self.cached(
            Stage::EvaluateSuite,
            &self.caches.evaluate_suite,
            key,
            disk,
            || {
                // each member measurement starts from its compiled
                // program: stage the not-yet-memoized reads in parallel
                let keys = designed
                    .benchmarks
                    .iter()
                    .filter(|name| !self.caches.compile.contains_key(*name))
                    .filter_map(|name| {
                        let bench = self.registry.find(name)?;
                        self.key_compile(bench).map(|k| (Stage::Compile, k))
                    })
                    .collect();
                self.prefetch_keys(keys);
                self.map_slice(&designed.benchmarks, |name| {
                    let compiled = self.compile(name)?;
                    let data = compiled.benchmark.dataset_with_seed(self.seed);
                    let prepared = self.prepared(name, &design)?;
                    let evaluation =
                        asip_synth::evaluate_prepared(&*self.engine(name)?, &prepared, &data)
                            .map_err(ExplorerError::Eval)?;
                    Ok((name.clone(), evaluation))
                })
            },
        )?;
        Ok(EvaluatedSuite {
            benchmarks: designed.benchmarks,
            design: designed.design,
            evaluations,
        })
    }

    /// Design-space stage over the whole registry: explore every config
    /// of `configs` against the full suite in one incremental frontier
    /// search (see [`AsipDesigner::explore_design_space`]), under the
    /// session detector.
    ///
    /// # Errors
    ///
    /// As [`Explorer::design_space_with`].
    pub fn design_space(
        &self,
        configs: &[DesignConstraints],
    ) -> Result<DesignSpaced, ExplorerError> {
        let names: Vec<&str> = self.registry.iter().map(|b| b.name).collect();
        self.design_space_with(&names, configs, self.detector)
    }

    /// Design-space stage for an explicit member set and constraint
    /// grid. The whole grid is one cached artifact: the configs are
    /// canonicalized (sorted, deduplicated) so any ordering of the same
    /// grid is the same cache key, and the search shares coverage
    /// reports, unit-cost evaluations and static-match tests across
    /// configs through one memo table. Member schedules are computed
    /// once per *distinct feedback level in the grid* (each a cache hit
    /// if already present), in parallel on the session pool — a
    /// 256-config sweep performs no optimizer run beyond those, and a
    /// warm store serves the whole artifact with zero recomputes.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::EmptySuite`] when `names` or `configs` is
    /// empty, [`ExplorerError::UnknownBenchmark`] for an unregistered
    /// member, plus earlier-stage errors.
    pub fn design_space_with(
        &self,
        names: &[&str],
        configs: &[DesignConstraints],
        detector: DetectorConfig,
    ) -> Result<DesignSpaced, ExplorerError> {
        let members = self.suite_members(names)?;
        if configs.is_empty() {
            return Err(ExplorerError::EmptySuite);
        }
        let configs = asip_synth::frontier::canonicalize_configs(configs);
        let key = (
            members.clone(),
            self.seed,
            configs
                .iter()
                .map(|&c| ConsKey::from(c))
                .collect::<Vec<_>>(),
            DetKey::from(detector),
            OptKey::from(self.opt_config),
        );
        let opt = self.opt_config;
        let disk = || {
            self.disk_key(Stage::DesignSpace, |h| {
                self.hash_design_space(h, &members, &configs, detector)
            })
        };
        let space = self.cached(
            Stage::DesignSpace,
            &self.caches.design_space,
            key,
            disk,
            || {
                // the grid needs one schedule per (member, distinct
                // feedback level); stage the persisted ones in parallel
                let mut levels: Vec<OptLevel> = configs.iter().map(|c| c.opt_level).collect();
                levels.sort_by_key(|l| l.number());
                levels.dedup();
                let mut keys = Vec::new();
                for &level in &levels {
                    keys.extend(self.member_stage_keys(&members, level, opt));
                }
                self.prefetch_keys(keys);
                let work: Vec<(OptLevel, String)> = levels
                    .iter()
                    .flat_map(|&level| members.iter().map(move |m| (level, m.clone())))
                    .collect();
                let staged = self.map_slice(&work, |(level, name)| {
                    let scheduled = self.schedule_with(name, *level, opt)?;
                    let compiled = self.compile(name)?;
                    Ok((*level, scheduled, compiled))
                })?;
                let feedback: Vec<LevelFeedback<'_>> = levels
                    .iter()
                    .map(|&level| LevelFeedback {
                        level,
                        suite: staged
                            .iter()
                            .filter(|(l, _, _)| *l == level)
                            .map(|(_, s, c)| (s.graph.as_ref(), c.program.as_ref()))
                            .collect(),
                    })
                    .collect();
                // the designer's own constraints are not consulted by
                // explore_design_space; any config seeds it
                Ok(AsipDesigner::new(configs[0])
                    .with_detector(detector)
                    .explore_design_space(&feedback, &configs))
            },
        )?;
        Ok(DesignSpaced {
            benchmarks: members,
            space,
        })
    }

    /// The disk-tier key recipe of the design-space stage: member
    /// content identities, the seed, the canonicalized constraint grid,
    /// and every configuration that feeds selection.
    fn hash_design_space(
        &self,
        h: &mut StableHasher,
        members: &[String],
        configs: &[DesignConstraints],
        detector: DetectorConfig,
    ) {
        h.write_usize(members.len());
        for name in members {
            let bench = self
                .registry
                .find(name)
                .expect("suite members are validated against the registry");
            hash_benchmark(h, bench);
        }
        h.write_u64(self.seed);
        h.write_usize(configs.len());
        for &c in configs {
            hash_constraints(h, c);
        }
        hash_detector(h, detector);
        hash_opt_config(h, self.opt_config);
    }

    /// The one place a [`SuiteKey`] is built, so the design- and
    /// evaluate-suite caches can never drift apart on which
    /// configuration components distinguish entries.
    fn suite_key(
        &self,
        members: &[String],
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> SuiteKey {
        (
            members.to_vec(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
            OptKey::from(self.opt_config),
        )
    }

    /// The disk-tier analogue of [`Explorer::suite_key`]: feed the
    /// content identity of every (already validated, sorted) member plus
    /// the seed and every configuration that feeds suite selection.
    fn hash_suite(
        &self,
        h: &mut StableHasher,
        members: &[String],
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) {
        h.write_usize(members.len());
        for name in members {
            let bench = self
                .registry
                .find(name)
                .expect("suite members are validated against the registry");
            hash_benchmark(h, bench);
        }
        h.write_u64(self.seed);
        hash_constraints(h, constraints);
        hash_detector(h, detector);
        hash_opt_config(h, self.opt_config);
    }

    /// Validate and canonicalize a suite member set: every name must
    /// resolve, duplicates collapse, and the result is sorted so member
    /// order never changes the cache key (or the combine order).
    fn suite_members(&self, names: &[&str]) -> Result<Vec<String>, ExplorerError> {
        if names.is_empty() {
            return Err(ExplorerError::EmptySuite);
        }
        let mut members = BTreeSet::new();
        for name in names {
            self.benchmark(name)?;
            members.insert((*name).to_string());
        }
        Ok(members.into_iter().collect())
    }

    /// Run the complete pipeline for one benchmark: every configured
    /// level's schedule and analysis, plus the design and its measured
    /// evaluation.
    ///
    /// # Errors
    ///
    /// Propagates the first stage error encountered.
    pub fn explore(&self, name: &str) -> Result<Exploration, ExplorerError> {
        let compiled = self.compile(name)?;
        let profiled = self.profile(name)?;
        let mut levels = Vec::with_capacity(self.levels.len());
        for &level in &self.levels {
            let scheduled = self.schedule(name, level)?;
            let analyzed = self.analyze(name, level)?;
            levels.push((scheduled, analyzed));
        }
        let designed = self.design(name)?;
        let evaluated = self.evaluate(name)?;
        Ok(Exploration {
            benchmark: compiled.benchmark,
            compiled,
            profiled,
            levels,
            designed,
            evaluated,
        })
    }

    /// Explore every benchmark in the registry, fanning the work out
    /// over the session's worker threads. Results come back in registry
    /// order regardless of scheduling.
    ///
    /// When a store is attached, the suite's persisted artifacts are
    /// [prefetched](Explorer::prefetch) in parallel on the same thread
    /// pool before the fan-out, so a warm run performs its disk reads
    /// concurrently instead of one file at a time per worker.
    ///
    /// # Errors
    ///
    /// The first stage error encountered (work in flight completes).
    pub fn explore_all(&self) -> Result<Vec<Exploration>, ExplorerError> {
        let names: Vec<&str> = self.registry.iter().map(|b| b.name).collect();
        self.prefetch(&names)?;
        self.map_all(|b| self.explore(b.name))
    }

    /// Run `f` for every registry benchmark on the session thread pool,
    /// preserving registry order. `f` typically composes stage methods,
    /// so all workers share the session caches.
    ///
    /// # Errors
    ///
    /// The first error any worker produced (in registry order).
    pub fn map_all<T, F>(&self, f: F) -> Result<Vec<T>, ExplorerError>
    where
        T: Send,
        F: Fn(&Benchmark) -> Result<T, ExplorerError> + Sync,
    {
        let benches: Vec<Benchmark> = self.registry.iter().copied().collect();
        self.map_slice(&benches, f)
    }

    /// The worker pool behind [`Explorer::map_all`]: a shared atomic
    /// work index over `items`, one result slot per item.
    fn map_slice<I, T, F>(&self, items: &[I], f: F) -> Result<Vec<T>, ExplorerError>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> Result<T, ExplorerError> + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T, ExplorerError>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    *lock(&slots[i]) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                lock(&slot)
                    .take()
                    .expect("every slot is filled before scope exit")
            })
            .collect()
    }

    // -- cache plumbing ------------------------------------------------

    /// Memoize one stage computation through the session's
    /// [`TierStack`]: typed memory cache → staging byte tier → disk →
    /// compute, single-flighted, with write-through of computed
    /// artifacts to every persistent tier. `disk_key` stays a *closure*
    /// so the source-bytes hash is only paid after a memory miss, not on
    /// the hot hit path. See [`TierStack::get_or_compute`] for the full
    /// semantics (this wrapper exists so stage methods read naturally).
    fn cached<K, V, F, D>(
        &self,
        stage: Stage,
        cache: &StageCache<K, V>,
        key: K,
        disk_key: D,
        compute: F,
    ) -> Result<Arc<V>, ExplorerError>
    where
        K: Eq + Hash + Clone,
        V: ArtifactCodec,
        F: FnOnce() -> Result<V, ExplorerError>,
        D: FnOnce() -> Option<u64>,
    {
        self.tiers
            .get_or_compute(stage, cache, key, disk_key, compute)
    }

    // -- tier-key derivation -------------------------------------------

    /// Derive the stable cross-tier key for one stage request, or `None`
    /// when the tier stack is empty (keys are only worth hashing if a
    /// tier will consume them). The closure feeds every input the
    /// artifact is a pure function of; the common prefix (format version
    /// + stage name) is folded in here so no two stages can collide.
    fn disk_key(&self, stage: Stage, feed: impl FnOnce(&mut StableHasher)) -> Option<u64> {
        if self.tiers.is_empty() {
            return None;
        }
        let mut h = StableHasher::new();
        h.write_u64(u64::from(crate::store::FORMAT_VERSION));
        // The crate version is part of every key: stage artifacts are
        // functions of the stage *algorithms*, not just their inputs, so
        // a new release must never be served a previous release's
        // artifacts. (Unreleased algorithm changes still require a
        // FORMAT_VERSION bump — see its docs.)
        h.write_str(env!("CARGO_PKG_VERSION"));
        h.write_str(stage.name());
        feed(&mut h);
        Some(h.finish())
    }

    // -- per-stage key recipes -----------------------------------------
    //
    // One function per stage, shared by the stage methods (lazily, after
    // a memory miss) and the suite prefetcher (eagerly, to know what to
    // stage) — so the two can never disagree on what identifies an
    // artifact.

    fn key_compile(&self, b: &Benchmark) -> Option<u64> {
        self.disk_key(Stage::Compile, |h| hash_benchmark(h, b))
    }

    fn key_profile(&self, b: &Benchmark) -> Option<u64> {
        self.disk_key(Stage::Profile, |h| {
            hash_benchmark(h, b);
            h.write_u64(self.seed);
        })
    }

    fn key_schedule(&self, b: &Benchmark, level: OptLevel, config: OptConfig) -> Option<u64> {
        self.disk_key(Stage::Schedule, |h| {
            hash_benchmark(h, b);
            h.write_u64(self.seed);
            hash_level(h, level);
            hash_opt_config(h, config);
        })
    }

    fn key_analyze(
        &self,
        b: &Benchmark,
        level: OptLevel,
        opt: OptConfig,
        detector: DetectorConfig,
    ) -> Option<u64> {
        self.disk_key(Stage::Analyze, |h| {
            hash_benchmark(h, b);
            h.write_u64(self.seed);
            hash_level(h, level);
            hash_opt_config(h, opt);
            hash_detector(h, detector);
        })
    }

    fn key_design(
        &self,
        stage: Stage,
        b: &Benchmark,
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Option<u64> {
        debug_assert!(matches!(stage, Stage::Design | Stage::Evaluate));
        self.disk_key(stage, |h| {
            hash_benchmark(h, b);
            h.write_u64(self.seed);
            hash_constraints(h, constraints);
            hash_detector(h, detector);
            hash_opt_config(h, self.opt_config);
        })
    }

    // -- parallel suite prefetch ---------------------------------------

    /// Stage the persisted artifacts of `names` into the in-memory byte
    /// tier, reading the persistent tiers in parallel on the session
    /// thread pool. For each benchmark this covers every stage the
    /// session's configuration would request (compile, profile, the
    /// configured levels' schedules and analyses, the design-feedback
    /// schedule, design and evaluate). Subsequent stage requests decode
    /// the staged bytes instead of performing their own serial disk
    /// reads, and count as `prefetch_hits` in [`CacheStats`].
    ///
    /// A no-op (returning 0, after validating the names) when the
    /// session cannot stage — no store attached, or no staging tier
    /// above a persistent one. Returns the number of artifacts staged;
    /// entries already staged, absent from every persistent tier, or
    /// already resident in the typed caches (a memory-warm session
    /// re-reads nothing from disk) contribute nothing.
    /// [`Explorer::explore_all`] and the suite stages call this
    /// automatically; call it directly when warming a custom request
    /// pattern.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::UnknownBenchmark`] for an unregistered name.
    pub fn prefetch(&self, names: &[&str]) -> Result<usize, ExplorerError> {
        let benches: Vec<Benchmark> = names
            .iter()
            .map(|name| self.benchmark(name))
            .collect::<Result<_, _>>()?;
        if !self.tiers.can_stage() {
            return Ok(0);
        }
        let opt_key = OptKey::from(self.opt_config);
        let det_key = DetKey::from(self.detector);
        let cons_key = ConsKey::from(self.constraints);
        let mut keys: Vec<(Stage, u64)> = Vec::new();
        for bench in &benches {
            let name = bench.name.to_string();
            if !self.caches.compile.contains_key(&name) {
                if let Some(k) = self.key_compile(bench) {
                    keys.push((Stage::Compile, k));
                }
            }
            if !self.caches.profile.contains_key(&(name.clone(), self.seed)) {
                if let Some(k) = self.key_profile(bench) {
                    keys.push((Stage::Profile, k));
                }
            }
            // every configured level, plus the design stage's feedback
            // level (which may not be in the configured list)
            let mut levels: BTreeSet<OptLevel> = self.levels.iter().copied().collect();
            levels.insert(self.constraints.opt_level);
            for level in levels {
                let typed = (name.clone(), self.seed, level, opt_key);
                if !self.caches.schedule.contains_key(&typed) {
                    if let Some(k) = self.key_schedule(bench, level, self.opt_config) {
                        keys.push((Stage::Schedule, k));
                    }
                }
            }
            for &level in &self.levels {
                let typed = (name.clone(), self.seed, level, opt_key, det_key);
                if !self.caches.analyze.contains_key(&typed) {
                    if let Some(k) = self.key_analyze(bench, level, self.opt_config, self.detector)
                    {
                        keys.push((Stage::Analyze, k));
                    }
                }
            }
            let typed = (name.clone(), self.seed, cons_key, det_key, opt_key);
            if !self.caches.design.contains_key(&typed) {
                if let Some(k) =
                    self.key_design(Stage::Design, bench, self.constraints, self.detector)
                {
                    keys.push((Stage::Design, k));
                }
            }
            if !self.caches.evaluate.contains_key(&typed) {
                if let Some(k) =
                    self.key_design(Stage::Evaluate, bench, self.constraints, self.detector)
                {
                    keys.push((Stage::Evaluate, k));
                }
            }
        }
        Ok(self.prefetch_keys(keys))
    }

    /// The member-level keys a suite stage's computation will request
    /// and cannot serve from the typed caches: compile, profile and the
    /// feedback-level schedule for each (already validated) member.
    fn member_stage_keys(
        &self,
        members: &[String],
        level: OptLevel,
        opt: OptConfig,
    ) -> Vec<(Stage, u64)> {
        let opt_key = OptKey::from(opt);
        let mut keys = Vec::new();
        for name in members {
            let Some(bench) = self.registry.find(name) else {
                continue;
            };
            if !self.caches.compile.contains_key(name) {
                if let Some(k) = self.key_compile(bench) {
                    keys.push((Stage::Compile, k));
                }
            }
            if !self.caches.profile.contains_key(&(name.clone(), self.seed)) {
                if let Some(k) = self.key_profile(bench) {
                    keys.push((Stage::Profile, k));
                }
            }
            let typed = (name.clone(), self.seed, level, opt_key);
            if !self.caches.schedule.contains_key(&typed) {
                if let Some(k) = self.key_schedule(bench, level, opt) {
                    keys.push((Stage::Schedule, k));
                }
            }
        }
        keys
    }

    /// Stage an explicit key set in parallel on the session thread
    /// pool, returning how many entries were staged. Infallible: a key
    /// that cannot be staged is simply skipped.
    fn prefetch_keys(&self, mut keys: Vec<(Stage, u64)>) -> usize {
        if !self.tiers.can_stage() || keys.is_empty() {
            return 0;
        }
        keys.sort_unstable();
        keys.dedup();
        // a batched tier (the remote tier) turns the whole warm-up into
        // one round trip instead of one request per key; the stack
        // walks persistent tiers in order either way
        if self.tiers.has_batched() {
            return self.tiers.stage_in_batch(&keys);
        }
        let staged = AtomicUsize::new(0);
        let result: Result<Vec<()>, ExplorerError> = self.map_slice(&keys, |&(stage, key)| {
            if self.tiers.stage_in(stage, key) {
                staged.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        });
        debug_assert!(result.is_ok(), "staging work is infallible");
        staged.into_inner()
    }
}

/// Feed a benchmark's content identity: the suite tag (so a generated
/// program can never collide with a Table-1 artifact even under a reused
/// name), the name, the *source bytes* (so a replaced registry entry can
/// never serve the old program) and the input-data specification.
fn hash_benchmark(h: &mut StableHasher, b: &Benchmark) {
    h.write(&[b.suite.tag()]);
    h.write_str(b.name);
    h.write_str(b.source);
    hash_data_spec(h, b.data);
}

fn hash_data_spec(h: &mut StableHasher, spec: DataSpec) {
    match spec {
        DataSpec::Floats { name, n } => {
            h.write_str("floats");
            h.write_str(name);
            h.write_usize(n);
        }
        DataSpec::Ints { name, n } => {
            h.write_str("ints");
            h.write_str(name);
            h.write_usize(n);
        }
        DataSpec::Image { name, w, h: height } => {
            h.write_str("image");
            h.write_str(name);
            h.write_usize(w);
            h.write_usize(height);
        }
        DataSpec::Multi { specs } => {
            h.write_str("multi");
            h.write_usize(specs.len());
            for &inner in specs {
                hash_data_spec(h, inner);
            }
        }
    }
}

fn hash_level(h: &mut StableHasher, level: OptLevel) {
    h.write_usize(level as usize);
}

fn hash_opt_config(h: &mut StableHasher, c: OptConfig) {
    h.write_usize(c.unroll);
    h.write_bool(c.merge_blocks);
    h.write_usize(c.width);
    h.write_usize(c.hoist_passes);
    h.write_usize(c.if_convert_max_ops);
}

/// Feed a detector configuration. The chainable-class policy is a
/// function pointer, whose address is useless across processes (ASLR);
/// its observable behavior — the truth table over every [`OpClass`] —
/// is hashed instead, so two processes with the same policy share
/// entries and different policies never collide.
fn hash_detector(h: &mut StableHasher, c: DetectorConfig) {
    h.write_usize(c.min_len);
    h.write_usize(c.max_len);
    h.write_usize(c.window);
    h.write_f64(c.prune_floor);
    for &class in OpClass::all() {
        h.write_bool((c.chainable)(class));
    }
}

fn hash_constraints(h: &mut StableHasher, c: DesignConstraints) {
    h.write_f64(c.area_budget);
    h.write_f64(c.clock_ns);
    h.write_usize(c.max_extensions);
    hash_level(h, c.opt_level);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_counter_layout() {
        // `Stage as usize` indexes the counter arrays; pin the layout.
        for (i, s) in Stage::all().into_iter().enumerate() {
            assert_eq!(s as usize, i);
        }
        assert_eq!(Stage::all().len(), 9);
    }

    #[test]
    fn unknown_benchmark_is_an_error_not_a_panic() {
        let session = Explorer::new();
        let err = session.compile("not-a-benchmark").unwrap_err();
        assert!(matches!(err, ExplorerError::UnknownBenchmark { .. }));
    }

    #[test]
    fn reset_clears_ephemeral_state_only() {
        let session = Explorer::new().with_levels([OptLevel::Pipelined]);
        session.profile("sewha").expect("profiles");
        assert_eq!(session.cache_stats().compile.misses, 1);
        session.reset();
        assert_eq!(session.cache_stats(), CacheStats::default());
        // permanent state survives: same configuration, fresh caches
        assert_eq!(session.levels(), &[OptLevel::Pipelined]);
        session.profile("sewha").expect("profiles again");
        assert_eq!(session.cache_stats().profile.misses, 1);
    }

    #[test]
    fn warm_sweeps_reuse_pooled_run_states_and_prepared_designs() {
        let session = Explorer::new().with_levels([OptLevel::Pipelined]);
        session.evaluate("sewha").expect("evaluates");
        let warm = session.cache_stats().run_state;
        assert!(warm.checkouts >= warm.creates);
        assert!(warm.creates > 0, "the first runs had to allocate");

        // the same design on fresh data: the prepared engine is served
        // from the rewritten cache, no re-prepare
        let design = session.evaluate("sewha").expect("cached").design;
        let a = session.prepared("sewha", &design).expect("prepares");
        let b = session.prepared("sewha", &design).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "same design digest, same engine");

        // store-warm sweep: more pooled runs, zero new bank allocations
        let data = session
            .benchmark("sewha")
            .expect("registered")
            .dataset_with_seed(7);
        for _ in 0..4 {
            a.engine().run_profile(&data).expect("runs");
            session
                .engine("sewha")
                .expect("cached")
                .run_profile(&data)
                .expect("runs");
        }
        let after = session.cache_stats().run_state;
        assert_eq!(after.creates, warm.creates, "warm sweeps allocate nothing");
        assert_eq!(after.checkouts, warm.checkouts + 8);
    }

    #[test]
    fn suite_members_sort_dedup_and_validate() {
        let session = Explorer::new();
        let members = session
            .suite_members(&["fir", "sewha", "fir", "bspline"])
            .expect("all registered");
        assert_eq!(members, ["bspline", "fir", "sewha"]);
        assert!(matches!(
            session.suite_members(&[]).unwrap_err(),
            ExplorerError::EmptySuite
        ));
        assert!(matches!(
            session.suite_members(&["fir", "nope"]).unwrap_err(),
            ExplorerError::UnknownBenchmark { .. }
        ));
    }

    #[test]
    fn storeless_sessions_have_an_empty_tier_stack() {
        let session = Explorer::new();
        assert!(session.tier_stack().is_empty());
        assert!(session.tier_totals().is_empty());
        // and never pay key hashing
        assert_eq!(session.disk_key(Stage::Compile, |_| {}), None);
    }

    #[test]
    fn with_store_builds_a_staging_plus_disk_stack() {
        let dir = std::env::temp_dir().join(format!("asip-session-stack-{}", std::process::id()));
        let session = Explorer::new().with_store(&dir);
        let names: Vec<&str> = session
            .tier_stack()
            .tiers()
            .iter()
            .map(|t| t.name())
            .collect();
        assert_eq!(names, ["memory", "disk"]);
        assert!(session.tier_stack().can_stage());
        assert_eq!(session.tier_totals().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
