//! The [`Explorer`] session: staged, cached, parallel design-space
//! exploration.
//!
//! An `Explorer` is a long-lived session object in the style of a
//! compiler driver: *permanent* state (the benchmark registry and the
//! stage configurations, fixed by the builder) and *ephemeral* state
//! (per-stage artifact caches plus hit/miss counters, dropped by
//! [`Explorer::reset`]). Every stage method is memoized on
//! `(benchmark, stage parameters)`, so a sweep that revisits a
//! benchmark under many detector or optimizer configurations compiles
//! and simulates it exactly once — the expensive early stages are
//! shared across the whole sweep, and [`Explorer::cache_stats`] proves
//! it.
//!
//! ```
//! use asip_explorer::Explorer;
//!
//! # fn main() -> Result<(), asip_explorer::ExplorerError> {
//! let session = Explorer::new();
//! let a = session.analyze("sewha", asip_explorer::opt::OptLevel::Pipelined)?;
//! assert!(!a.report.is_empty());
//! // a second request is served from cache — same Arc, no recompute
//! let b = session.analyze("sewha", asip_explorer::opt::OptLevel::Pipelined)?;
//! assert!(std::sync::Arc::ptr_eq(&a.report, &b.report));
//! assert_eq!(session.cache_stats().analyze.hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::artifact::{
    Analyzed, Compiled, Designed, Evaluated, Exploration, Profiled, Scheduled, Stage,
};
use crate::error::ExplorerError;
use asip_benchmarks::{Benchmark, Registry, DEFAULT_SEED};
use asip_chains::{DetectorConfig, SequenceDetector, SequenceReport};
use asip_ir::Program;
use asip_opt::{OptConfig, OptLevel, Optimizer, ScheduleGraph};
use asip_sim::{Profile, Simulator};
use asip_synth::{AsipDesign, AsipDesigner, DesignConstraints, Evaluation};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Hit/miss counters for one stage cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Requests served from the session cache.
    pub hits: u64,
    /// Requests that ran the stage.
    pub misses: u64,
}

/// A snapshot of the session's per-stage cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compile-stage counters.
    pub compile: StageStats,
    /// Profile-stage counters.
    pub profile: StageStats,
    /// Schedule-stage counters.
    pub schedule: StageStats,
    /// Analyze-stage counters.
    pub analyze: StageStats,
    /// Design-stage counters.
    pub design: StageStats,
    /// Evaluate-stage counters.
    pub evaluate: StageStats,
}

impl CacheStats {
    /// Counters for one stage.
    pub fn stage(&self, stage: Stage) -> StageStats {
        match stage {
            Stage::Compile => self.compile,
            Stage::Profile => self.profile,
            Stage::Schedule => self.schedule,
            Stage::Analyze => self.analyze,
            Stage::Design => self.design,
            Stage::Evaluate => self.evaluate,
        }
    }

    /// Total cache hits across stages.
    pub fn total_hits(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).hits).sum()
    }

    /// Total stage executions across stages.
    pub fn total_misses(&self) -> u64 {
        Stage::all().iter().map(|s| self.stage(*s).misses).sum()
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stage) in Stage::all().into_iter().enumerate() {
            let st = self.stage(stage);
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{stage}: {}h/{}m", st.hits, st.misses)?;
        }
        Ok(())
    }
}

// -- cache keys --------------------------------------------------------

/// Hashable identity of an [`OptConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OptKey {
    unroll: usize,
    merge_blocks: bool,
    width: usize,
    hoist_passes: usize,
    if_convert_max_ops: usize,
}

impl From<OptConfig> for OptKey {
    fn from(c: OptConfig) -> Self {
        OptKey {
            unroll: c.unroll,
            merge_blocks: c.merge_blocks,
            width: c.width,
            hoist_passes: c.hoist_passes,
            if_convert_max_ops: c.if_convert_max_ops,
        }
    }
}

/// Hashable identity of a [`DetectorConfig`] (the chainable-class
/// policy hashes by function address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DetKey {
    min_len: usize,
    max_len: usize,
    window: usize,
    prune_floor_bits: u64,
    chainable: usize,
}

impl From<DetectorConfig> for DetKey {
    fn from(c: DetectorConfig) -> Self {
        DetKey {
            min_len: c.min_len,
            max_len: c.max_len,
            window: c.window,
            prune_floor_bits: c.prune_floor.to_bits(),
            chainable: c.chainable as usize,
        }
    }
}

/// Hashable identity of [`DesignConstraints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConsKey {
    area_bits: u64,
    clock_bits: u64,
    max_extensions: usize,
    opt_level: OptLevel,
}

impl From<DesignConstraints> for ConsKey {
    fn from(c: DesignConstraints) -> Self {
        ConsKey {
            area_bits: c.area_budget.to_bits(),
            clock_bits: c.clock_ns.to_bits(),
            max_extensions: c.max_extensions,
            opt_level: c.opt_level,
        }
    }
}

// -- the session -------------------------------------------------------

type Cache<K, V> = Mutex<HashMap<K, Arc<V>>>;

#[derive(Debug, Default)]
struct Caches {
    compile: Cache<String, Program>,
    profile: Cache<(String, u64), Profile>,
    schedule: Cache<(String, u64, OptLevel, OptKey), ScheduleGraph>,
    analyze: Cache<(String, u64, OptLevel, OptKey, DetKey), SequenceReport>,
    design: Cache<(String, u64, ConsKey, DetKey), AsipDesign>,
    evaluate: Cache<(String, u64, ConsKey, DetKey), Evaluation>,
}

#[derive(Debug, Default)]
struct Counters {
    hits: [AtomicU64; 6],
    misses: [AtomicU64; 6],
}

/// A staged, cached, parallel design-space exploration session over the
/// benchmark registry. See the [module docs](self) for the state model
/// and a usage example.
#[derive(Debug)]
pub struct Explorer {
    registry: Registry,
    levels: Vec<OptLevel>,
    detector: DetectorConfig,
    opt_config: OptConfig,
    constraints: DesignConstraints,
    seed: u64,
    threads: usize,
    caches: Caches,
    counters: Counters,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            registry: asip_benchmarks::registry(),
            levels: OptLevel::all().to_vec(),
            detector: DetectorConfig::default(),
            opt_config: OptConfig::default(),
            constraints: DesignConstraints::default(),
            seed: DEFAULT_SEED,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            caches: Caches::default(),
            counters: Counters::default(),
        }
    }
}

impl Explorer {
    /// A session over the Table-1 registry with default configuration:
    /// all three optimization levels, default detector and constraints,
    /// the paper seed, and one worker per available core.
    pub fn new() -> Self {
        Explorer::default()
    }

    // -- builder (permanent state) -------------------------------------

    /// Replace the benchmark registry. Drops any cached artifacts, since
    /// a name may now resolve to a different program.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self.reset();
        self
    }

    /// Add one benchmark (e.g. a user kernel) to the session registry.
    /// A benchmark with the same name replaces the existing entry, and
    /// any cached artifacts are dropped so the name cannot serve stale
    /// results.
    pub fn with_benchmark(mut self, bench: Benchmark) -> Self {
        self.registry.push(bench);
        self.reset();
        self
    }

    /// Restrict which optimization levels [`Explorer::explore`] visits.
    pub fn with_levels(mut self, levels: impl IntoIterator<Item = OptLevel>) -> Self {
        self.levels = levels.into_iter().collect();
        self
    }

    /// Set the default sequence-detector configuration.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Set the default optimizer configuration.
    pub fn with_opt_config(mut self, config: OptConfig) -> Self {
        self.opt_config = config;
        self
    }

    /// Set the default hardware constraints for the design stage.
    pub fn with_constraints(mut self, constraints: DesignConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Set the input-data seed (default: the paper seed, 1995).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the worker-thread count for [`Explorer::explore_all`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    // -- accessors -----------------------------------------------------

    /// The session's benchmark registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The levels [`Explorer::explore`] visits.
    pub fn levels(&self) -> &[OptLevel] {
        &self.levels
    }

    /// The session detector configuration.
    pub fn detector(&self) -> DetectorConfig {
        self.detector
    }

    /// The session optimizer configuration.
    pub fn opt_config(&self) -> OptConfig {
        self.opt_config
    }

    /// The session design constraints.
    pub fn constraints(&self) -> DesignConstraints {
        self.constraints
    }

    /// The session input-data seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    // -- ephemeral-state management ------------------------------------

    /// Drop every cached artifact and zero the counters. Configuration
    /// (registry, levels, stage parameters) is permanent and survives.
    pub fn reset(&self) {
        lock(&self.caches.compile).clear();
        lock(&self.caches.profile).clear();
        lock(&self.caches.schedule).clear();
        lock(&self.caches.analyze).clear();
        lock(&self.caches.design).clear();
        lock(&self.caches.evaluate).clear();
        for i in 0..6 {
            self.counters.hits[i].store(0, Ordering::Relaxed);
            self.counters.misses[i].store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot the per-stage cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        let get = |s: Stage| StageStats {
            hits: self.counters.hits[s as usize].load(Ordering::Relaxed),
            misses: self.counters.misses[s as usize].load(Ordering::Relaxed),
        };
        CacheStats {
            compile: get(Stage::Compile),
            profile: get(Stage::Profile),
            schedule: get(Stage::Schedule),
            analyze: get(Stage::Analyze),
            design: get(Stage::Design),
            evaluate: get(Stage::Evaluate),
        }
    }

    // -- stage methods -------------------------------------------------

    /// Resolve a benchmark by name.
    ///
    /// # Errors
    ///
    /// [`ExplorerError::UnknownBenchmark`] if `name` is not registered.
    pub fn benchmark(&self, name: &str) -> Result<Benchmark, ExplorerError> {
        self.registry
            .find(name)
            .copied()
            .ok_or_else(|| ExplorerError::UnknownBenchmark { name: name.into() })
    }

    /// Compile stage: mini-C source → validated 3-address code.
    ///
    /// # Errors
    ///
    /// Unknown benchmarks and front-end failures.
    pub fn compile(&self, name: &str) -> Result<Compiled, ExplorerError> {
        let benchmark = self.benchmark(name)?;
        let program = self.cached(
            Stage::Compile,
            &self.caches.compile,
            name.to_string(),
            || Ok(benchmark.compile()?),
        )?;
        Ok(Compiled { benchmark, program })
    }

    /// Profile stage: run the benchmark on its seeded Table-1 input
    /// data and collect per-instruction dynamic counts.
    ///
    /// # Errors
    ///
    /// Compile-stage errors plus simulator failures.
    pub fn profile(&self, name: &str) -> Result<Profiled, ExplorerError> {
        let compiled = self.compile(name)?;
        let seed = self.seed;
        let profile = self.cached(
            Stage::Profile,
            &self.caches.profile,
            (name.to_string(), seed),
            || {
                let data = compiled.benchmark.dataset_with_seed(seed);
                Ok(Simulator::new(&compiled.program).run(&data)?.profile)
            },
        )?;
        Ok(Profiled {
            benchmark: compiled.benchmark,
            seed,
            profile,
        })
    }

    /// Schedule stage at `level` with the session optimizer config.
    ///
    /// # Errors
    ///
    /// Propagates compile/profile-stage errors.
    pub fn schedule(&self, name: &str, level: OptLevel) -> Result<Scheduled, ExplorerError> {
        self.schedule_with(name, level, self.opt_config)
    }

    /// Schedule stage with an explicit optimizer config (sweeps share
    /// the cached compile and profile artifacts across configs).
    ///
    /// # Errors
    ///
    /// Propagates compile/profile-stage errors.
    pub fn schedule_with(
        &self,
        name: &str,
        level: OptLevel,
        config: OptConfig,
    ) -> Result<Scheduled, ExplorerError> {
        let profiled = self.profile(name)?;
        let compiled = self.compile(name)?;
        let key = (name.to_string(), self.seed, level, OptKey::from(config));
        let graph = self.cached(Stage::Schedule, &self.caches.schedule, key, || {
            Ok(Optimizer::new(level)
                .with_config(config)
                .run(&compiled.program, &profiled.profile))
        })?;
        Ok(Scheduled {
            benchmark: compiled.benchmark,
            level,
            graph,
        })
    }

    /// Analyze stage at `level` with the session detector config.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn analyze(&self, name: &str, level: OptLevel) -> Result<Analyzed, ExplorerError> {
        self.analyze_with(name, level, self.opt_config, self.detector)
    }

    /// Analyze stage with explicit optimizer and detector configs.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn analyze_with(
        &self,
        name: &str,
        level: OptLevel,
        opt: OptConfig,
        detector: DetectorConfig,
    ) -> Result<Analyzed, ExplorerError> {
        let scheduled = self.schedule_with(name, level, opt)?;
        let key = (
            name.to_string(),
            self.seed,
            level,
            OptKey::from(opt),
            DetKey::from(detector),
        );
        let report = self.cached(Stage::Analyze, &self.caches.analyze, key, || {
            Ok(SequenceDetector::new(detector).analyze(&scheduled.graph))
        })?;
        Ok(Analyzed {
            benchmark: scheduled.benchmark,
            level,
            report,
        })
    }

    /// Design stage: run the feedback loop and select ISA extensions
    /// under the session constraints.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn design(&self, name: &str) -> Result<Designed, ExplorerError> {
        self.design_with(name, self.constraints, self.detector)
    }

    /// Design stage with explicit constraints and detector config.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors.
    pub fn design_with(
        &self,
        name: &str,
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<Designed, ExplorerError> {
        let profiled = self.profile(name)?;
        let compiled = self.compile(name)?;
        let key = (
            name.to_string(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
        );
        let design = self.cached(Stage::Design, &self.caches.design, key, || {
            Ok(AsipDesigner::new(constraints)
                .with_detector(detector)
                .design_for(&compiled.program, &profiled.profile))
        })?;
        Ok(Designed {
            benchmark: compiled.benchmark,
            design,
        })
    }

    /// Evaluate stage: rewrite the program with the selected design and
    /// measure the cycle-count effect on the profiling simulator.
    ///
    /// # Errors
    ///
    /// Propagates earlier-stage errors; simulator failures during the
    /// measurement rerun surface as [`ExplorerError::Eval`].
    pub fn evaluate(&self, name: &str) -> Result<Evaluated, ExplorerError> {
        self.evaluate_with(name, self.constraints, self.detector)
    }

    /// Evaluate stage with explicit constraints and detector config
    /// (budget/clock sweeps share every earlier stage).
    ///
    /// # Errors
    ///
    /// As [`Explorer::evaluate`].
    pub fn evaluate_with(
        &self,
        name: &str,
        constraints: DesignConstraints,
        detector: DetectorConfig,
    ) -> Result<Evaluated, ExplorerError> {
        let designed = self.design_with(name, constraints, detector)?;
        let compiled = self.compile(name)?;
        let key = (
            name.to_string(),
            self.seed,
            ConsKey::from(constraints),
            DetKey::from(detector),
        );
        let evaluation = self.cached(Stage::Evaluate, &self.caches.evaluate, key, || {
            let data = compiled.benchmark.dataset_with_seed(self.seed);
            asip_synth::evaluate(&compiled.program, &designed.design, &data)
                .map_err(ExplorerError::Eval)
        })?;
        Ok(Evaluated {
            benchmark: compiled.benchmark,
            design: designed.design,
            evaluation: (*evaluation).clone(),
        })
    }

    /// Run the complete pipeline for one benchmark: every configured
    /// level's schedule and analysis, plus the design and its measured
    /// evaluation.
    ///
    /// # Errors
    ///
    /// Propagates the first stage error encountered.
    pub fn explore(&self, name: &str) -> Result<Exploration, ExplorerError> {
        let compiled = self.compile(name)?;
        let profiled = self.profile(name)?;
        let mut levels = Vec::with_capacity(self.levels.len());
        for &level in &self.levels {
            let scheduled = self.schedule(name, level)?;
            let analyzed = self.analyze(name, level)?;
            levels.push((scheduled, analyzed));
        }
        let designed = self.design(name)?;
        let evaluated = self.evaluate(name)?;
        Ok(Exploration {
            benchmark: compiled.benchmark,
            compiled,
            profiled,
            levels,
            designed,
            evaluated,
        })
    }

    /// Explore every benchmark in the registry, fanning the work out
    /// over the session's worker threads. Results come back in registry
    /// order regardless of scheduling.
    ///
    /// # Errors
    ///
    /// The first stage error encountered (work in flight completes).
    pub fn explore_all(&self) -> Result<Vec<Exploration>, ExplorerError> {
        self.map_all(|b| self.explore(b.name))
    }

    /// Run `f` for every registry benchmark on the session thread pool,
    /// preserving registry order. `f` typically composes stage methods,
    /// so all workers share the session caches.
    ///
    /// # Errors
    ///
    /// The first error any worker produced (in registry order).
    pub fn map_all<T, F>(&self, f: F) -> Result<Vec<T>, ExplorerError>
    where
        T: Send,
        F: Fn(&Benchmark) -> Result<T, ExplorerError> + Sync,
    {
        let benches: Vec<Benchmark> = self.registry.iter().copied().collect();
        self.map_slice(&benches, f)
    }

    /// The worker pool behind [`Explorer::map_all`]: a shared atomic
    /// work index over `items`, one result slot per item.
    fn map_slice<I, T, F>(&self, items: &[I], f: F) -> Result<Vec<T>, ExplorerError>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> Result<T, ExplorerError> + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T, ExplorerError>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    *lock(&slots[i]) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                lock(&slot)
                    .take()
                    .expect("every slot is filled before scope exit")
            })
            .collect()
    }

    // -- cache plumbing ------------------------------------------------

    fn cached<K, V, F>(
        &self,
        stage: Stage,
        cache: &Cache<K, V>,
        key: K,
        compute: F,
    ) -> Result<Arc<V>, ExplorerError>
    where
        K: Eq + Hash,
        F: FnOnce() -> Result<V, ExplorerError>,
    {
        if let Some(v) = lock(cache).get(&key) {
            self.counters.hits[stage as usize].fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(v));
        }
        // Compute outside the lock so independent keys proceed in
        // parallel; a race on the same key keeps the first insertion
        // (so repeated lookups stay pointer-identical).
        self.counters.misses[stage as usize].fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute()?);
        let mut map = lock(cache);
        Ok(Arc::clone(map.entry(key).or_insert(value)))
    }
}

/// Lock a session mutex, recovering from poisoning: cache maps are
/// only mutated by whole-entry insertion, so a panicking worker cannot
/// leave an entry half-written.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_counter_layout() {
        // `Stage as usize` indexes the counter arrays; pin the layout.
        for (i, s) in Stage::all().into_iter().enumerate() {
            assert_eq!(s as usize, i);
        }
    }

    #[test]
    fn unknown_benchmark_is_an_error_not_a_panic() {
        let session = Explorer::new();
        let err = session.compile("not-a-benchmark").unwrap_err();
        assert!(matches!(err, ExplorerError::UnknownBenchmark { .. }));
    }

    #[test]
    fn reset_clears_ephemeral_state_only() {
        let session = Explorer::new().with_levels([OptLevel::Pipelined]);
        session.profile("sewha").expect("profiles");
        assert_eq!(session.cache_stats().compile.misses, 1);
        session.reset();
        assert_eq!(session.cache_stats(), CacheStats::default());
        // permanent state survives: same configuration, fresh caches
        assert_eq!(session.levels(), &[OptLevel::Pipelined]);
        session.profile("sewha").expect("profiles again");
        assert_eq!(session.cache_stats().profile.misses, 1);
    }
}
