//! Typed stage artifacts of the exploration pipeline.
//!
//! The paper's Figure 1/2 loop is a chain of stages — compile →
//! profile → schedule (optimize) → analyze (detect) → design →
//! evaluate. Each stage's output is a distinct artifact type carrying
//! its benchmark identity and the parameters it was produced under, so
//! downstream code cannot accidentally mix a level-0 schedule with a
//! level-2 report. Payloads are shared through [`Arc`]: a cache hit in
//! the [`Explorer`](crate::Explorer) session returns a handle to the
//! *same* underlying data, never a re-computed copy.

use asip_benchmarks::Benchmark;
use asip_chains::SequenceReport;
use asip_ir::{OpClass, Program};
use asip_opt::{OptLevel, ScheduleGraph};
use asip_sim::Profile;
use asip_synth::{AsipDesign, Evaluation};
use std::sync::Arc;

/// The stages of the exploration pipeline: the six per-benchmark stages
/// in paper order, then the two suite-level stages (one shared ASIP for
/// a set of applications — the paper's actual deployment scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Mini-C source → validated 3-address code (Figure 2, step 1).
    Compile,
    /// Dynamic execution counts on the Table-1 input data (step 2).
    Profile,
    /// Optimized wide-instruction program graph (step 3).
    Schedule,
    /// Detected chainable-sequence report (step 4, the contribution).
    Analyze,
    /// Selected ISA extension set under constraints (Figure 1).
    Design,
    /// Measured speedup of the rewritten program (Figure 1, closed).
    Evaluate,
    /// One extension set selected for a whole benchmark suite.
    DesignSuite,
    /// The suite design measured on every member.
    EvaluateSuite,
    /// The pruned design-space frontier of a whole constraint grid
    /// explored over a suite (per-config winners + pareto points).
    DesignSpace,
}

/// Number of pipeline stages — the length of [`Stage::all`], and the
/// size of every `Stage as usize`-indexed counter array.
pub const STAGE_COUNT: usize = 9;

impl Stage {
    /// All stages in pipeline order (suite stages last).
    pub fn all() -> [Stage; STAGE_COUNT] {
        [
            Stage::Compile,
            Stage::Profile,
            Stage::Schedule,
            Stage::Analyze,
            Stage::Design,
            Stage::Evaluate,
            Stage::DesignSuite,
            Stage::EvaluateSuite,
            Stage::DesignSpace,
        ]
    }

    /// Stable lowercase name (used in stats displays, store directory
    /// names and the store manifest).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Compile => "compile",
            Stage::Profile => "profile",
            Stage::Schedule => "schedule",
            Stage::Analyze => "analyze",
            Stage::Design => "design",
            Stage::Evaluate => "evaluate",
            Stage::DesignSuite => "design-suite",
            Stage::EvaluateSuite => "evaluate-suite",
            Stage::DesignSpace => "design-space",
        }
    }

    /// The inverse of [`Stage::name`], for parsers of on-disk state
    /// (store manifests, stage directory names). Unknown names are
    /// `None`, never a panic — on-disk state is untrusted input.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::all().into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compile-stage artifact: validated 3-address code.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The benchmark this program was compiled from.
    pub benchmark: Benchmark,
    /// The validated IR (shared with every dependent artifact).
    pub program: Arc<Program>,
}

/// Profile-stage artifact: dynamic execution counts.
#[derive(Debug, Clone)]
pub struct Profiled {
    /// The benchmark that was simulated.
    pub benchmark: Benchmark,
    /// The data-generation seed the run used.
    pub seed: u64,
    /// Per-instruction dynamic counts.
    pub profile: Arc<Profile>,
}

/// Schedule-stage artifact: the optimized program graph at one level.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// The benchmark that was scheduled.
    pub benchmark: Benchmark,
    /// The optimization level the graph was produced at.
    pub level: OptLevel,
    /// The wide-instruction program graph.
    pub graph: Arc<ScheduleGraph>,
}

/// Analyze-stage artifact: the detected-sequence report at one level.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// The benchmark that was analyzed.
    pub benchmark: Benchmark,
    /// The optimization level the analysis ran over.
    pub level: OptLevel,
    /// Sequence signatures with dynamic frequencies.
    pub report: Arc<SequenceReport>,
}

/// Design-stage artifact: the selected ISA extension set.
#[derive(Debug, Clone)]
pub struct Designed {
    /// The benchmark the design was tuned for.
    pub benchmark: Benchmark,
    /// The chained-instruction extensions chosen under constraints.
    pub design: Arc<AsipDesign>,
}

/// Evaluate-stage artifact: the measured effect of the design.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The benchmark that was measured.
    pub benchmark: Benchmark,
    /// The design that was applied.
    pub design: Arc<AsipDesign>,
    /// Before/after cycle counts and speedup (shared with the session
    /// cache like every other artifact payload).
    pub evaluation: Arc<Evaluation>,
}

/// Suite-design-stage artifact: one extension set shared by a suite.
#[derive(Debug, Clone)]
pub struct DesignedSuite {
    /// The member benchmark names, sorted and deduplicated (the suite's
    /// canonical identity — also its cache-key order).
    pub benchmarks: Vec<String>,
    /// The shared extension set selected from the combined feedback.
    pub design: Arc<AsipDesign>,
}

/// Suite-evaluate-stage artifact: the shared design measured on every
/// suite member.
#[derive(Debug, Clone)]
pub struct EvaluatedSuite {
    /// The member benchmark names, sorted and deduplicated.
    pub benchmarks: Vec<String>,
    /// The shared extension set that was applied.
    pub design: Arc<AsipDesign>,
    /// Per-member measurements, in `benchmarks` order.
    pub evaluations: Arc<Vec<(String, Evaluation)>>,
}

/// Design-space-stage artifact: the pruned frontier of a whole
/// constraint grid explored over a suite in one incremental search.
#[derive(Debug, Clone)]
pub struct DesignSpaced {
    /// The member benchmark names, sorted and deduplicated.
    pub benchmarks: Vec<String>,
    /// Per-config winners and pareto points (shared with the session
    /// cache like every other artifact payload).
    pub space: Arc<asip_synth::DesignSpace>,
}

impl EvaluatedSuite {
    /// The measured speedup of one member, if it is in the suite.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.evaluations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e.speedup)
    }

    /// Geometric-mean speedup over the members, or `None` for an empty
    /// suite (the mean of zero factors is undefined, not `NaN`).
    pub fn geomean_speedup(&self) -> Option<f64> {
        geomean(self.evaluations.iter().map(|(_, e)| e.speedup))
    }
}

/// Geometric mean of a speedup series, or `None` for an empty series
/// (a mean of zero factors would otherwise divide 0 by 0 and print as
/// `NaN`).
pub fn geomean(speedups: impl IntoIterator<Item = f64>) -> Option<f64> {
    let (count, log_sum) = speedups
        .into_iter()
        .fold((0u32, 0.0_f64), |(n, sum), s| (n + 1, sum + s.ln()));
    if count == 0 {
        return None;
    }
    Some((log_sum / f64::from(count)).exp())
}

/// A stage result at the API boundary: any artifact, tagged by stage.
///
/// Stage methods on [`Explorer`](crate::Explorer) return the concrete
/// artifact types above; this enum is for callers that treat the
/// pipeline uniformly (progress reporting, artifact stores, servers).
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Compile-stage result.
    Compiled(Compiled),
    /// Profile-stage result.
    Profiled(Profiled),
    /// Schedule-stage result.
    Scheduled(Scheduled),
    /// Analyze-stage result.
    Analyzed(Analyzed),
    /// Design-stage result.
    Designed(Designed),
    /// Evaluate-stage result.
    Evaluated(Evaluated),
    /// Suite-design-stage result.
    DesignedSuite(DesignedSuite),
    /// Suite-evaluate-stage result.
    EvaluatedSuite(EvaluatedSuite),
    /// Design-space-stage result.
    DesignSpaced(DesignSpaced),
}

impl Artifact {
    /// Which stage produced this artifact.
    pub fn stage(&self) -> Stage {
        match self {
            Artifact::Compiled(_) => Stage::Compile,
            Artifact::Profiled(_) => Stage::Profile,
            Artifact::Scheduled(_) => Stage::Schedule,
            Artifact::Analyzed(_) => Stage::Analyze,
            Artifact::Designed(_) => Stage::Design,
            Artifact::Evaluated(_) => Stage::Evaluate,
            Artifact::DesignedSuite(_) => Stage::DesignSuite,
            Artifact::EvaluatedSuite(_) => Stage::EvaluateSuite,
            Artifact::DesignSpaced(_) => Stage::DesignSpace,
        }
    }

    /// The benchmark the artifact belongs to, for the per-benchmark
    /// stages. Suite-level artifacts span many benchmarks and return
    /// `None` — their members are in their `benchmarks` field.
    pub fn benchmark(&self) -> Option<&Benchmark> {
        match self {
            Artifact::Compiled(a) => Some(&a.benchmark),
            Artifact::Profiled(a) => Some(&a.benchmark),
            Artifact::Scheduled(a) => Some(&a.benchmark),
            Artifact::Analyzed(a) => Some(&a.benchmark),
            Artifact::Designed(a) => Some(&a.benchmark),
            Artifact::Evaluated(a) => Some(&a.benchmark),
            Artifact::DesignedSuite(_)
            | Artifact::EvaluatedSuite(_)
            | Artifact::DesignSpaced(_) => None,
        }
    }
}

/// The complete result of exploring one benchmark: every stage artifact
/// the session's configuration asked for.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The explored benchmark.
    pub benchmark: Benchmark,
    /// Compile-stage artifact.
    pub compiled: Compiled,
    /// Profile-stage artifact.
    pub profiled: Profiled,
    /// One (schedule, analysis) pair per configured level, in the
    /// session's level order.
    pub levels: Vec<(Scheduled, Analyzed)>,
    /// Design-stage artifact.
    pub designed: Designed,
    /// Evaluate-stage artifact.
    pub evaluated: Evaluated,
}

impl Exploration {
    /// The schedule graph produced at `level`, if that level was
    /// configured on the session.
    pub fn graph_at(&self, level: OptLevel) -> Option<&ScheduleGraph> {
        self.levels
            .iter()
            .find(|(s, _)| s.level == level)
            .map(|(s, _)| s.graph.as_ref())
    }

    /// The sequence report produced at `level`, if configured.
    pub fn report_at(&self, level: OptLevel) -> Option<&SequenceReport> {
        self.levels
            .iter()
            .find(|(_, a)| a.level == level)
            .map(|(_, a)| a.report.as_ref())
    }

    /// The measured speedup of the selected design.
    pub fn speedup(&self) -> f64 {
        self.evaluated.evaluation.speedup
    }
}

// -- the artifact codec ------------------------------------------------
//
// The offline build links a no-op `serde` shim, so derive-based
// serialization is unavailable; stage payloads are persisted with this
// hand-rolled self-describing binary codec instead. Every value carries
// a one-byte type tag, so a decoder reading skewed bytes fails with a
// typed [`CodecError`] instead of misinterpreting them. Swapping in the
// real serde later is mechanical: replace each `ArtifactCodec` impl
// with the already-present derives and re-point the store at
// `bincode`/`serde_json`.

/// Type tags of the self-describing binary artifact encoding. One tag
/// byte precedes every encoded value; see `docs/persistence.md` for the
/// full framing specification.
mod tag {
    /// Unsigned 64-bit integer (8 bytes little-endian follow).
    pub const U64: u8 = 0x01;
    /// Signed 64-bit integer (8 bytes little-endian follow).
    pub const I64: u8 = 0x02;
    /// IEEE-754 double (8 bytes little-endian bit pattern follow).
    pub const F64: u8 = 0x03;
    /// Boolean (1 byte follows: 0 or 1).
    pub const BOOL: u8 = 0x04;
    /// UTF-8 string (u64 little-endian byte length, then the bytes).
    pub const STR: u8 = 0x05;
    /// Sequence header (u64 little-endian element count; the elements
    /// follow, each self-tagged).
    pub const SEQ: u8 = 0x06;
    /// Absent optional value (no payload).
    pub const NONE: u8 = 0x07;
    /// Present optional value (the value follows, self-tagged).
    pub const SOME: u8 = 0x08;
    /// Raw byte string (u64 little-endian byte length, then the bytes
    /// verbatim). Carries opaque payloads — e.g. already-encoded
    /// artifacts traveling through the wire protocol — without
    /// re-interpreting them.
    pub const BYTES: u8 = 0x09;
}

/// Write half of the artifact codec: a growing byte buffer with one
/// `put_*` method per primitive of the encoding.
///
/// ```
/// use asip_explorer::artifact::{ArtifactCodec, Decoder, Encoder};
///
/// let mut enc = Encoder::new();
/// enc.put_str("fir");
/// enc.put_u64(1995);
/// let bytes = enc.into_bytes();
///
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(dec.str()?, "fir");
/// assert_eq!(dec.u64()?, 1995);
/// dec.finish()?;
/// # Ok::<(), asip_explorer::error::CodecError>(())
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append an unsigned integer.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.push(tag::U64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a signed integer.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.push(tag::I64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a float (by exact bit pattern — NaNs round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.push(tag::F64);
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a boolean.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(tag::BOOL);
        self.buf.push(u8::from(v));
    }

    /// Append a string.
    pub fn put_str(&mut self, v: &str) {
        self.buf.push(tag::STR);
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append an opaque byte string verbatim. The counterpart of
    /// [`Decoder::bytes`]; used for payloads that are already encoded
    /// (a nested artifact moving through the remote protocol) and must
    /// round-trip untouched.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.push(tag::BYTES);
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v);
    }

    /// Append a sequence header; the caller then encodes exactly `len`
    /// elements.
    pub fn put_seq(&mut self, len: usize) {
        self.buf.push(tag::SEQ);
        self.buf.extend_from_slice(&(len as u64).to_le_bytes());
    }

    /// Append a whole slice as a sequence (header plus every element),
    /// without requiring the caller to own a `Vec` — the stage payloads
    /// that expose their data as slices encode through this instead of
    /// cloning with `to_vec()` first.
    pub fn put_elems<T: ArtifactCodec>(&mut self, items: &[T]) {
        self.put_seq(items.len());
        for v in items {
            v.encode(self);
        }
    }

    /// Append an optional value.
    pub fn put_option<T: ArtifactCodec>(&mut self, v: Option<&T>) {
        match v {
            None => self.buf.push(tag::NONE),
            Some(v) => {
                self.buf.push(tag::SOME);
                v.encode(self);
            }
        }
    }
}

/// Read half of the artifact codec: a cursor over encoded bytes that
/// validates every type tag. See [`Encoder`] for a round-trip example.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

use crate::error::CodecError;

impl<'a> Decoder<'a> {
    /// A decoder over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Current read offset (for error reporting).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CodecError::Truncated { at: self.pos })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn expect_tag(&mut self, expected: u8) -> Result<(), CodecError> {
        let at = self.pos;
        let found = self.take(1)?[0];
        if found == expected {
            Ok(())
        } else {
            Err(CodecError::Tag {
                at,
                expected,
                found,
            })
        }
    }

    fn raw_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an unsigned integer.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        self.expect_tag(tag::U64)?;
        self.raw_u64()
    }

    /// Read an unsigned integer that must fit `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid {
            detail: format!("{v} does not fit usize"),
        })
    }

    /// Read an unsigned integer that must fit `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| CodecError::Invalid {
            detail: format!("{v} does not fit u32"),
        })
    }

    /// Read a signed integer.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        self.expect_tag(tag::I64)?;
        self.raw_u64().map(|v| v as i64)
    }

    /// Read a float.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        self.expect_tag(tag::F64)?;
        self.raw_u64().map(f64::from_bits)
    }

    /// Read a boolean.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        self.expect_tag(tag::BOOL)?;
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid {
                detail: format!("boolean byte {other:#04x}"),
            }),
        }
    }

    /// Read a string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        self.expect_tag(tag::STR)?;
        let len = self.raw_u64()?;
        let len = usize::try_from(len).map_err(|_| CodecError::Invalid {
            detail: format!("string length {len} does not fit usize"),
        })?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| CodecError::Invalid {
            detail: format!("string is not UTF-8: {e}"),
        })
    }

    /// Read an opaque byte string written by [`Encoder::put_bytes`].
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        self.expect_tag(tag::BYTES)?;
        let len = self.raw_u64()?;
        let len = usize::try_from(len).map_err(|_| CodecError::Invalid {
            detail: format!("byte-string length {len} does not fit usize"),
        })?;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a sequence header, returning the element count. The caller
    /// then decodes exactly that many elements.
    pub fn seq(&mut self) -> Result<usize, CodecError> {
        self.expect_tag(tag::SEQ)?;
        let len = self.raw_u64()?;
        usize::try_from(len).map_err(|_| CodecError::Invalid {
            detail: format!("sequence length {len} does not fit usize"),
        })
    }

    /// Read an optional value.
    pub fn option<T: ArtifactCodec>(&mut self) -> Result<Option<T>, CodecError> {
        let at = self.pos;
        match self.take(1)?[0] {
            t if t == tag::NONE => Ok(None),
            t if t == tag::SOME => Ok(Some(T::decode(self)?)),
            found => Err(CodecError::Tag {
                at,
                expected: tag::SOME,
                found,
            }),
        }
    }

    /// Assert that every byte was consumed (corrupted entries often
    /// decode to a structurally valid prefix; this catches the rest).
    pub fn finish(self) -> Result<(), CodecError> {
        let remaining = self.bytes.len() - self.pos;
        if remaining == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing { remaining })
        }
    }
}

/// Binary encode/decode for one artifact payload type.
///
/// Implemented by every stage payload the
/// [`Explorer`](crate::Explorer) caches ([`Program`], [`Profile`],
/// [`ScheduleGraph`], [`SequenceReport`], [`AsipDesign`],
/// [`Evaluation`] and the suite evaluation vector), plus the primitives
/// they are built from. `decode(encode(x)) == x` for every valid value;
/// decoding arbitrary bytes returns a [`CodecError`], never panics.
///
/// ```
/// use asip_explorer::artifact::{ArtifactCodec, Decoder, Encoder};
/// use asip_explorer::synth::Evaluation;
///
/// let e = Evaluation {
///     base_cycles: 200, asip_cycles: 100, speedup: 2.0,
///     fused_chains: 3, extension_area: 512.0,
/// };
/// let mut enc = Encoder::new();
/// e.encode(&mut enc);
/// let bytes = enc.into_bytes();
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(Evaluation::decode(&mut dec)?, e);
/// dec.finish()?;
/// # Ok::<(), asip_explorer::error::CodecError>(())
/// ```
pub trait ArtifactCodec: Sized {
    /// Append this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Decode one value from the cursor.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on truncated, mistyped or invalid bytes.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Encode into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Decode from a complete byte slice, requiring full consumption.
    ///
    /// # Errors
    ///
    /// As [`ArtifactCodec::decode`], plus [`CodecError::Trailing`] when
    /// bytes are left over.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

/// Decode a batch of independently-encoded payloads of one artifact
/// type, returning one result per payload (order preserved). For batch
/// consumers of staged/persisted artifacts (e.g. tools sweeping a store
/// directory): a single damaged payload yields one `Err` entry instead
/// of aborting the whole batch.
pub fn decode_batch<V: ArtifactCodec>(
    payloads: impl IntoIterator<Item = impl AsRef<[u8]>>,
) -> Vec<Result<V, CodecError>> {
    payloads
        .into_iter()
        .map(|p| V::from_bytes(p.as_ref()))
        .collect()
}

impl ArtifactCodec for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(*self));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.u32()
    }
}

impl ArtifactCodec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.u64()
    }
}

impl ArtifactCodec for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.usize()
    }
}

impl ArtifactCodec for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.i64()
    }
}

impl ArtifactCodec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.f64()
    }
}

impl ArtifactCodec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.bool()
    }
}

impl ArtifactCodec for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.str()
    }
}

impl<T: ArtifactCodec> ArtifactCodec for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = dec.seq()?;
        // Cap the up-front reservation: a corrupted length must not
        // allocate gigabytes before element decoding fails.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<A: ArtifactCodec, B: ArtifactCodec> ArtifactCodec for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<T: ArtifactCodec> ArtifactCodec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_option(self.as_ref());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.option()
    }
}

// -- IR ids and operands -----------------------------------------------

use asip_ir::{BinOp, Inst, InstKind, Operand, UnOp};
use asip_opt::NodeId;

impl ArtifactCodec for asip_ir::Reg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(self.0));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_ir::Reg(dec.u32()?))
    }
}

impl ArtifactCodec for asip_ir::ArrayId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(self.0));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_ir::ArrayId(dec.u32()?))
    }
}

impl ArtifactCodec for asip_ir::BlockId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(self.0));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_ir::BlockId(dec.u32()?))
    }
}

impl ArtifactCodec for asip_ir::InstId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(self.0));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_ir::InstId(dec.u32()?))
    }
}

impl ArtifactCodec for NodeId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(self.0));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(NodeId(dec.u32()?))
    }
}

/// Decode a mnemonic string through `FromStr` (the IR's mnemonics are
/// stable public vocabulary, which makes them better version-skew
/// detectors than raw discriminant integers).
fn parse_mnemonic<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CodecError> {
    s.parse().map_err(|_| CodecError::Invalid {
        detail: format!("unknown {what} mnemonic `{s}`"),
    })
}

impl ArtifactCodec for BinOp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.mnemonic());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        parse_mnemonic(&dec.str()?, "binary op")
    }
}

impl ArtifactCodec for UnOp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.mnemonic());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        parse_mnemonic(&dec.str()?, "unary op")
    }
}

impl ArtifactCodec for OpClass {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.paper_name());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        parse_mnemonic(&dec.str()?, "op class")
    }
}

impl ArtifactCodec for Operand {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Operand::Reg(r) => {
                enc.put_u64(0);
                r.encode(enc);
            }
            Operand::ImmInt(v) => {
                enc.put_u64(1);
                enc.put_i64(*v);
            }
            Operand::ImmFloat(v) => {
                enc.put_u64(2);
                enc.put_f64(*v);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.u64()? {
            0 => Ok(Operand::Reg(asip_ir::Reg::decode(dec)?)),
            1 => Ok(Operand::ImmInt(dec.i64()?)),
            2 => Ok(Operand::ImmFloat(dec.f64()?)),
            v => Err(CodecError::Invalid {
                detail: format!("operand variant {v}"),
            }),
        }
    }
}

impl ArtifactCodec for Inst {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        match &self.kind {
            InstKind::Binary { op, dst, lhs, rhs } => {
                enc.put_u64(0);
                op.encode(enc);
                dst.encode(enc);
                lhs.encode(enc);
                rhs.encode(enc);
            }
            InstKind::Unary { op, dst, src } => {
                enc.put_u64(1);
                op.encode(enc);
                dst.encode(enc);
                src.encode(enc);
            }
            InstKind::Load { dst, array, index } => {
                enc.put_u64(2);
                dst.encode(enc);
                array.encode(enc);
                index.encode(enc);
            }
            InstKind::Store {
                array,
                index,
                value,
            } => {
                enc.put_u64(3);
                array.encode(enc);
                index.encode(enc);
                value.encode(enc);
            }
            InstKind::Branch {
                cond,
                then_target,
                else_target,
            } => {
                enc.put_u64(4);
                cond.encode(enc);
                then_target.encode(enc);
                else_target.encode(enc);
            }
            InstKind::Jump { target } => {
                enc.put_u64(5);
                target.encode(enc);
            }
            InstKind::Ret { value } => {
                enc.put_u64(6);
                value.encode(enc);
            }
            InstKind::Chained {
                ext,
                dst,
                inputs,
                ops,
            } => {
                enc.put_u64(7);
                ext.encode(enc);
                dst.encode(enc);
                inputs.encode(enc);
                ops.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let id = asip_ir::InstId::decode(dec)?;
        let kind = match dec.u64()? {
            0 => InstKind::Binary {
                op: BinOp::decode(dec)?,
                dst: asip_ir::Reg::decode(dec)?,
                lhs: Operand::decode(dec)?,
                rhs: Operand::decode(dec)?,
            },
            1 => InstKind::Unary {
                op: UnOp::decode(dec)?,
                dst: asip_ir::Reg::decode(dec)?,
                src: Operand::decode(dec)?,
            },
            2 => InstKind::Load {
                dst: asip_ir::Reg::decode(dec)?,
                array: asip_ir::ArrayId::decode(dec)?,
                index: Operand::decode(dec)?,
            },
            3 => InstKind::Store {
                array: asip_ir::ArrayId::decode(dec)?,
                index: Operand::decode(dec)?,
                value: Operand::decode(dec)?,
            },
            4 => InstKind::Branch {
                cond: Operand::decode(dec)?,
                then_target: asip_ir::BlockId::decode(dec)?,
                else_target: asip_ir::BlockId::decode(dec)?,
            },
            5 => InstKind::Jump {
                target: asip_ir::BlockId::decode(dec)?,
            },
            6 => InstKind::Ret {
                value: Option::<Operand>::decode(dec)?,
            },
            7 => InstKind::Chained {
                ext: u32::decode(dec)?,
                dst: asip_ir::Reg::decode(dec)?,
                inputs: Vec::<Operand>::decode(dec)?,
                ops: Vec::<BinOp>::decode(dec)?,
            },
            v => {
                return Err(CodecError::Invalid {
                    detail: format!("instruction variant {v}"),
                })
            }
        };
        Ok(Inst { id, kind })
    }
}

// -- stage payloads ----------------------------------------------------

impl ArtifactCodec for Program {
    /// Programs persist through the IR's lossless textual format (see
    /// [`asip_ir::parse_program`]): the dump is validated on decode, so
    /// a bit-flipped program file is rejected rather than simulated.
    /// `next_inst_id` is carried explicitly because the text encodes
    /// only the *used* ids.
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.to_string());
        enc.put_u64(u64::from(self.next_inst_id));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let text = dec.str()?;
        let next = dec.u32()?;
        let mut program = asip_ir::parse_program(&text).map_err(|e| CodecError::Invalid {
            detail: format!("program text rejected: {e}"),
        })?;
        program.next_inst_id = program.next_inst_id.max(next);
        Ok(program)
    }
}

impl ArtifactCodec for Profile {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_elems(self.inst_counts());
        enc.put_elems(self.block_counts());
        enc.put_u64(self.total_ops());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let inst_counts = Vec::<u64>::decode(dec)?;
        let block_counts = Vec::<u64>::decode(dec)?;
        let total_ops = dec.u64()?;
        Ok(Profile::from_parts(inst_counts, block_counts, total_ops))
    }
}

impl ArtifactCodec for asip_opt::ScheduledOp {
    fn encode(&self, enc: &mut Encoder) {
        self.inst.encode(enc);
        self.orig.encode(enc);
        enc.put_f64(self.weight);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_opt::ScheduledOp {
            inst: Inst::decode(dec)?,
            orig: asip_ir::InstId::decode(dec)?,
            weight: dec.f64()?,
        })
    }
}

impl ArtifactCodec for asip_opt::SchedNode {
    fn encode(&self, enc: &mut Encoder) {
        self.ops.encode(enc);
        self.succs.encode(enc);
        self.preds.encode(enc);
        self.block.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_opt::SchedNode {
            ops: Vec::decode(dec)?,
            succs: Vec::decode(dec)?,
            preds: Vec::decode(dec)?,
            block: asip_ir::BlockId::decode(dec)?,
        })
    }
}

impl ArtifactCodec for ScheduleGraph {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        self.nodes.encode(enc);
        self.entry.encode(enc);
        self.arrays_float.encode(enc);
        enc.put_u64(self.total_profile_ops);
        enc.put_bool(self.region_chaining);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let graph = ScheduleGraph {
            name: dec.str()?,
            nodes: Vec::decode(dec)?,
            entry: NodeId::decode(dec)?,
            arrays_float: Vec::decode(dec)?,
            total_profile_ops: dec.u64()?,
            region_chaining: dec.bool()?,
        };
        // Re-validate structure: a decoded graph feeds the detector and
        // the design stage, which index nodes unchecked.
        graph
            .check_invariants()
            .map_err(|detail| CodecError::Invalid { detail })?;
        Ok(graph)
    }
}

impl ArtifactCodec for asip_chains::Signature {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_elems(self.classes());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let classes = Vec::<OpClass>::decode(dec)?;
        if classes.len() < 2 {
            return Err(CodecError::Invalid {
                detail: format!("signature of length {}", classes.len()),
            });
        }
        Ok(asip_chains::Signature::new(classes))
    }
}

impl ArtifactCodec for asip_chains::SeqStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.frequency);
        enc.put_u64(self.occurrences as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_chains::SeqStats {
            frequency: dec.f64()?,
            occurrences: dec.usize()?,
        })
    }
}

impl ArtifactCodec for SequenceReport {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_elems(self.entries());
        enc.put_u64(self.total_profile_ops);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let name = dec.str()?;
        let entries = Vec::decode(dec)?;
        let total = dec.u64()?;
        // from_parts re-sorts, so a tampered entry order cannot change
        // what `top(n)` reports.
        Ok(SequenceReport::from_parts(name, entries, total))
    }
}

impl ArtifactCodec for asip_synth::IsaExtension {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(self.id));
        self.signature.encode(enc);
        enc.put_f64(self.area);
        enc.put_f64(self.expected_benefit);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_synth::IsaExtension {
            id: dec.u32()?,
            signature: asip_chains::Signature::decode(dec)?,
            area: dec.f64()?,
            expected_benefit: dec.f64()?,
        })
    }
}

impl ArtifactCodec for AsipDesign {
    fn encode(&self, enc: &mut Encoder) {
        self.extensions.encode(enc);
        enc.put_f64(self.extension_area);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(AsipDesign {
            extensions: Vec::decode(dec)?,
            extension_area: dec.f64()?,
        })
    }
}

impl ArtifactCodec for OptLevel {
    /// Levels persist by their stable paper number (0/1/2), the same
    /// identity the session cache keys fold.
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(u64::from(self.number()));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.u64()?;
        OptLevel::all()
            .into_iter()
            .find(|l| u64::from(l.number()) == n)
            .ok_or_else(|| CodecError::Invalid {
                detail: format!("unknown optimization level {n}"),
            })
    }
}

impl ArtifactCodec for asip_synth::DesignConstraints {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.area_budget);
        enc.put_f64(self.clock_ns);
        enc.put_u64(self.max_extensions as u64);
        self.opt_level.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_synth::DesignConstraints {
            area_budget: dec.f64()?,
            clock_ns: dec.f64()?,
            max_extensions: dec.usize()?,
            opt_level: OptLevel::decode(dec)?,
        })
    }
}

impl ArtifactCodec for asip_synth::ParetoPoint {
    fn encode(&self, enc: &mut Encoder) {
        self.level.encode(enc);
        enc.put_f64(self.clock_ns);
        enc.put_f64(self.area);
        enc.put_f64(self.benefit);
        enc.put_u64(self.extensions as u64);
        self.design.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_synth::ParetoPoint {
            level: OptLevel::decode(dec)?,
            clock_ns: dec.f64()?,
            area: dec.f64()?,
            benefit: dec.f64()?,
            extensions: dec.usize()?,
            design: AsipDesign::decode(dec)?,
        })
    }
}

impl ArtifactCodec for asip_synth::SearchStats {
    fn encode(&self, enc: &mut Encoder) {
        for v in [
            self.groups,
            self.candidates,
            self.eliminated,
            self.expanded,
            self.pruned,
            self.memo_hits,
            self.memo_misses,
        ] {
            enc.put_u64(v as u64);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_synth::SearchStats {
            groups: dec.usize()?,
            candidates: dec.usize()?,
            eliminated: dec.usize()?,
            expanded: dec.usize()?,
            pruned: dec.usize()?,
            memo_hits: dec.usize()?,
            memo_misses: dec.usize()?,
        })
    }
}

impl ArtifactCodec for asip_synth::DesignSpace {
    fn encode(&self, enc: &mut Encoder) {
        self.configs.encode(enc);
        self.frontier.encode(enc);
        self.stats.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(asip_synth::DesignSpace {
            configs: Vec::decode(dec)?,
            frontier: Vec::decode(dec)?,
            stats: asip_synth::SearchStats::decode(dec)?,
        })
    }
}

impl ArtifactCodec for Evaluation {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.base_cycles);
        enc.put_u64(self.asip_cycles);
        enc.put_f64(self.speedup);
        enc.put_u64(self.fused_chains as u64);
        enc.put_f64(self.extension_area);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Evaluation {
            base_cycles: dec.u64()?,
            asip_cycles: dec.u64()?,
            speedup: dec.f64()?,
            fused_chains: dec.usize()?,
            extension_area: dec.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_enumerate_in_pipeline_order() {
        let all = Stage::all();
        assert_eq!(all.len(), 9);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all[0].to_string(), "compile");
        assert_eq!(all[5].to_string(), "evaluate");
        assert_eq!(all[6].to_string(), "design-suite");
        assert_eq!(all[7].to_string(), "evaluate-suite");
        assert_eq!(all[8].to_string(), "design-space");
        assert_eq!(Stage::from_name("design-space"), Some(Stage::DesignSpace));
    }

    #[test]
    fn suite_geomean_is_guarded_against_empty_suites() {
        let empty = EvaluatedSuite {
            benchmarks: Vec::new(),
            design: Arc::new(AsipDesign::default()),
            evaluations: Arc::new(Vec::new()),
        };
        assert_eq!(empty.geomean_speedup(), None, "no NaN from 0/0");
        assert_eq!(empty.speedup_of("fir"), None);

        let one = EvaluatedSuite {
            benchmarks: vec!["fir".into()],
            design: Arc::new(AsipDesign::default()),
            evaluations: Arc::new(vec![(
                "fir".into(),
                Evaluation {
                    base_cycles: 200,
                    asip_cycles: 100,
                    speedup: 2.0,
                    fused_chains: 1,
                    extension_area: 0.0,
                },
            )]),
        };
        assert_eq!(one.geomean_speedup(), Some(2.0));
        assert_eq!(one.speedup_of("fir"), Some(2.0));
    }

    fn round_trip<T: ArtifactCodec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u64);
        round_trip(&u64::MAX);
        round_trip(&(-42i64));
        round_trip(&f64::NEG_INFINITY);
        round_trip(&3.25f64);
        round_trip(&true);
        round_trip(&String::from("héllo"));
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Some(7u64));
        round_trip(&None::<u64>);
        round_trip(&(String::from("k"), 2.5f64));
        // NaN round-trips by bit pattern (PartialEq can't see it)
        let nan_bits = f64::NAN.to_bits();
        let back = f64::from_bytes(&f64::from_bits(nan_bits).to_bytes()).expect("decodes");
        assert_eq!(back.to_bits(), nan_bits);
    }

    #[test]
    fn decode_batch_isolates_damaged_payloads() {
        let payloads = vec![1u64.to_bytes(), b"junk".to_vec(), 3u64.to_bytes()];
        let out = decode_batch::<u64>(&payloads);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Ok(1));
        assert!(out[1].is_err(), "one bad payload does not abort the batch");
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn decode_rejects_tag_and_truncation_errors() {
        use crate::error::CodecError;
        // wrong tag
        let bytes = 5u64.to_bytes();
        assert!(matches!(
            f64::from_bytes(&bytes),
            Err(CodecError::Tag { .. })
        ));
        // truncation
        assert!(matches!(
            u64::from_bytes(&bytes[..4]),
            Err(CodecError::Truncated { .. })
        ));
        // trailing garbage
        let mut long = bytes.clone();
        long.push(0xFF);
        assert!(matches!(
            u64::from_bytes(&long),
            Err(CodecError::Trailing { remaining: 1 })
        ));
        // empty input
        assert!(u64::from_bytes(&[]).is_err());
    }

    #[test]
    fn stage_payloads_round_trip() {
        // compile / profile / schedule / analyze / design / evaluate
        // payloads for a real benchmark survive encode → decode exactly
        let bench = asip_benchmarks::registry();
        let bench = bench.find("sewha").expect("built-in");
        let program = bench.compile().expect("compiles");
        round_trip(&program);

        let profile = bench.profile(&program).expect("profiles");
        round_trip(&profile);

        let graph = asip_opt::Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
        round_trip(&graph);

        let report = asip_chains::SequenceDetector::new(asip_chains::DetectorConfig::default())
            .analyze(&graph);
        round_trip(&report);

        let design = asip_synth::AsipDesigner::new(asip_synth::DesignConstraints::default())
            .design_from_schedule(&graph, &program);
        round_trip(&design);

        let evaluation =
            asip_synth::evaluate(&program, &design, &bench.dataset()).expect("evaluates");
        round_trip(&evaluation);
        round_trip(&vec![(String::from("sewha"), evaluation)]);
    }

    #[test]
    fn design_space_payload_round_trips() {
        use asip_synth::{AsipDesigner, DesignConstraints, LevelFeedback};
        let bench = asip_benchmarks::registry();
        let bench = bench.find("sewha").expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("profiles");
        let graph = asip_opt::Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
        let feedback = [LevelFeedback {
            level: OptLevel::Pipelined,
            suite: vec![(&graph, &program)],
        }];
        let configs: Vec<DesignConstraints> = [500.0, 2000.0, 6000.0]
            .into_iter()
            .map(|area_budget| DesignConstraints {
                area_budget,
                ..DesignConstraints::default()
            })
            .collect();
        let space = AsipDesigner::new(DesignConstraints::default())
            .explore_design_space(&feedback, &configs);
        assert_eq!(space.len(), configs.len());
        round_trip(&space);
        // and the pieces round-trip on their own
        round_trip(&OptLevel::PipelinedRenamed);
        round_trip(&configs);
        round_trip(&space.stats);
    }

    #[test]
    fn chained_instructions_round_trip() {
        use asip_ir::{BinOp, Inst, InstId, InstKind, Operand, Reg};
        let inst = Inst::new(
            InstId(9),
            InstKind::Chained {
                ext: 2,
                dst: Reg(4),
                inputs: vec![
                    Operand::Reg(Reg(1)),
                    Operand::imm_int(3),
                    Operand::imm_float(0.5),
                ],
                ops: vec![BinOp::Mul, BinOp::Add],
            },
        );
        round_trip(&inst);
    }

    #[test]
    fn decoded_graph_is_revalidated() {
        let bench = asip_benchmarks::registry();
        let bench = bench.find("sewha").expect("built-in");
        let program = bench.compile().expect("compiles");
        let profile = bench.profile(&program).expect("profiles");
        let mut graph = ScheduleGraph::sequential(&program, &profile);
        // break edge symmetry, encode, and watch decode reject it
        graph.nodes[0].succs.push(asip_opt::NodeId(2));
        let bytes = graph.to_bytes();
        assert!(matches!(
            ScheduleGraph::from_bytes(&bytes),
            Err(crate::error::CodecError::Invalid { .. })
        ));
    }
}
