//! Typed stage artifacts of the exploration pipeline.
//!
//! The paper's Figure 1/2 loop is a chain of stages — compile →
//! profile → schedule (optimize) → analyze (detect) → design →
//! evaluate. Each stage's output is a distinct artifact type carrying
//! its benchmark identity and the parameters it was produced under, so
//! downstream code cannot accidentally mix a level-0 schedule with a
//! level-2 report. Payloads are shared through [`Arc`]: a cache hit in
//! the [`Explorer`](crate::Explorer) session returns a handle to the
//! *same* underlying data, never a re-computed copy.

use asip_benchmarks::Benchmark;
use asip_chains::SequenceReport;
use asip_ir::Program;
use asip_opt::{OptLevel, ScheduleGraph};
use asip_sim::Profile;
use asip_synth::{AsipDesign, Evaluation};
use std::sync::Arc;

/// The stages of the exploration pipeline: the six per-benchmark stages
/// in paper order, then the two suite-level stages (one shared ASIP for
/// a set of applications — the paper's actual deployment scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Mini-C source → validated 3-address code (Figure 2, step 1).
    Compile,
    /// Dynamic execution counts on the Table-1 input data (step 2).
    Profile,
    /// Optimized wide-instruction program graph (step 3).
    Schedule,
    /// Detected chainable-sequence report (step 4, the contribution).
    Analyze,
    /// Selected ISA extension set under constraints (Figure 1).
    Design,
    /// Measured speedup of the rewritten program (Figure 1, closed).
    Evaluate,
    /// One extension set selected for a whole benchmark suite.
    DesignSuite,
    /// The suite design measured on every member.
    EvaluateSuite,
}

impl Stage {
    /// All stages in pipeline order (suite stages last).
    pub fn all() -> [Stage; 8] {
        [
            Stage::Compile,
            Stage::Profile,
            Stage::Schedule,
            Stage::Analyze,
            Stage::Design,
            Stage::Evaluate,
            Stage::DesignSuite,
            Stage::EvaluateSuite,
        ]
    }

    /// Stable lowercase name (used in stats displays).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Compile => "compile",
            Stage::Profile => "profile",
            Stage::Schedule => "schedule",
            Stage::Analyze => "analyze",
            Stage::Design => "design",
            Stage::Evaluate => "evaluate",
            Stage::DesignSuite => "design-suite",
            Stage::EvaluateSuite => "evaluate-suite",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compile-stage artifact: validated 3-address code.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The benchmark this program was compiled from.
    pub benchmark: Benchmark,
    /// The validated IR (shared with every dependent artifact).
    pub program: Arc<Program>,
}

/// Profile-stage artifact: dynamic execution counts.
#[derive(Debug, Clone)]
pub struct Profiled {
    /// The benchmark that was simulated.
    pub benchmark: Benchmark,
    /// The data-generation seed the run used.
    pub seed: u64,
    /// Per-instruction dynamic counts.
    pub profile: Arc<Profile>,
}

/// Schedule-stage artifact: the optimized program graph at one level.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// The benchmark that was scheduled.
    pub benchmark: Benchmark,
    /// The optimization level the graph was produced at.
    pub level: OptLevel,
    /// The wide-instruction program graph.
    pub graph: Arc<ScheduleGraph>,
}

/// Analyze-stage artifact: the detected-sequence report at one level.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// The benchmark that was analyzed.
    pub benchmark: Benchmark,
    /// The optimization level the analysis ran over.
    pub level: OptLevel,
    /// Sequence signatures with dynamic frequencies.
    pub report: Arc<SequenceReport>,
}

/// Design-stage artifact: the selected ISA extension set.
#[derive(Debug, Clone)]
pub struct Designed {
    /// The benchmark the design was tuned for.
    pub benchmark: Benchmark,
    /// The chained-instruction extensions chosen under constraints.
    pub design: Arc<AsipDesign>,
}

/// Evaluate-stage artifact: the measured effect of the design.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The benchmark that was measured.
    pub benchmark: Benchmark,
    /// The design that was applied.
    pub design: Arc<AsipDesign>,
    /// Before/after cycle counts and speedup (shared with the session
    /// cache like every other artifact payload).
    pub evaluation: Arc<Evaluation>,
}

/// Suite-design-stage artifact: one extension set shared by a suite.
#[derive(Debug, Clone)]
pub struct DesignedSuite {
    /// The member benchmark names, sorted and deduplicated (the suite's
    /// canonical identity — also its cache-key order).
    pub benchmarks: Vec<String>,
    /// The shared extension set selected from the combined feedback.
    pub design: Arc<AsipDesign>,
}

/// Suite-evaluate-stage artifact: the shared design measured on every
/// suite member.
#[derive(Debug, Clone)]
pub struct EvaluatedSuite {
    /// The member benchmark names, sorted and deduplicated.
    pub benchmarks: Vec<String>,
    /// The shared extension set that was applied.
    pub design: Arc<AsipDesign>,
    /// Per-member measurements, in `benchmarks` order.
    pub evaluations: Arc<Vec<(String, Evaluation)>>,
}

impl EvaluatedSuite {
    /// The measured speedup of one member, if it is in the suite.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.evaluations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e.speedup)
    }

    /// Geometric-mean speedup over the members, or `None` for an empty
    /// suite (the mean of zero factors is undefined, not `NaN`).
    pub fn geomean_speedup(&self) -> Option<f64> {
        geomean(self.evaluations.iter().map(|(_, e)| e.speedup))
    }
}

/// Geometric mean of a speedup series, or `None` for an empty series
/// (a mean of zero factors would otherwise divide 0 by 0 and print as
/// `NaN`).
pub fn geomean(speedups: impl IntoIterator<Item = f64>) -> Option<f64> {
    let (count, log_sum) = speedups
        .into_iter()
        .fold((0u32, 0.0_f64), |(n, sum), s| (n + 1, sum + s.ln()));
    if count == 0 {
        return None;
    }
    Some((log_sum / f64::from(count)).exp())
}

/// A stage result at the API boundary: any artifact, tagged by stage.
///
/// Stage methods on [`Explorer`](crate::Explorer) return the concrete
/// artifact types above; this enum is for callers that treat the
/// pipeline uniformly (progress reporting, artifact stores, servers).
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Compile-stage result.
    Compiled(Compiled),
    /// Profile-stage result.
    Profiled(Profiled),
    /// Schedule-stage result.
    Scheduled(Scheduled),
    /// Analyze-stage result.
    Analyzed(Analyzed),
    /// Design-stage result.
    Designed(Designed),
    /// Evaluate-stage result.
    Evaluated(Evaluated),
    /// Suite-design-stage result.
    DesignedSuite(DesignedSuite),
    /// Suite-evaluate-stage result.
    EvaluatedSuite(EvaluatedSuite),
}

impl Artifact {
    /// Which stage produced this artifact.
    pub fn stage(&self) -> Stage {
        match self {
            Artifact::Compiled(_) => Stage::Compile,
            Artifact::Profiled(_) => Stage::Profile,
            Artifact::Scheduled(_) => Stage::Schedule,
            Artifact::Analyzed(_) => Stage::Analyze,
            Artifact::Designed(_) => Stage::Design,
            Artifact::Evaluated(_) => Stage::Evaluate,
            Artifact::DesignedSuite(_) => Stage::DesignSuite,
            Artifact::EvaluatedSuite(_) => Stage::EvaluateSuite,
        }
    }

    /// The benchmark the artifact belongs to, for the per-benchmark
    /// stages. Suite-level artifacts span many benchmarks and return
    /// `None` — their members are in their `benchmarks` field.
    pub fn benchmark(&self) -> Option<&Benchmark> {
        match self {
            Artifact::Compiled(a) => Some(&a.benchmark),
            Artifact::Profiled(a) => Some(&a.benchmark),
            Artifact::Scheduled(a) => Some(&a.benchmark),
            Artifact::Analyzed(a) => Some(&a.benchmark),
            Artifact::Designed(a) => Some(&a.benchmark),
            Artifact::Evaluated(a) => Some(&a.benchmark),
            Artifact::DesignedSuite(_) | Artifact::EvaluatedSuite(_) => None,
        }
    }
}

/// The complete result of exploring one benchmark: every stage artifact
/// the session's configuration asked for.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The explored benchmark.
    pub benchmark: Benchmark,
    /// Compile-stage artifact.
    pub compiled: Compiled,
    /// Profile-stage artifact.
    pub profiled: Profiled,
    /// One (schedule, analysis) pair per configured level, in the
    /// session's level order.
    pub levels: Vec<(Scheduled, Analyzed)>,
    /// Design-stage artifact.
    pub designed: Designed,
    /// Evaluate-stage artifact.
    pub evaluated: Evaluated,
}

impl Exploration {
    /// The schedule graph produced at `level`, if that level was
    /// configured on the session.
    pub fn graph_at(&self, level: OptLevel) -> Option<&ScheduleGraph> {
        self.levels
            .iter()
            .find(|(s, _)| s.level == level)
            .map(|(s, _)| s.graph.as_ref())
    }

    /// The sequence report produced at `level`, if configured.
    pub fn report_at(&self, level: OptLevel) -> Option<&SequenceReport> {
        self.levels
            .iter()
            .find(|(_, a)| a.level == level)
            .map(|(_, a)| a.report.as_ref())
    }

    /// The measured speedup of the selected design.
    pub fn speedup(&self) -> f64 {
        self.evaluated.evaluation.speedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_enumerate_in_pipeline_order() {
        let all = Stage::all();
        assert_eq!(all.len(), 8);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all[0].to_string(), "compile");
        assert_eq!(all[5].to_string(), "evaluate");
        assert_eq!(all[6].to_string(), "design-suite");
        assert_eq!(all[7].to_string(), "evaluate-suite");
    }

    #[test]
    fn suite_geomean_is_guarded_against_empty_suites() {
        let empty = EvaluatedSuite {
            benchmarks: Vec::new(),
            design: Arc::new(AsipDesign::default()),
            evaluations: Arc::new(Vec::new()),
        };
        assert_eq!(empty.geomean_speedup(), None, "no NaN from 0/0");
        assert_eq!(empty.speedup_of("fir"), None);

        let one = EvaluatedSuite {
            benchmarks: vec!["fir".into()],
            design: Arc::new(AsipDesign::default()),
            evaluations: Arc::new(vec![(
                "fir".into(),
                Evaluation {
                    base_cycles: 200,
                    asip_cycles: 100,
                    speedup: 2.0,
                    fused_chains: 1,
                    extension_area: 0.0,
                },
            )]),
        };
        assert_eq!(one.geomean_speedup(), Some(2.0));
        assert_eq!(one.speedup_of("fir"), Some(2.0));
    }
}
