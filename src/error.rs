//! The unified error type of the [`Explorer`](crate::Explorer) session.
//!
//! Every stage of the exploration pipeline has its own error domain —
//! the front end ([`FrontendError`]), IR validation ([`IrError`]), the
//! profiling simulator ([`SimError`]) and the design-evaluation rerun
//! (also simulator errors, but in a different stage of Figure 1). Before
//! the session API, callers threaded `Box<dyn Error>` through every
//! driver loop; [`ExplorerError`] replaces that with one inspectable
//! enum and `From` conversions from each stage error.

use asip_frontend::FrontendError;
use asip_ir::IrError;
use asip_sim::SimError;
use std::fmt;

/// A failure while decoding a persisted artifact (see
/// [`ArtifactCodec`](crate::artifact::ArtifactCodec) and the
/// [`store`](crate::store) module).
///
/// Decode failures are *expected* inputs for the session's disk tier: a
/// truncated, corrupted or version-skewed store entry must degrade to a
/// recompute, never to a session error. The variants exist so codec
/// users outside the session (tools inspecting a store directly) can
/// tell truncation from tag skew from semantic rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended in the middle of a value.
    Truncated {
        /// Offset at which more bytes were needed.
        at: usize,
    },
    /// A value's leading tag byte did not match the expected type.
    Tag {
        /// Offset of the offending tag byte.
        at: usize,
        /// The tag the decoder expected.
        expected: u8,
        /// The tag actually found.
        found: u8,
    },
    /// The bytes decoded structurally but describe an invalid value
    /// (unknown mnemonic, impossible length, failed re-validation).
    Invalid {
        /// Human-readable description of the rejection.
        detail: String,
    },
    /// Decoding finished with unconsumed bytes left over.
    Trailing {
        /// Number of unread bytes remaining.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { at } => {
                write!(f, "artifact bytes truncated at offset {at}")
            }
            CodecError::Tag {
                at,
                expected,
                found,
            } => write!(
                f,
                "artifact tag mismatch at offset {at}: expected {expected:#04x}, found {found:#04x}"
            ),
            CodecError::Invalid { detail } => write!(f, "invalid artifact payload: {detail}"),
            CodecError::Trailing { remaining } => {
                write!(f, "artifact decoded with {remaining} trailing bytes")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A failure inside the remote artifact protocol (see
/// [`crate::remote`]).
///
/// Like [`CodecError`], these are *expected* inputs for the session: the
/// remote tier maps every one of them to a counted miss so the next
/// tier (or the computation) serves the request — a flaky or absent
/// server degrades throughput, never correctness. The variants exist so
/// the `serve`/`store` binaries and the fault-injection tests can tell
/// connection loss from frame damage from version skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// A socket operation failed (connect refused, reset, closed
    /// mid-frame).
    Io {
        /// Human-readable description of the I/O failure.
        detail: String,
    },
    /// A read or write did not complete within the configured
    /// [`RetryPolicy`](crate::remote::RetryPolicy) timeout.
    Timeout,
    /// A frame failed structural validation (bad magic, length out of
    /// bounds, checksum mismatch, undecodable body).
    Frame {
        /// Human-readable description of the rejection.
        detail: String,
    },
    /// The peer speaks a different protocol version.
    VersionSkew {
        /// The version the peer announced in its frame header.
        peer: u32,
    },
    /// The request was not attempted: the server is marked unhealthy
    /// and the re-probe interval has not elapsed.
    Unavailable,
    /// The server shed the request at its in-flight bound
    /// ([`Response::Overloaded`](crate::remote::Response::Overloaded)).
    /// Retryable — and proof the server is alive, so it never marks the
    /// tier unhealthy.
    Overloaded,
    /// The peer answered with a well-formed frame that violates the
    /// protocol (wrong response kind, mismatched request id) or an
    /// explicit error response.
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Io { detail } => write!(f, "remote i/o failed: {detail}"),
            RemoteError::Timeout => write!(f, "remote request timed out"),
            RemoteError::Frame { detail } => write!(f, "remote frame rejected: {detail}"),
            RemoteError::VersionSkew { peer } => {
                write!(f, "remote protocol version skew: peer speaks v{peer}")
            }
            RemoteError::Unavailable => {
                write!(f, "remote server marked unhealthy (re-probe pending)")
            }
            RemoteError::Overloaded => {
                write!(
                    f,
                    "remote server overloaded (request shed at the in-flight bound)"
                )
            }
            RemoteError::Protocol { detail } => {
                write!(f, "remote protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<std::io::Error> for RemoteError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RemoteError::Timeout,
            _ => RemoteError::Io {
                detail: e.to_string(),
            },
        }
    }
}

/// Any failure raised by an [`Explorer`](crate::Explorer) session.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplorerError {
    /// The requested benchmark is not in the session's registry.
    UnknownBenchmark {
        /// The name that failed to resolve.
        name: String,
    },
    /// [`Explorer::with_remote`](crate::Explorer::with_remote) was
    /// given an address that does not parse as an
    /// [`Endpoint`](crate::remote::Endpoint). Runtime server failures
    /// are *not* errors — they degrade to counted recomputes — but a
    /// malformed address is a configuration bug worth failing loudly.
    InvalidEndpoint {
        /// The address that failed to parse.
        addr: String,
        /// Why it was rejected.
        detail: String,
    },
    /// The compile stage rejected the source (paper step 1).
    Frontend(FrontendError),
    /// IR construction or validation failed outside the front end.
    Ir(IrError),
    /// The profiling simulation failed (paper step 2).
    Sim(SimError),
    /// The design-evaluation rerun failed (paper Figure 1: measuring the
    /// rewritten program on the proposed ASIP).
    Eval(SimError),
    /// A suite-level stage was asked to design for zero benchmarks.
    EmptySuite,
}

impl fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorerError::UnknownBenchmark { name } => {
                write!(
                    f,
                    "unknown benchmark `{name}` (not in the session registry)"
                )
            }
            ExplorerError::InvalidEndpoint { addr, detail } => {
                write!(f, "invalid remote endpoint `{addr}`: {detail}")
            }
            ExplorerError::Frontend(e) => write!(f, "compile stage failed: {e}"),
            ExplorerError::Ir(e) => write!(f, "IR validation failed: {e}"),
            ExplorerError::Sim(e) => write!(f, "profiling simulation failed: {e}"),
            ExplorerError::Eval(e) => write!(f, "design evaluation failed: {e}"),
            ExplorerError::EmptySuite => {
                write!(f, "suite stage requires at least one benchmark")
            }
        }
    }
}

impl std::error::Error for ExplorerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExplorerError::UnknownBenchmark { .. }
            | ExplorerError::InvalidEndpoint { .. }
            | ExplorerError::EmptySuite => None,
            ExplorerError::Frontend(e) => Some(e),
            ExplorerError::Ir(e) => Some(e),
            ExplorerError::Sim(e) | ExplorerError::Eval(e) => Some(e),
        }
    }
}

impl From<FrontendError> for ExplorerError {
    fn from(e: FrontendError) -> Self {
        ExplorerError::Frontend(e)
    }
}

impl From<IrError> for ExplorerError {
    fn from(e: IrError) -> Self {
        ExplorerError::Ir(e)
    }
}

impl From<SimError> for ExplorerError {
    fn from(e: SimError) -> Self {
        ExplorerError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_frontend::error::Pos;

    #[test]
    fn conversions_preserve_stage_identity() {
        let fe = FrontendError::Lex {
            pos: Pos { line: 1, col: 2 },
            detail: "bad char".into(),
        };
        assert!(matches!(
            ExplorerError::from(fe),
            ExplorerError::Frontend(_)
        ));
        assert!(matches!(
            ExplorerError::from(IrError::EmptyProgram),
            ExplorerError::Ir(_)
        ));
        let se = SimError::UnboundInput { name: "x".into() };
        assert!(matches!(ExplorerError::from(se), ExplorerError::Sim(_)));
    }

    #[test]
    fn display_names_the_stage() {
        let e = ExplorerError::UnknownBenchmark {
            name: "nope".into(),
        };
        assert!(e.to_string().contains("`nope`"));
        let e = ExplorerError::Eval(SimError::StepLimit { limit: 7 });
        assert!(e.to_string().contains("design evaluation"));
        let e = ExplorerError::EmptySuite;
        assert!(e.to_string().contains("at least one benchmark"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync>() {}
        assert_bounds::<ExplorerError>();
    }
}
