//! The on-disk artifact store: the persistent tier of the
//! [tier stack](crate::tier) under the [`Explorer`](crate::Explorer)
//! session caches.
//!
//! The in-memory stage caches die with the process, so each of the
//! paper-reproduction binaries would otherwise recompile, re-profile
//! and re-schedule the same twelve benchmarks from scratch.
//! [`ArtifactStore`] serializes stage artifacts to disk keyed by a
//! stable content hash, turning a full reproduction run (many binaries,
//! one pipeline) from N× pipeline cost into ~1×: the first binary
//! populates the store, every later one reads it.
//!
//! # Layout
//!
//! One file per artifact, addressed entirely by content identity, plus
//! a manifest index at the root:
//!
//! ```text
//! <dir>/manifest.tsv
//! <dir>/<stage-name>/<16-hex-digit key>.art
//! ```
//!
//! The key is a [`StableHasher`] (FNV-1a 64) digest of everything the
//! artifact is a pure function of — benchmark *source bytes* (not just
//! the name), data spec, seed, stage name, every relevant configuration
//! and [`FORMAT_VERSION`]. Each file carries a self-describing header
//! (magic, version, stage, payload length, payload checksum) ahead of an
//! [`ArtifactCodec`] payload. The manifest is an *index cache* over the
//! entry files (per-stage byte/entry accounting and precise write
//! times); the directory is always the authority, and a missing or
//! damaged manifest is rebuilt by scan. The full specification lives in
//! `docs/persistence.md`.
//!
//! # Garbage collection
//!
//! Config sweeps accrete entries forever without a bound, so the store
//! garbage-collects on request: [`ArtifactStore::gc`] takes a
//! [`StoreGcConfig`] byte and/or age budget and evicts
//! least-recently-*written* entries first (LRU by mtime) until the
//! store fits. GC is safe against concurrent readers — an entry deleted
//! mid-read degrades to a miss or a checksum rejection, never a wrong
//! hit — and a post-GC run simply recomputes and heals whatever it
//! needs. The `asip-bench` `store` binary (`store gc|stats|verify`)
//! exposes this as a maintenance CLI.
//!
//! # Fallback semantics
//!
//! The store **never fails a session request**. A missing entry is a
//! miss; a truncated, corrupted or version-skewed entry is counted as
//! `corrupt` and treated as a miss; an unwritable directory silently
//! disables write-back. The worst possible outcome of deleting or
//! damaging store files is recomputation — `rm -rf` of the store
//! directory is always safe, including while sessions are running.
//!
//! ```
//! use asip_explorer::artifact::Stage;
//! use asip_explorer::store::{ArtifactStore, StableHasher, StoreGcConfig};
//! use asip_explorer::synth::Evaluation;
//!
//! let dir = std::env::temp_dir().join(format!("asip-store-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&dir);
//!
//! // derive a stable key from the inputs the value depends on
//! let mut hasher = StableHasher::new();
//! hasher.write_str("sewha");
//! hasher.write_u64(1995);
//! let key = hasher.finish();
//!
//! // write-through, then read back
//! let value = Evaluation {
//!     base_cycles: 200, asip_cycles: 100, speedup: 2.0,
//!     fused_chains: 3, extension_area: 512.0,
//! };
//! assert!(store.save(Stage::Evaluate, key, &value));
//! assert_eq!(store.load::<Evaluation>(Stage::Evaluate, key), Some(value));
//! assert_eq!(store.disk_stats(Stage::Evaluate).hits, 1);
//!
//! // a missing key is a counted miss, not an error
//! assert_eq!(store.load::<Evaluation>(Stage::Evaluate, key ^ 1), None);
//! assert_eq!(store.disk_stats(Stage::Evaluate).misses, 1);
//!
//! // a zero byte budget evicts everything; the next run recomputes
//! let report = store.gc(&StoreGcConfig::default().with_max_bytes(0));
//! assert_eq!(report.evicted_entries, 1);
//! assert_eq!(store.snapshot().total_bytes(), 0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::artifact::{ArtifactCodec, Stage, STAGE_COUNT};
use crate::fault::{FaultPlan, FaultSite};
use crate::tier::{ArtifactTier, TierCounters, TierRead, TierStats};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Version of the on-disk artifact format. Bump on **any** change to the
/// codec encodings, the file header, the key derivation, *or the
/// semantics of a pipeline stage* (optimizer heuristics, simulator
/// costs, detector rules, …) — cached artifacts are functions of the
/// stage algorithms, not just their inputs, and a warm store must never
/// replay an old algorithm's output as current. On a bump, old entries
/// fail the header check (and new keys diverge, since the version and
/// the crate version are both hashed into every key), so stale artifacts
/// degrade to recomputes instead of decoding wrongly.
///
/// The manifest is *not* covered by this version: it is an index cache,
/// rebuilt by scan whenever unreadable (it carries its own header line).
///
/// History: v2 — design-stage semantics changed (occurrence-aware
/// coverage reports; selection may improve on the greedy pick via the
/// frontier search) and the design-space stage was added.
/// v3 — key derivation changed: the benchmark's suite tag
/// ([`asip_benchmarks::Suite`]) is folded into every benchmark-keyed
/// hash, so generated-corpus artifacts can never collide with Table-1
/// names.
pub const FORMAT_VERSION: u32 = 3;

/// Magic bytes opening every artifact file.
const MAGIC: [u8; 8] = *b"ASIPART\n";

/// Header line opening every manifest file.
const MANIFEST_HEADER: &str = "asip-manifest v1";

/// Temp files older than this are assumed orphaned by a crashed writer
/// and are swept by [`ArtifactStore::gc`]. Generous: a live writer holds
/// its temp file for the instant between `write` and `rename`, never an
/// hour, so the sweep can never race a healthy put.
const STALE_TMP_MAX_AGE: Duration = Duration::from_secs(3600);

/// A stable (cross-process, cross-platform) FNV-1a 64-bit hasher for
/// deriving store keys.
///
/// `std::hash` is explicitly not guaranteed stable across releases or
/// processes, so store keys are built on this fixed algorithm instead.
/// Variable-length fields are length-prefixed (`write_str`) so adjacent
/// fields can never alias under concatenation.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Feed raw bytes (no length prefix — compose with `write_u64` or
    /// use [`StableHasher::write_str`] for variable-length fields).
    ///
    /// FNV-1a folds each byte into the running state sequentially —
    /// the per-byte loop here is the algorithm itself, not a buffer
    /// copy (the buffer-building paths in [`crate::artifact::Encoder`]
    /// and [`ArtifactStore::save`] all use bulk `extend_from_slice`).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feed an unsigned integer (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feed a `usize` (widened to 64 bits).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write(&[u8::from(v)]);
    }

    /// Feed a float by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feed a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Disk-tier counters: one bundle per stage (or summed across stages by
/// [`ArtifactStore::disk_totals`]). Every [`ArtifactStore::load`]
/// increments exactly one of `hits`, `misses` or `corrupt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Entries found on disk, validated and decoded.
    pub hits: u64,
    /// Probes that found no entry file.
    pub misses: u64,
    /// Artifacts written through to disk.
    pub writes: u64,
    /// Entry files present but rejected (bad magic, version skew, wrong
    /// stage, checksum or decode failure) and recomputed instead.
    pub corrupt: u64,
}

impl DiskStats {
    /// Component-wise sum.
    fn add(self, other: DiskStats) -> DiskStats {
        DiskStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            writes: self.writes + other.writes,
            corrupt: self.corrupt + other.corrupt,
        }
    }
}

// -- the manifest ------------------------------------------------------

/// One store entry as recorded in the [`Manifest`]: its address, its
/// on-disk file size, and its write time (nanoseconds since the Unix
/// epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The pipeline stage the entry belongs to.
    pub stage: Stage,
    /// The content-hash key (the file name without extension).
    pub key: u64,
    /// Whole-file size in bytes (header + payload).
    pub bytes: u64,
    /// Write time in nanoseconds since the Unix epoch. GC evicts
    /// entries in ascending `mtime_ns` order (LRU by write time).
    pub mtime_ns: u128,
}

impl ManifestEntry {
    fn render(&self) -> String {
        format!(
            "{}\t{:016x}\t{}\t{}\n",
            self.stage.name(),
            self.key,
            self.bytes,
            self.mtime_ns
        )
    }

    fn parse(line: &str) -> Option<ManifestEntry> {
        let mut fields = line.split('\t');
        let stage = Stage::from_name(fields.next()?)?;
        let key = u64::from_str_radix(fields.next()?, 16).ok()?;
        let bytes = fields.next()?.parse().ok()?;
        let mtime_ns = fields.next()?.parse().ok()?;
        if fields.next().is_some() {
            return None;
        }
        Some(ManifestEntry {
            stage,
            key,
            bytes,
            mtime_ns,
        })
    }
}

/// An index of every entry in a store directory: per-stage byte and
/// entry accounting plus an mtime-ordered view for GC.
///
/// A manifest is obtained from [`ArtifactStore::snapshot`] (directory
/// scan reconciled with the persisted index — see the [module
/// docs](self)) and persisted at `<dir>/manifest.tsv` by GC. It is an
/// index *cache*: the entry files are authoritative, and a missing,
/// stale or corrupted manifest file is silently rebuilt by scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Every entry, sorted oldest-write-first (then by stage name and
    /// key, so ordering is total and deterministic under mtime ties).
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Sort entries into the canonical eviction order.
    fn canonicalize(&mut self) {
        self.entries.sort_by(|a, b| {
            (a.mtime_ns, a.stage.name(), a.key).cmp(&(b.mtime_ns, b.stage.name(), b.key))
        });
    }

    /// Total on-disk bytes across every entry.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(entry count, byte total)` for one stage.
    pub fn stage_usage(&self, stage: Stage) -> (u64, u64) {
        self.entries
            .iter()
            .filter(|e| e.stage == stage)
            .fold((0, 0), |(n, b), e| (n + 1, b + e.bytes))
    }

    /// Serialize to the manifest file format.
    fn render(&self) -> String {
        let mut out = String::with_capacity(32 + self.entries.len() * 48);
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&e.render());
        }
        out
    }

    /// Parse a manifest file. Any anomaly — wrong header, malformed
    /// line, trailing fields — rejects the whole manifest (`None`), and
    /// the caller rebuilds by scan.
    fn parse(text: &str) -> Option<Manifest> {
        let mut lines = text.lines();
        if lines.next()? != MANIFEST_HEADER {
            return None;
        }
        let mut entries = Vec::new();
        for line in lines {
            entries.push(ManifestEntry::parse(line)?);
        }
        let mut m = Manifest { entries };
        m.canonicalize();
        Some(m)
    }
}

// -- GC ----------------------------------------------------------------

/// Budgets for [`ArtifactStore::gc`]. Unset fields don't constrain;
/// the default config evicts nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreGcConfig {
    /// Keep at most this many on-disk bytes (whole files, headers
    /// included), evicting least-recently-written entries first.
    pub max_bytes: Option<u64>,
    /// Evict every entry written longer than this ago.
    pub max_age: Option<Duration>,
}

impl StoreGcConfig {
    /// Set the byte budget.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Set the age budget.
    pub fn with_max_age(mut self, max_age: Duration) -> Self {
        self.max_age = Some(max_age);
        self
    }
}

/// What one [`ArtifactStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries found by the pre-GC snapshot.
    pub scanned_entries: u64,
    /// Their total on-disk bytes.
    pub scanned_bytes: u64,
    /// Entries evicted (files removed).
    pub evicted_entries: u64,
    /// Bytes those entries occupied.
    pub evicted_bytes: u64,
    /// Entries surviving the pass.
    pub retained_entries: u64,
    /// Bytes they occupy.
    pub retained_bytes: u64,
    /// Evicted-entry counts per stage, indexed by `Stage as usize`.
    pub evicted_per_stage: [u64; STAGE_COUNT],
    /// Orphaned temp files (crashed writers) swept by this pass.
    pub swept_tmp_files: u64,
}

/// What an [`ArtifactStore::verify`] walk found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries whose header, checksum and typed payload all validated.
    pub ok: u64,
    /// Entries rejected at any validation step.
    pub corrupt: u64,
    /// Bytes across every inspected entry.
    pub bytes: u64,
    /// Per-stage ok counts, indexed by `Stage as usize`.
    pub ok_per_stage: [u64; STAGE_COUNT],
    /// Per-stage corrupt counts, indexed by `Stage as usize`.
    pub corrupt_per_stage: [u64; STAGE_COUNT],
}

/// Session-local knowledge of one on-disk entry (size and precise write
/// time), backing the cheap per-stage occupancy stats.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    bytes: u64,
    mtime_ns: u128,
}

/// A persistent, content-addressed artifact store rooted at one
/// directory. See the [module docs](self) for layout, GC and fallback
/// semantics, and [`Explorer::with_store`](crate::Explorer::with_store)
/// for the session integration. In the [tier stack](crate::tier) it is
/// the canonical persistent [`ArtifactTier`] (`name() == "disk"`).
///
/// Multiple stores (in one process or many) may share a directory:
/// writes are atomic (temp file + rename), and since keys are content
/// hashes, concurrent writers of the same key write identical bytes.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    counters: TierCounters,
    gc_evicted: [AtomicU64; STAGE_COUNT],
    /// Lazy session-local index of the directory (sizes + precise write
    /// times), populated by the first occupancy query and kept in sync
    /// by this session's saves and GC passes. Other processes' writes
    /// only appear after the next [`ArtifactStore::snapshot`].
    index: Mutex<Option<HashMap<(Stage, u64), EntryMeta>>>,
    /// Fast-path guard for the fault-injection seam: checked with one
    /// relaxed load before touching the plan mutex, so an unarmed store
    /// pays a single predictable branch per operation.
    faults_armed: AtomicBool,
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl ArtifactStore {
    /// A store rooted at `dir`. No I/O happens here: the directory is
    /// created lazily on first write, and a missing directory simply
    /// means every load misses.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            dir: dir.into(),
            counters: TierCounters::default(),
            gc_evicted: Default::default(),
            index: Mutex::new(None),
            faults_armed: AtomicBool::new(false),
            faults: Mutex::new(None),
        }
    }

    /// Arm a [`FaultPlan`]: subsequent reads, writes and manifest
    /// flushes consult the plan and may fail deliberately (see
    /// [`crate::fault`]). Chaos-testing seam — never armed in
    /// production.
    pub fn arm_faults(&self, plan: Arc<FaultPlan>) {
        *crate::tier::lock(&self.faults) = Some(plan);
        self.faults_armed.store(true, Ordering::Release);
    }

    /// Remove any armed [`FaultPlan`]; the store returns to normal
    /// operation.
    pub fn disarm_faults(&self) {
        self.faults_armed.store(false, Ordering::Release);
        *crate::tier::lock(&self.faults) = None;
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        crate::tier::lock(&self.faults).clone()
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest index file (`<dir>/manifest.tsv`).
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.tsv")
    }

    /// The file an artifact lives in: `<dir>/<stage>/<key as 16 hex
    /// digits>.art`. Exposed for inspection and tests; entries may be
    /// deleted (or the whole directory removed) at any time.
    pub fn entry_path(&self, stage: Stage, key: u64) -> PathBuf {
        self.dir.join(stage.name()).join(format!("{key:016x}.art"))
    }

    /// Read and decode the artifact stored under `(stage, key)`.
    ///
    /// Returns `None` — counting a miss — when no entry file exists, and
    /// `None` — counting `corrupt` — when a file exists but fails any
    /// validation step (magic, version, stage, length, checksum, codec
    /// decode). Never errors and never panics on hostile bytes.
    pub fn load<V: ArtifactCodec>(&self, stage: Stage, key: u64) -> Option<V> {
        match self.get(stage, key) {
            TierRead::Hit(payload) => match V::from_bytes(&payload) {
                Ok(v) => Some(v),
                Err(_) => {
                    self.mark_corrupt(stage, key);
                    None
                }
            },
            TierRead::Miss | TierRead::Corrupt => None,
        }
    }

    /// Encode `value` and write it under `(stage, key)`, atomically
    /// (temp file + rename, so readers never observe a partial entry).
    ///
    /// Returns whether the write landed; failures (unwritable directory,
    /// disk full) are swallowed — persistence is an optimization, never
    /// a correctness requirement.
    pub fn save<V: ArtifactCodec>(&self, stage: Stage, key: u64, value: &V) -> bool {
        self.put(stage, key, &value.to_bytes())
    }

    /// Snapshot one stage's disk counters.
    pub fn disk_stats(&self, stage: Stage) -> DiskStats {
        let s = self.counters.snapshot(stage);
        DiskStats {
            hits: s.hits,
            misses: s.misses,
            writes: s.writes,
            corrupt: s.corrupt,
        }
    }

    /// Disk counters summed over every stage.
    pub fn disk_totals(&self) -> DiskStats {
        Stage::all()
            .into_iter()
            .fold(DiskStats::default(), |acc, s| acc.add(self.disk_stats(s)))
    }

    /// Entries this session's GC passes evicted for one stage.
    pub fn gc_evictions(&self, stage: Stage) -> u64 {
        self.gc_evicted[stage as usize].load(Ordering::Relaxed)
    }

    // -- manifest, GC, verify ------------------------------------------

    /// Index the store: scan the stage directories (the authority on
    /// which entries exist and how big they are), then reconcile write
    /// times against the persisted manifest and this session's own
    /// writes, which both record sub-filesystem-granularity timestamps.
    /// A missing or corrupted manifest file degrades to the pure scan.
    pub fn snapshot(&self) -> Manifest {
        let mut scan = self.scan();
        let persisted: HashMap<(Stage, u64), ManifestEntry> =
            fs::read_to_string(self.manifest_path())
                .ok()
                .and_then(|text| Manifest::parse(&text))
                .map(|m| {
                    m.entries
                        .into_iter()
                        .map(|e| ((e.stage, e.key), e))
                        .collect()
                })
                .unwrap_or_default();
        {
            let index = crate::tier::lock(&self.index);
            for e in &mut scan.entries {
                // Prefer this session's own record, then the manifest —
                // but only while the file size still matches (a size
                // change means another process rewrote the entry).
                if let Some(meta) = index
                    .as_ref()
                    .and_then(|ix| ix.get(&(e.stage, e.key)))
                    .filter(|m| m.bytes == e.bytes)
                {
                    e.mtime_ns = meta.mtime_ns;
                } else if let Some(p) = persisted
                    .get(&(e.stage, e.key))
                    .filter(|p| p.bytes == e.bytes)
                {
                    e.mtime_ns = p.mtime_ns;
                }
            }
        }
        scan.canonicalize();
        scan
    }

    /// Rebuild the index purely from the directory (file sizes and
    /// filesystem mtimes). Unknown files are ignored.
    fn scan(&self) -> Manifest {
        let mut entries = Vec::new();
        for stage in Stage::all() {
            let Ok(dir) = fs::read_dir(self.dir.join(stage.name())) else {
                continue;
            };
            for file in dir.flatten() {
                let path = file.path();
                if path.extension().is_none_or(|e| e != "art") {
                    continue;
                }
                let Some(key) = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                else {
                    continue;
                };
                let Ok(meta) = file.metadata() else {
                    continue;
                };
                entries.push(ManifestEntry {
                    stage,
                    key,
                    bytes: meta.len(),
                    mtime_ns: meta
                        .modified()
                        .ok()
                        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                        .map(|d| d.as_nanos())
                        .unwrap_or(0),
                });
            }
        }
        let mut m = Manifest { entries };
        m.canonicalize();
        m
    }

    /// Persist a manifest atomically (temp file + rename). Failures are
    /// swallowed: the manifest is an index cache, and the next reader
    /// rebuilds by scan.
    fn write_manifest(&self, manifest: &Manifest) -> bool {
        let path = self.manifest_path();
        if fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        if let Some(plan) = self.fault_plan() {
            // An injected manifest corruption writes a torn + scribbled
            // rendering; the next reader must reject it wholesale and
            // rebuild by scan.
            if plan.roll(FaultSite::ManifestCorrupt) {
                let mut text = manifest.render().into_bytes();
                let cut = plan.draw(FaultSite::ManifestCorrupt, text.len() as u64 + 1) as usize;
                text.truncate(cut);
                text.extend_from_slice(b"\xff\xfegarbage\tnot a manifest line");
                let tmp = unique_tmp(&path);
                if fs::write(&tmp, &text).is_err() || fs::rename(&tmp, &path).is_err() {
                    fs::remove_file(&tmp).ok();
                }
                return false;
            }
        }
        let tmp = unique_tmp(&path);
        if fs::write(&tmp, manifest.render()).is_err() {
            fs::remove_file(&tmp).ok();
            return false;
        }
        if fs::rename(&tmp, &path).is_err() {
            fs::remove_file(&tmp).ok();
            return false;
        }
        true
    }

    /// Garbage-collect the store against `config`: evict every entry
    /// older than `max_age`, then least-recently-written entries until
    /// at most `max_bytes` remain, and atomically rewrite the manifest
    /// to the retained set.
    ///
    /// GC never blocks or corrupts concurrent readers — a removed entry
    /// degrades to a miss (or a checksum rejection) and is recomputed —
    /// and like every store operation it cannot fail: undeletable files
    /// are simply retained.
    pub fn gc(&self, config: &StoreGcConfig) -> GcReport {
        let manifest = self.snapshot();
        let mut report = GcReport {
            scanned_entries: manifest.len() as u64,
            scanned_bytes: manifest.total_bytes(),
            ..GcReport::default()
        };
        let now_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let cutoff_ns = config
            .max_age
            .map(|age| now_ns.saturating_sub(age.as_nanos()));

        let mut remaining_bytes = report.scanned_bytes;
        let mut retained = Vec::with_capacity(manifest.len());
        // entries are canonically sorted oldest-first: walk them in
        // order, evicting while a budget is still exceeded — the oldest
        // entries go first, and eviction stops the moment the remainder
        // fits
        for e in &manifest.entries {
            let too_old = cutoff_ns.is_some_and(|cut| e.mtime_ns < cut);
            let over_budget = config.max_bytes.is_some_and(|max| remaining_bytes > max);
            if (too_old || over_budget) && self.evict_entry(e) {
                remaining_bytes -= e.bytes;
                report.evicted_entries += 1;
                report.evicted_bytes += e.bytes;
                report.evicted_per_stage[e.stage as usize] += 1;
                self.gc_evicted[e.stage as usize].fetch_add(1, Ordering::Relaxed);
            } else {
                retained.push(*e);
            }
        }
        let mut retained = Manifest { entries: retained };
        retained.canonicalize();
        report.retained_entries = retained.len() as u64;
        report.retained_bytes = retained.total_bytes();
        report.swept_tmp_files = self.sweep_stale_tmp_files(now_ns);
        self.write_manifest(&retained);
        // Reconcile the session-local index by *removing* the evicted
        // keys rather than replacing it wholesale — a save landing on
        // another thread between our snapshot and here must keep its
        // (newer) record.
        {
            let mut index = crate::tier::lock(&self.index);
            if let Some(ix) = index.as_mut() {
                ix.retain(|&(stage, key), _| self.entry_path(stage, key).is_file());
                for e in &retained.entries {
                    ix.entry((e.stage, e.key)).or_insert(EntryMeta {
                        bytes: e.bytes,
                        mtime_ns: e.mtime_ns,
                    });
                }
            }
        }
        report
    }

    /// Remove temp files orphaned by crashed writers. Live writers hold
    /// their temp file only for the instant between write and rename, so
    /// anything older than [`STALE_TMP_MAX_AGE`] is a leftover from a
    /// process that died mid-put; without this sweep a crash-looping
    /// writer leaks unreferenced files forever (they are invisible to
    /// [`ArtifactStore::snapshot`], which only indexes `.art` files).
    fn sweep_stale_tmp_files(&self, now_ns: u128) -> u64 {
        let mut swept = 0;
        let mut dirs: Vec<PathBuf> = Stage::all()
            .into_iter()
            .map(|s| self.dir.join(s.name()))
            .collect();
        dirs.push(self.dir.clone());
        for dir in dirs {
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for file in entries.flatten() {
                let path = file.path();
                let is_tmp = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.contains(".tmp."));
                if !is_tmp {
                    continue;
                }
                let age_ns = file
                    .metadata()
                    .ok()
                    .and_then(|m| m.modified().ok())
                    .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                    .map(|d| now_ns.saturating_sub(d.as_nanos()))
                    .unwrap_or(0);
                if age_ns > STALE_TMP_MAX_AGE.as_nanos() && fs::remove_file(&path).is_ok() {
                    swept += 1;
                }
            }
        }
        swept
    }

    fn evict_entry(&self, e: &ManifestEntry) -> bool {
        match fs::remove_file(self.entry_path(e.stage, e.key)) {
            Ok(()) => true,
            // Already gone (another GC raced us): the bytes are freed
            // either way, so treat it as evicted.
            Err(err) => err.kind() == std::io::ErrorKind::NotFound,
        }
    }

    /// Walk every entry and validate it end to end: header, checksum,
    /// and a full typed decode of the payload against its stage's
    /// artifact type. Counters are untouched — this is a maintenance
    /// walk, not the request path — and nothing is deleted; pair with
    /// [`ArtifactStore::gc`] or plain `rm` to act on the report.
    ///
    /// An entry that disappears between the snapshot and its read was
    /// deleted by a concurrent session (GC, healing) — that is normal
    /// operation, not corruption, and is skipped entirely.
    pub fn verify(&self) -> VerifyReport {
        let manifest = self.snapshot();
        let mut report = VerifyReport::default();
        for e in &manifest.entries {
            let bytes = match fs::read(self.entry_path(e.stage, e.key)) {
                Ok(bytes) => bytes,
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => continue,
                Err(_) => {
                    report.corrupt += 1;
                    report.corrupt_per_stage[e.stage as usize] += 1;
                    report.bytes += e.bytes;
                    continue;
                }
            };
            report.bytes += bytes.len() as u64;
            let valid = validate_entry(&bytes, e.stage)
                .is_some_and(|payload| decode_stage_payload(e.stage, payload));
            if valid {
                report.ok += 1;
                report.ok_per_stage[e.stage as usize] += 1;
            } else {
                report.corrupt += 1;
                report.corrupt_per_stage[e.stage as usize] += 1;
            }
        }
        report
    }

    fn index_insert(&self, stage: Stage, key: u64, bytes: u64) {
        let mut index = crate::tier::lock(&self.index);
        if let Some(ix) = index.as_mut() {
            let mtime_ns = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            ix.insert((stage, key), EntryMeta { bytes, mtime_ns });
        }
    }

    fn index_remove(&self, stage: Stage, key: u64) {
        let mut index = crate::tier::lock(&self.index);
        if let Some(ix) = index.as_mut() {
            ix.remove(&(stage, key));
        }
    }

    /// Per-stage `(entries, bytes)` from the session-local index,
    /// populating it by snapshot on first use. The snapshot happens
    /// outside the index lock (snapshot itself consults the index for
    /// mtime overlay), so a racing initializer just discards its scan.
    fn stage_usage(&self, stage: Stage) -> (u64, u64) {
        if crate::tier::lock(&self.index).is_none() {
            let snapshot = self.snapshot();
            let fresh: HashMap<(Stage, u64), EntryMeta> = snapshot
                .entries
                .iter()
                .map(|e| {
                    (
                        (e.stage, e.key),
                        EntryMeta {
                            bytes: e.bytes,
                            mtime_ns: e.mtime_ns,
                        },
                    )
                })
                .collect();
            crate::tier::lock(&self.index).get_or_insert(fresh);
        }
        crate::tier::lock(&self.index)
            .as_ref()
            .map(|ix| {
                ix.iter()
                    .filter(|((s, _), _)| *s == stage)
                    .fold((0, 0), |(n, b), (_, m)| (n + 1, b + m.bytes))
            })
            .unwrap_or((0, 0))
    }
}

impl ArtifactTier for ArtifactStore {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn get(&self, stage: Stage, key: u64) -> TierRead {
        if let Some(plan) = self.fault_plan() {
            // An injected read I/O error degrades exactly like a real
            // one below: a counted miss.
            if plan.roll(FaultSite::DiskRead) {
                self.counters.count_miss(stage);
                return TierRead::Miss;
            }
        }
        let bytes = match fs::read(self.entry_path(stage, key)) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.counters.count_miss(stage);
                return TierRead::Miss;
            }
        };
        match validate_entry(&bytes, stage) {
            Some(payload) => {
                self.counters.count_hit(stage);
                TierRead::Hit(payload.to_vec())
            }
            None => {
                self.counters.count_corrupt(stage);
                TierRead::Corrupt
            }
        }
    }

    fn put(&self, stage: Stage, key: u64, payload: &[u8]) -> bool {
        let path = self.entry_path(stage, key);
        let Some(parent) = path.parent() else {
            return false;
        };
        if fs::create_dir_all(parent).is_err() {
            return false;
        }
        let mut bytes = Vec::with_capacity(payload.len() + 64);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let stage_name = stage.name().as_bytes();
        bytes.push(stage_name.len() as u8);
        bytes.extend_from_slice(stage_name);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        if let Some(plan) = self.fault_plan() {
            // An injected write error fails before any byte lands.
            if plan.roll(FaultSite::DiskWrite) {
                return false;
            }
            // A torn write lands a truncated prefix of the entry at the
            // final path — the on-disk state a crash mid-write leaves
            // behind. Readers must reject it (checksum/length) and heal.
            if plan.roll(FaultSite::TornWrite) {
                let cut = plan.draw(FaultSite::TornWrite, bytes.len() as u64) as usize;
                let tmp = unique_tmp(&path);
                if fs::write(&tmp, &bytes[..cut]).is_err() || fs::rename(&tmp, &path).is_err() {
                    fs::remove_file(&tmp).ok();
                }
                return false;
            }
        }

        let tmp = unique_tmp(&path);
        if fs::write(&tmp, &bytes).is_err() {
            fs::remove_file(&tmp).ok();
            return false;
        }
        if fs::rename(&tmp, &path).is_err() {
            fs::remove_file(&tmp).ok();
            return false;
        }
        self.counters.count_write(stage);
        self.index_insert(stage, key, bytes.len() as u64);
        true
    }

    fn contains(&self, stage: Stage, key: u64) -> bool {
        self.entry_path(stage, key).is_file()
    }

    fn stats(&self, stage: Stage) -> TierStats {
        let (entries, bytes) = self.stage_usage(stage);
        TierStats {
            entries,
            bytes,
            ..self.counters.snapshot(stage)
        }
    }

    fn persistent(&self) -> bool {
        true
    }

    fn mark_corrupt(&self, stage: Stage, key: u64) {
        self.counters.demote_hit(stage);
        fs::remove_file(self.entry_path(stage, key)).ok();
        self.index_remove(stage, key);
    }

    fn reset_counters(&self) {
        self.counters.reset();
        for c in &self.gc_evicted {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A process-unique temp path next to `path`. The pid alone is not
/// enough, because two sessions (or threads) in one process may race on
/// the same key — a shared tmp path would let one writer rename the
/// other's half-written file into place.
fn unique_tmp(path: &Path) -> PathBuf {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// FNV-1a 64 over the payload (the same algorithm as [`StableHasher`],
/// kept separate so the checksum is independent of key derivation).
pub(crate) fn checksum(payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(payload);
    h.finish()
}

/// Validate a complete entry file's framing — magic, version, stage
/// name, payload length, checksum — and return the payload slice. Any
/// failure returns `None`; the caller counts it as `corrupt`. Typed
/// payload decoding is the next layer up (the tier stack or
/// [`ArtifactStore::load`]).
fn validate_entry(bytes: &[u8], stage: Stage) -> Option<&[u8]> {
    let rest = bytes.strip_prefix(&MAGIC)?;
    let (version, rest) = split_u32(rest)?;
    if version != FORMAT_VERSION {
        return None;
    }
    let (&name_len, rest) = rest.split_first()?;
    let name_len = usize::from(name_len);
    if rest.len() < name_len {
        return None;
    }
    let (name, rest) = rest.split_at(name_len);
    if name != stage.name().as_bytes() {
        return None;
    }
    let (payload_len, rest) = split_u64(rest)?;
    let (expected_sum, payload) = split_u64(rest)?;
    if payload.len() as u64 != payload_len || checksum(payload) != expected_sum {
        return None;
    }
    Some(payload)
}

/// Typed-decode one validated payload against the artifact type of
/// `stage` (decoded and dropped immediately — verification never holds
/// more than one payload's decode in memory).
fn decode_stage_payload(stage: Stage, payload: &[u8]) -> bool {
    match stage {
        Stage::Compile => asip_ir::Program::from_bytes(payload).is_ok(),
        Stage::Profile => asip_sim::Profile::from_bytes(payload).is_ok(),
        Stage::Schedule => asip_opt::ScheduleGraph::from_bytes(payload).is_ok(),
        Stage::Analyze => asip_chains::SequenceReport::from_bytes(payload).is_ok(),
        Stage::Design | Stage::DesignSuite => asip_synth::AsipDesign::from_bytes(payload).is_ok(),
        Stage::Evaluate => asip_synth::Evaluation::from_bytes(payload).is_ok(),
        Stage::EvaluateSuite => {
            Vec::<(String, asip_synth::Evaluation)>::from_bytes(payload).is_ok()
        }
        Stage::DesignSpace => asip_synth::DesignSpace::from_bytes(payload).is_ok(),
    }
}

fn split_u32(bytes: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<4>()?;
    Some((u32::from_le_bytes(*head), rest))
}

fn split_u64(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<8>()?;
    Some((u64::from_le_bytes(*head), rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("asip-store-unit-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        ArtifactStore::open(dir)
    }

    #[test]
    fn stable_hasher_is_deterministic_and_length_prefixed() {
        let digest = |f: &dyn Fn(&mut StableHasher)| {
            let mut h = StableHasher::new();
            f(&mut h);
            h.finish()
        };
        assert_eq!(
            digest(&|h| h.write_str("abc")),
            digest(&|h| h.write_str("abc"))
        );
        // "ab" + "c" must not alias "a" + "bc"
        assert_ne!(
            digest(&|h| {
                h.write_str("ab");
                h.write_str("c");
            }),
            digest(&|h| {
                h.write_str("a");
                h.write_str("bc");
            })
        );
        // the canonical FNV-1a 64 test vector
        let mut h = StableHasher::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn save_load_round_trip_with_counters() {
        let store = temp_store("roundtrip");
        assert_eq!(store.load::<u64>(Stage::Compile, 1), None);
        assert_eq!(store.disk_stats(Stage::Compile).misses, 1);

        assert!(store.save(Stage::Compile, 1, &42u64));
        assert_eq!(store.load::<u64>(Stage::Compile, 1), Some(42));
        let stats = store.disk_stats(Stage::Compile);
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        // other stages are unaffected; totals sum
        assert_eq!(store.disk_stats(Stage::Profile), DiskStats::default());
        assert_eq!(store.disk_totals().hits, 1);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn keys_and_stages_address_distinct_entries() {
        let store = temp_store("address");
        store.save(Stage::Compile, 7, &1u64);
        store.save(Stage::Compile, 8, &2u64);
        store.save(Stage::Profile, 7, &3u64);
        assert_eq!(store.load::<u64>(Stage::Compile, 7), Some(1));
        assert_eq!(store.load::<u64>(Stage::Compile, 8), Some(2));
        assert_eq!(store.load::<u64>(Stage::Profile, 7), Some(3));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupted_entries_count_corrupt_and_miss_to_none() {
        let store = temp_store("corrupt");
        store.save(Stage::Analyze, 5, &String::from("report"));
        let path = store.entry_path(Stage::Analyze, 5);

        // flip a payload byte: checksum rejects
        let mut bytes = fs::read(&path).expect("entry exists");
        *bytes.last_mut().expect("nonempty") ^= 0xFF;
        fs::write(&path, &bytes).expect("writable");
        assert_eq!(store.load::<String>(Stage::Analyze, 5), None);
        assert_eq!(store.disk_stats(Stage::Analyze).corrupt, 1);

        // truncate mid-header
        fs::write(&path, &bytes[..10]).expect("writable");
        assert_eq!(store.load::<String>(Stage::Analyze, 5), None);

        // version skew (bytes 8..12) rejects even with a valid payload
        store.save(Stage::Analyze, 5, &String::from("report"));
        let mut bytes = fs::read(&path).expect("entry exists");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).expect("writable");
        assert_eq!(store.load::<String>(Stage::Analyze, 5), None);
        assert_eq!(store.disk_stats(Stage::Analyze).corrupt, 3);

        // a wrong-stage read of a valid entry is also rejected
        store.save(Stage::Analyze, 5, &String::from("report"));
        let copy = store.entry_path(Stage::Design, 5);
        fs::create_dir_all(copy.parent().expect("has parent")).expect("mkdir");
        fs::copy(&path, &copy).expect("copies");
        assert_eq!(store.load::<String>(Stage::Design, 5), None);
        assert_eq!(store.disk_stats(Stage::Design).corrupt, 1);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn typed_decode_failure_demotes_the_hit_and_heals() {
        let store = temp_store("demote");
        store.save(Stage::Compile, 9, &String::from("not a u64"));
        // framing is valid, the typed decode is not
        assert_eq!(store.load::<u64>(Stage::Compile, 9), None);
        let stats = store.disk_stats(Stage::Compile);
        assert_eq!((stats.hits, stats.corrupt), (0, 1), "hit was demoted");
        assert!(
            !store.contains(Stage::Compile, 9),
            "undecodable entry removed so the rewrite is not shadowed"
        );
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn unwritable_directory_degrades_to_no_store() {
        // a path under a *file* can never be created
        let blocker =
            std::env::temp_dir().join(format!("asip-store-blocker-{}", std::process::id()));
        fs::write(&blocker, b"file, not dir").expect("temp writable");
        let store = ArtifactStore::open(blocker.join("store"));
        assert!(!store.save(Stage::Compile, 1, &1u64));
        assert_eq!(store.disk_totals().writes, 0);
        assert_eq!(store.load::<u64>(Stage::Compile, 1), None);
        // maintenance ops are equally unbothered
        assert_eq!(store.snapshot(), Manifest::default());
        assert_eq!(store.gc(&StoreGcConfig::default()).scanned_entries, 0);
        fs::remove_file(&blocker).ok();
    }

    #[test]
    fn reset_counters_keeps_entries() {
        let store = temp_store("reset");
        store.save(Stage::Compile, 3, &9u64);
        store.load::<u64>(Stage::Compile, 3);
        store.reset_counters();
        assert_eq!(store.disk_totals(), DiskStats::default());
        assert_eq!(store.load::<u64>(Stage::Compile, 3), Some(9));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let m = Manifest {
            entries: vec![
                ManifestEntry {
                    stage: Stage::Profile,
                    key: 0xdead_beef,
                    bytes: 128,
                    mtime_ns: 1_000,
                },
                ManifestEntry {
                    stage: Stage::Compile,
                    key: 1,
                    bytes: 64,
                    mtime_ns: 500,
                },
            ],
        };
        let parsed = Manifest::parse(&m.render()).expect("round-trips");
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed.entries[0].stage,
            Stage::Compile,
            "parse canonicalizes oldest-first"
        );
        assert_eq!(parsed.total_bytes(), 192);
        assert_eq!(parsed.stage_usage(Stage::Profile), (1, 128));

        assert!(Manifest::parse("wrong header\n").is_none());
        assert!(
            Manifest::parse("asip-manifest v1\ncompile\tzz\t1\t2\n").is_none(),
            "malformed key rejects the manifest"
        );
        assert!(
            Manifest::parse("asip-manifest v1\nnot-a-stage\t0\t1\t2\n").is_none(),
            "unknown stage rejects the manifest"
        );
    }

    #[test]
    fn snapshot_scans_and_gc_respects_byte_budget_oldest_first() {
        let store = temp_store("gc-bytes");
        store.save(Stage::Compile, 1, &1u64);
        std::thread::sleep(std::time::Duration::from_millis(30));
        store.save(Stage::Profile, 2, &2u64);
        std::thread::sleep(std::time::Duration::from_millis(30));
        store.save(Stage::Schedule, 3, &3u64);

        let m = store.snapshot();
        assert_eq!(m.len(), 3);
        assert_eq!(m.entries[0].key, 1, "snapshot is mtime-ordered");
        // budget for exactly the newest entry: the two oldest go
        let entry_bytes = m.entries[2].bytes;
        assert!(entry_bytes > 0);
        let report = store.gc(&StoreGcConfig::default().with_max_bytes(entry_bytes));
        assert_eq!(report.scanned_entries, 3);
        assert_eq!(report.evicted_entries, 2);
        assert_eq!(report.retained_entries, 1);
        assert!(report.retained_bytes <= entry_bytes);
        assert_eq!(report.evicted_per_stage[Stage::Compile as usize], 1);
        assert_eq!(report.evicted_per_stage[Stage::Profile as usize], 1);
        assert!(!store.contains(Stage::Compile, 1));
        assert!(!store.contains(Stage::Profile, 2));
        assert!(store.contains(Stage::Schedule, 3), "newest survives");
        assert_eq!(store.gc_evictions(Stage::Compile), 1);

        // the manifest was rewritten to the retained set
        let m = store.snapshot();
        assert_eq!(m.len(), 1);
        assert_eq!(m.entries[0].key, 3);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_age_budget_and_unbounded_config_are_honored() {
        let store = temp_store("gc-age");
        store.save(Stage::Compile, 1, &1u64);
        let unbounded = store.gc(&StoreGcConfig::default());
        assert_eq!(unbounded.evicted_entries, 0, "no budgets, no evictions");

        // everything is older than a zero age budget
        std::thread::sleep(std::time::Duration::from_millis(5));
        let report = store.gc(&StoreGcConfig::default().with_max_age(Duration::ZERO));
        assert_eq!(report.evicted_entries, 1);
        assert_eq!(store.snapshot().len(), 0);

        // a generous age budget keeps fresh entries
        store.save(Stage::Compile, 2, &2u64);
        let report = store.gc(&StoreGcConfig::default().with_max_age(Duration::from_secs(3600)));
        assert_eq!(report.evicted_entries, 0);
        assert_eq!(report.retained_entries, 1);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn manifest_loss_or_damage_rebuilds_by_scan() {
        let store = temp_store("manifest-loss");
        store.save(Stage::Compile, 1, &1u64);
        store.save(Stage::Profile, 2, &2u64);
        store.gc(&StoreGcConfig::default()); // writes the manifest
        assert!(store.manifest_path().is_file());

        // delete the manifest: snapshot still sees both entries
        fs::remove_file(store.manifest_path()).expect("removable");
        assert_eq!(store.snapshot().len(), 2);

        // corrupt the manifest: ignored, rebuilt by scan
        fs::write(store.manifest_path(), b"garbage\nmore garbage").expect("writable");
        assert_eq!(store.snapshot().len(), 2);
        let report = store.gc(&StoreGcConfig::default().with_max_bytes(0));
        assert_eq!(report.evicted_entries, 2);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn verify_reports_valid_and_corrupt_entries() {
        let store = temp_store("verify");
        let reg = asip_benchmarks::registry();
        let program = reg
            .find("fir")
            .expect("built-in")
            .compile()
            .expect("compiles");
        store.save(Stage::Compile, 1, &program);
        store.save(
            Stage::Evaluate,
            2,
            &asip_synth::Evaluation {
                base_cycles: 2,
                asip_cycles: 1,
                speedup: 2.0,
                fused_chains: 0,
                extension_area: 0.0,
            },
        );
        let clean = store.verify();
        assert_eq!((clean.ok, clean.corrupt), (2, 0));
        assert_eq!(clean.ok_per_stage[Stage::Compile as usize], 1);
        assert!(clean.bytes > 0);

        // payload damage and type confusion are both caught
        let path = store.entry_path(Stage::Compile, 1);
        let mut bytes = fs::read(&path).expect("readable");
        *bytes.last_mut().expect("nonempty") ^= 0xFF;
        fs::write(&path, &bytes).expect("writable");
        // a structurally valid file holding the wrong payload type
        store.save(Stage::Profile, 3, &String::from("not a profile"));
        let dirty = store.verify();
        assert_eq!((dirty.ok, dirty.corrupt), (1, 2));
        assert_eq!(dirty.corrupt_per_stage[Stage::Profile as usize], 1);
        fs::remove_dir_all(store.dir()).ok();
    }
}
