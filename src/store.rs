//! The on-disk artifact store: a persistent, content-addressed tier
//! under the [`Explorer`](crate::Explorer) session caches.
//!
//! The in-memory stage caches die with the process, so each of the
//! paper-reproduction binaries would otherwise recompile, re-profile
//! and re-schedule the same twelve benchmarks from scratch.
//! [`ArtifactStore`] serializes stage artifacts to disk keyed by a
//! stable content hash, turning a full reproduction run (many binaries,
//! one pipeline) from N× pipeline cost into ~1×: the first binary
//! populates the store, every later one reads it.
//!
//! # Layout
//!
//! One file per artifact, addressed entirely by content identity:
//!
//! ```text
//! <dir>/<stage-name>/<16-hex-digit key>.art
//! ```
//!
//! The key is a [`StableHasher`] (FNV-1a 64) digest of everything the
//! artifact is a pure function of — benchmark *source bytes* (not just
//! the name), data spec, seed, stage name, every relevant configuration
//! and [`FORMAT_VERSION`]. Each file carries a self-describing header
//! (magic, version, stage, payload length, payload checksum) ahead of an
//! [`ArtifactCodec`] payload. The full specification lives in
//! `docs/persistence.md`.
//!
//! # Fallback semantics
//!
//! The store **never fails a session request**. A missing entry is a
//! miss; a truncated, corrupted or version-skewed entry is counted as
//! `corrupt` and treated as a miss; an unwritable directory silently
//! disables write-back. The worst possible outcome of deleting or
//! damaging store files is recomputation — `rm -rf` of the store
//! directory is always safe, including while sessions are running.
//!
//! ```
//! use asip_explorer::artifact::Stage;
//! use asip_explorer::store::{ArtifactStore, StableHasher};
//! use asip_explorer::synth::Evaluation;
//!
//! let dir = std::env::temp_dir().join(format!("asip-store-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&dir);
//!
//! // derive a stable key from the inputs the value depends on
//! let mut hasher = StableHasher::new();
//! hasher.write_str("sewha");
//! hasher.write_u64(1995);
//! let key = hasher.finish();
//!
//! // write-through, then read back
//! let value = Evaluation {
//!     base_cycles: 200, asip_cycles: 100, speedup: 2.0,
//!     fused_chains: 3, extension_area: 512.0,
//! };
//! assert!(store.save(Stage::Evaluate, key, &value));
//! assert_eq!(store.load::<Evaluation>(Stage::Evaluate, key), Some(value));
//! assert_eq!(store.stats(Stage::Evaluate).hits, 1);
//!
//! // a missing key is a counted miss, not an error
//! assert_eq!(store.load::<Evaluation>(Stage::Evaluate, key ^ 1), None);
//! assert_eq!(store.stats(Stage::Evaluate).misses, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::artifact::{ArtifactCodec, Stage};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the on-disk artifact format. Bump on **any** change to the
/// codec encodings, the file header, the key derivation, *or the
/// semantics of a pipeline stage* (optimizer heuristics, simulator
/// costs, detector rules, …) — cached artifacts are functions of the
/// stage algorithms, not just their inputs, and a warm store must never
/// replay an old algorithm's output as current. On a bump, old entries
/// fail the header check (and new keys diverge, since the version and
/// the crate version are both hashed into every key), so stale artifacts
/// degrade to recomputes instead of decoding wrongly.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every artifact file.
const MAGIC: [u8; 8] = *b"ASIPART\n";

/// A stable (cross-process, cross-platform) FNV-1a 64-bit hasher for
/// deriving store keys.
///
/// `std::hash` is explicitly not guaranteed stable across releases or
/// processes, so store keys are built on this fixed algorithm instead.
/// Variable-length fields are length-prefixed (`write_str`) so adjacent
/// fields can never alias under concatenation.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Feed raw bytes (no length prefix — compose with `write_u64` or
    /// use [`StableHasher::write_str`] for variable-length fields).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feed an unsigned integer (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feed a `usize` (widened to 64 bits).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write(&[u8::from(v)]);
    }

    /// Feed a float by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feed a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Disk-tier counters: one bundle per stage (or summed across stages by
/// [`ArtifactStore::totals`]). Every [`ArtifactStore::load`] increments
/// exactly one of `hits`, `misses` or `corrupt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Entries found on disk, validated and decoded.
    pub hits: u64,
    /// Probes that found no entry file.
    pub misses: u64,
    /// Artifacts written through to disk.
    pub writes: u64,
    /// Entry files present but rejected (bad magic, version skew, wrong
    /// stage, checksum or decode failure) and recomputed instead.
    pub corrupt: u64,
}

impl DiskStats {
    /// Component-wise sum.
    fn add(self, other: DiskStats) -> DiskStats {
        DiskStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            writes: self.writes + other.writes,
            corrupt: self.corrupt + other.corrupt,
        }
    }
}

#[derive(Debug, Default)]
struct StageCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
}

/// A persistent, content-addressed artifact store rooted at one
/// directory. See the [module docs](self) for layout and fallback
/// semantics, and [`Explorer::with_store`](crate::Explorer::with_store)
/// for the session integration.
///
/// Multiple stores (in one process or many) may share a directory:
/// writes are atomic (temp file + rename), and since keys are content
/// hashes, concurrent writers of the same key write identical bytes.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    counters: [StageCounters; 8],
}

impl ArtifactStore {
    /// A store rooted at `dir`. No I/O happens here: the directory is
    /// created lazily on first write, and a missing directory simply
    /// means every load misses.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            dir: dir.into(),
            counters: Default::default(),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an artifact lives in: `<dir>/<stage>/<key as 16 hex
    /// digits>.art`. Exposed for inspection and tests; entries may be
    /// deleted (or the whole directory removed) at any time.
    pub fn entry_path(&self, stage: Stage, key: u64) -> PathBuf {
        self.dir.join(stage.name()).join(format!("{key:016x}.art"))
    }

    /// Read and decode the artifact stored under `(stage, key)`.
    ///
    /// Returns `None` — counting a miss — when no entry file exists, and
    /// `None` — counting `corrupt` — when a file exists but fails any
    /// validation step (magic, version, stage, length, checksum, codec
    /// decode). Never errors and never panics on hostile bytes.
    pub fn load<V: ArtifactCodec>(&self, stage: Stage, key: u64) -> Option<V> {
        let counters = &self.counters[stage as usize];
        let bytes = match fs::read(self.entry_path(stage, key)) {
            Ok(bytes) => bytes,
            Err(_) => {
                counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry::<V>(&bytes, stage) {
            Some(v) => {
                counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                counters.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Encode `value` and write it under `(stage, key)`, atomically
    /// (temp file + rename, so readers never observe a partial entry).
    ///
    /// Returns whether the write landed; failures (unwritable directory,
    /// disk full) are swallowed — persistence is an optimization, never
    /// a correctness requirement.
    pub fn save<V: ArtifactCodec>(&self, stage: Stage, key: u64, value: &V) -> bool {
        let path = self.entry_path(stage, key);
        let Some(parent) = path.parent() else {
            return false;
        };
        if fs::create_dir_all(parent).is_err() {
            return false;
        }
        let payload = value.to_bytes();
        let mut bytes = Vec::with_capacity(payload.len() + 64);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let stage_name = stage.name().as_bytes();
        bytes.push(stage_name.len() as u8);
        bytes.extend_from_slice(stage_name);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        // Unique per writer: the pid alone is not enough, because two
        // sessions (or threads) in one process may race on the same key
        // — a shared tmp path would let one writer rename the other's
        // half-written file into place.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, &bytes).is_err() {
            fs::remove_file(&tmp).ok();
            return false;
        }
        if fs::rename(&tmp, &path).is_err() {
            fs::remove_file(&tmp).ok();
            return false;
        }
        self.counters[stage as usize]
            .writes
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Snapshot one stage's disk counters.
    pub fn stats(&self, stage: Stage) -> DiskStats {
        let c = &self.counters[stage as usize];
        DiskStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            corrupt: c.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Disk counters summed over every stage.
    pub fn totals(&self) -> DiskStats {
        Stage::all()
            .into_iter()
            .fold(DiskStats::default(), |acc, s| acc.add(self.stats(s)))
    }

    /// Zero the counters (the on-disk entries are untouched — they are
    /// the persistent state; the counters are per-session bookkeeping).
    pub fn reset_counters(&self) {
        for c in &self.counters {
            c.hits.store(0, Ordering::Relaxed);
            c.misses.store(0, Ordering::Relaxed);
            c.writes.store(0, Ordering::Relaxed);
            c.corrupt.store(0, Ordering::Relaxed);
        }
    }
}

/// FNV-1a 64 over the payload (the same algorithm as [`StableHasher`],
/// kept separate so the checksum is independent of key derivation).
fn checksum(payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(payload);
    h.finish()
}

/// Validate a complete entry file and decode its payload. Any failure
/// returns `None`; the caller counts it as `corrupt`.
fn decode_entry<V: ArtifactCodec>(bytes: &[u8], stage: Stage) -> Option<V> {
    let rest = bytes.strip_prefix(&MAGIC)?;
    let (version, rest) = split_u32(rest)?;
    if version != FORMAT_VERSION {
        return None;
    }
    let (&name_len, rest) = rest.split_first()?;
    let name_len = usize::from(name_len);
    if rest.len() < name_len {
        return None;
    }
    let (name, rest) = rest.split_at(name_len);
    if name != stage.name().as_bytes() {
        return None;
    }
    let (payload_len, rest) = split_u64(rest)?;
    let (expected_sum, payload) = split_u64(rest)?;
    if payload.len() as u64 != payload_len || checksum(payload) != expected_sum {
        return None;
    }
    V::from_bytes(payload).ok()
}

fn split_u32(bytes: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<4>()?;
    Some((u32::from_le_bytes(*head), rest))
}

fn split_u64(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<8>()?;
    Some((u64::from_le_bytes(*head), rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("asip-store-unit-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        ArtifactStore::open(dir)
    }

    #[test]
    fn stable_hasher_is_deterministic_and_length_prefixed() {
        let digest = |f: &dyn Fn(&mut StableHasher)| {
            let mut h = StableHasher::new();
            f(&mut h);
            h.finish()
        };
        assert_eq!(
            digest(&|h| h.write_str("abc")),
            digest(&|h| h.write_str("abc"))
        );
        // "ab" + "c" must not alias "a" + "bc"
        assert_ne!(
            digest(&|h| {
                h.write_str("ab");
                h.write_str("c");
            }),
            digest(&|h| {
                h.write_str("a");
                h.write_str("bc");
            })
        );
        // the canonical FNV-1a 64 test vector
        let mut h = StableHasher::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn save_load_round_trip_with_counters() {
        let store = temp_store("roundtrip");
        assert_eq!(store.load::<u64>(Stage::Compile, 1), None);
        assert_eq!(store.stats(Stage::Compile).misses, 1);

        assert!(store.save(Stage::Compile, 1, &42u64));
        assert_eq!(store.load::<u64>(Stage::Compile, 1), Some(42));
        let stats = store.stats(Stage::Compile);
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        // other stages are unaffected; totals sum
        assert_eq!(store.stats(Stage::Profile), DiskStats::default());
        assert_eq!(store.totals().hits, 1);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn keys_and_stages_address_distinct_entries() {
        let store = temp_store("address");
        store.save(Stage::Compile, 7, &1u64);
        store.save(Stage::Compile, 8, &2u64);
        store.save(Stage::Profile, 7, &3u64);
        assert_eq!(store.load::<u64>(Stage::Compile, 7), Some(1));
        assert_eq!(store.load::<u64>(Stage::Compile, 8), Some(2));
        assert_eq!(store.load::<u64>(Stage::Profile, 7), Some(3));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupted_entries_count_corrupt_and_miss_to_none() {
        let store = temp_store("corrupt");
        store.save(Stage::Analyze, 5, &String::from("report"));
        let path = store.entry_path(Stage::Analyze, 5);

        // flip a payload byte: checksum rejects
        let mut bytes = fs::read(&path).expect("entry exists");
        *bytes.last_mut().expect("nonempty") ^= 0xFF;
        fs::write(&path, &bytes).expect("writable");
        assert_eq!(store.load::<String>(Stage::Analyze, 5), None);
        assert_eq!(store.stats(Stage::Analyze).corrupt, 1);

        // truncate mid-header
        fs::write(&path, &bytes[..10]).expect("writable");
        assert_eq!(store.load::<String>(Stage::Analyze, 5), None);

        // version skew (bytes 8..12) rejects even with a valid payload
        store.save(Stage::Analyze, 5, &String::from("report"));
        let mut bytes = fs::read(&path).expect("entry exists");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).expect("writable");
        assert_eq!(store.load::<String>(Stage::Analyze, 5), None);
        assert_eq!(store.stats(Stage::Analyze).corrupt, 3);

        // a wrong-stage read of a valid entry is also rejected
        store.save(Stage::Analyze, 5, &String::from("report"));
        let copy = store.entry_path(Stage::Design, 5);
        fs::create_dir_all(copy.parent().expect("has parent")).expect("mkdir");
        fs::copy(&path, &copy).expect("copies");
        assert_eq!(store.load::<String>(Stage::Design, 5), None);
        assert_eq!(store.stats(Stage::Design).corrupt, 1);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn unwritable_directory_degrades_to_no_store() {
        // a path under a *file* can never be created
        let blocker =
            std::env::temp_dir().join(format!("asip-store-blocker-{}", std::process::id()));
        fs::write(&blocker, b"file, not dir").expect("temp writable");
        let store = ArtifactStore::open(blocker.join("store"));
        assert!(!store.save(Stage::Compile, 1, &1u64));
        assert_eq!(store.totals().writes, 0);
        assert_eq!(store.load::<u64>(Stage::Compile, 1), None);
        fs::remove_file(&blocker).ok();
    }

    #[test]
    fn reset_counters_keeps_entries() {
        let store = temp_store("reset");
        store.save(Stage::Compile, 3, &9u64);
        store.load::<u64>(Stage::Compile, 3);
        store.reset_counters();
        assert_eq!(store.totals(), DiskStats::default());
        assert_eq!(store.load::<u64>(Stage::Compile, 3), Some(9));
        fs::remove_dir_all(store.dir()).ok();
    }
}
