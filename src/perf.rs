//! Perf-baseline bookkeeping: parse the bench harness's JSON summary,
//! diff it against a recorded baseline, and flag regressions.
//!
//! The root `benches/explore.rs` harness writes a flat JSON object of
//! named series (milliseconds, ops/second, counters) to
//! `target/asip-bench-explore.json`. A blessed copy lives in
//! `benches/baseline.json`; this module is the shared comparison engine
//! behind both the bench's end-of-run report and the `asip-bench`
//! `perf` gating binary CI runs after `cargo bench --bench explore`
//! (see `docs/perf.md` for the workflow).
//!
//! Series are compared *direction-aware* by key suffix:
//!
//! - `*_ms` — lower is better; a regression is a current value above
//!   `baseline * (1 + tolerance)`, ignored below an absolute noise
//!   floor ([`MS_NOISE_FLOOR`]) so sub-millisecond warm-cache series
//!   don't flap;
//! - `*_ops_per_sec` — higher is better; a regression is a current
//!   value below `baseline * (1 - tolerance)`;
//! - `*_ratio` — lower is better, with its own absolute noise floor
//!   ([`RATIO_NOISE_FLOOR`]): ratios of two timed series (e.g.
//!   `warm_over_cold_ratio`) compound both sides' jitter, so small
//!   absolute wobble never gates;
//! - everything else (`schema`, counters like `*_hits`, `*_ops`) is
//!   informational and never gates.
//!
//! A perf-tracked series present in the baseline but missing from the
//! current summary is a regression (a series must not silently
//! disappear); new series are informational until blessed into the
//! baseline.
//!
//! ```
//! use asip_explorer::perf::{compare, parse_summary};
//!
//! let baseline = parse_summary(r#"{ "schema": 1, "sim_ops_per_sec": 100.0 }"#).unwrap();
//! let fast = parse_summary(r#"{ "schema": 1, "sim_ops_per_sec": 300.0 }"#).unwrap();
//! let slow = parse_summary(r#"{ "schema": 1, "sim_ops_per_sec": 50.0 }"#).unwrap();
//! assert!(compare(&baseline, &fast, 25.0).is_pass());
//! assert!(!compare(&baseline, &slow, 25.0).is_pass());
//! ```

use std::fmt;
use std::path::Path;

/// Millisecond series ignore absolute deltas below this (warm-cache
/// series sit near 0.1 ms, where relative tolerances are meaningless).
pub const MS_NOISE_FLOOR: f64 = 2.0;

/// Ratio series (`*_ratio`) ignore absolute deltas below this. Ratios
/// of two timed series compound both sides' jitter, so small absolute
/// wobble around the baseline must not gate.
pub const RATIO_NOISE_FLOOR: f64 = 0.05;

/// The default regression tolerance, in percent.
pub const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

/// How a series' values are judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (`*_ms`).
    LowerIsBetter,
    /// Larger values are better (`*_ops_per_sec`).
    HigherIsBetter,
    /// Not a perf series; never gates.
    Informational,
}

/// The gating direction of a series, by key suffix.
pub fn direction_of(key: &str) -> Direction {
    if key.ends_with("_ms") || key.ends_with("_ratio") {
        Direction::LowerIsBetter
    } else if key.ends_with("_ops_per_sec") {
        Direction::HigherIsBetter
    } else {
        Direction::Informational
    }
}

/// The absolute noise floor a lower-is-better series must clear before
/// a relative overshoot counts as a regression.
fn noise_floor_of(key: &str) -> f64 {
    if key.ends_with("_ratio") {
        RATIO_NOISE_FLOOR
    } else {
        MS_NOISE_FLOOR
    }
}

/// A parsed bench summary: ordered `(series, value)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfSummary {
    /// The series in file order.
    pub series: Vec<(String, f64)>,
}

impl PerfSummary {
    /// Look up one series.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.series.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Parse the bench harness's flat JSON summary: one object, string
/// keys, numeric values. This is a purpose-built reader (the
/// workspace's serde is the offline no-op shim), strict enough to
/// reject anything the harness would not have written.
///
/// # Errors
///
/// A human-readable description of the first malformed token.
pub fn parse_summary(json: &str) -> Result<PerfSummary, String> {
    let mut rest = json.trim();
    rest = rest
        .strip_prefix('{')
        .ok_or_else(|| "expected `{`".to_string())?
        .trim_end();
    rest = rest
        .strip_suffix('}')
        .ok_or_else(|| "expected closing `}`".to_string())?
        .trim();
    let mut series = Vec::new();
    if rest.is_empty() {
        return Ok(PerfSummary { series });
    }
    for (i, pair) in rest.split(',').enumerate() {
        let pair = pair.trim();
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("entry {i}: expected `\"key\": value`, got `{pair}`"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("entry {i}: key must be a quoted string"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("entry {i} (`{key}`): bad number: {e}"))?;
        series.push((key.to_string(), value));
    }
    Ok(PerfSummary { series })
}

/// Read and parse a summary file.
///
/// # Errors
///
/// I/O failures and parse failures, as a description string naming the
/// path.
pub fn load_summary(path: &Path) -> Result<PerfSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_summary(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// One series' baseline-vs-current verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDelta {
    /// Series name.
    pub key: String,
    /// Baseline value, if the series existed in the baseline.
    pub baseline: Option<f64>,
    /// Current value, if the series exists in the current summary.
    pub current: Option<f64>,
    /// Gating direction.
    pub direction: Direction,
    /// Signed change in percent (positive = value grew); `None` when
    /// either side is missing or the baseline is zero.
    pub change_pct: Option<f64>,
    /// True when this delta violates the tolerance.
    pub regressed: bool,
}

/// A full baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfComparison {
    /// Per-series verdicts, baseline order first, then new series.
    pub deltas: Vec<SeriesDelta>,
    /// The tolerance the comparison ran with, in percent.
    pub tolerance_pct: f64,
}

impl PerfComparison {
    /// The regressed series.
    pub fn regressions(&self) -> impl Iterator<Item = &SeriesDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// True when no perf series regressed beyond the tolerance.
    pub fn is_pass(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// Compare a current summary against a baseline with the given
/// tolerance (percent).
pub fn compare(
    baseline: &PerfSummary,
    current: &PerfSummary,
    tolerance_pct: f64,
) -> PerfComparison {
    let tol = tolerance_pct / 100.0;
    let mut deltas = Vec::new();
    for (key, &(_, base)) in baseline.series.iter().map(|p| (&p.0, p)) {
        if key == "schema" {
            continue;
        }
        let direction = direction_of(key);
        let cur = current.get(key);
        let (change_pct, regressed) = match (direction, cur) {
            (Direction::Informational, _) => (change_pct(base, cur), false),
            // a tracked series must not silently disappear
            (_, None) => (None, true),
            (Direction::LowerIsBetter, Some(c)) => {
                let over = c > base * (1.0 + tol) && (c - base) > noise_floor_of(key);
                (change_pct(base, cur), over)
            }
            (Direction::HigherIsBetter, Some(c)) => (change_pct(base, cur), c < base * (1.0 - tol)),
        };
        deltas.push(SeriesDelta {
            key: key.clone(),
            baseline: Some(base),
            current: cur,
            direction,
            change_pct,
            regressed,
        });
    }
    for (key, &value) in current.series.iter().map(|p| (&p.0, &p.1)) {
        if key == "schema" || baseline.get(key).is_some() {
            continue;
        }
        deltas.push(SeriesDelta {
            key: key.clone(),
            baseline: None,
            current: Some(value),
            direction: direction_of(key),
            change_pct: None,
            regressed: false,
        });
    }
    PerfComparison {
        deltas,
        tolerance_pct,
    }
}

fn change_pct(base: f64, current: Option<f64>) -> Option<f64> {
    let c = current?;
    (base != 0.0).then(|| (c - base) / base * 100.0)
}

impl fmt::Display for PerfComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<32} {:>14} {:>14} {:>9}  verdict",
            "series", "baseline", "current", "change"
        )?;
        for d in &self.deltas {
            let fmt_v = |v: Option<f64>| match v {
                Some(v) if v.abs() >= 1000.0 => format!("{v:.0}"),
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            };
            let change = match d.change_pct {
                Some(c) => format!("{c:+.1}%"),
                None => "-".to_string(),
            };
            let verdict = if d.regressed {
                "REGRESSED"
            } else {
                match d.direction {
                    Direction::Informational => "info",
                    _ if d.baseline.is_none() => "new",
                    _ => "ok",
                }
            };
            writeln!(
                f,
                "{:<32} {:>14} {:>14} {:>9}  {verdict}",
                d.key,
                fmt_v(d.baseline),
                fmt_v(d.current),
                change
            )?;
        }
        write!(
            f,
            "tolerance {:.0}%: {}",
            self.tolerance_pct,
            if self.is_pass() {
                "PASS".to_string()
            } else {
                format!("FAIL ({} regression(s))", self.regressions().count())
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(pairs: &[(&str, f64)]) -> PerfSummary {
        PerfSummary {
            series: pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        }
    }

    #[test]
    fn parses_the_harness_format() {
        let s = parse_summary(
            "{\n  \"schema\": 1,\n  \"cold_explore_all_ms\": 159.842,\n  \"sim_ops_per_sec\": 80568877.094\n}\n",
        )
        .expect("parses");
        assert_eq!(s.get("schema"), Some(1.0));
        assert_eq!(s.get("cold_explore_all_ms"), Some(159.842));
        assert_eq!(s.series.len(), 3);
        assert!(parse_summary("not json").is_err());
        assert!(parse_summary("{ \"unquoted: 1 }").is_err());
        assert!(parse_summary("{ \"k\": \"str\" }").is_err());
        assert_eq!(parse_summary("{}").expect("empty ok").series.len(), 0);
    }

    #[test]
    fn directions_by_suffix() {
        assert_eq!(
            direction_of("cold_explore_all_ms"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("sim_ops_per_sec"), Direction::HigherIsBetter);
        assert_eq!(
            direction_of("store_warm_prefetch_hits"),
            Direction::Informational
        );
        assert_eq!(direction_of("sim_dynamic_ops"), Direction::Informational);
        assert_eq!(
            direction_of("warm_over_cold_ratio"),
            Direction::LowerIsBetter
        );
    }

    #[test]
    fn regressions_respect_direction_and_tolerance() {
        let base = summary(&[("a_ms", 100.0), ("b_ops_per_sec", 1000.0)]);
        // 20% slower / 20% fewer ops: inside a 25% tolerance
        let ok = summary(&[("a_ms", 120.0), ("b_ops_per_sec", 800.0)]);
        assert!(compare(&base, &ok, 25.0).is_pass());
        // 30% slower: out
        let slow = summary(&[("a_ms", 130.0), ("b_ops_per_sec", 1000.0)]);
        let c = compare(&base, &slow, 25.0);
        assert!(!c.is_pass());
        assert_eq!(c.regressions().count(), 1);
        assert_eq!(c.regressions().next().expect("one").key, "a_ms");
        // 30% fewer ops/s: out
        let fewer = summary(&[("a_ms", 100.0), ("b_ops_per_sec", 700.0)]);
        assert!(!compare(&base, &fewer, 25.0).is_pass());
        // improvements never gate
        let better = summary(&[("a_ms", 10.0), ("b_ops_per_sec", 9000.0)]);
        assert!(compare(&base, &better, 25.0).is_pass());
    }

    #[test]
    fn millisecond_noise_floor_absorbs_tiny_series() {
        // 0.1 ms → 0.3 ms is +200% but only 0.2 ms absolute: not a gate
        let base = summary(&[("warm_ms", 0.1)]);
        let wobble = summary(&[("warm_ms", 0.3)]);
        assert!(compare(&base, &wobble, 25.0).is_pass());
        // a real 100 ms → 300 ms blowup still gates
        let base = summary(&[("cold_ms", 100.0)]);
        let blowup = summary(&[("cold_ms", 300.0)]);
        assert!(!compare(&base, &blowup, 25.0).is_pass());
    }

    #[test]
    fn ratio_noise_floor_absorbs_small_absolute_wobble() {
        // 0.004 → 0.04 is +900% but only 0.036 absolute: not a gate
        let base = summary(&[("warm_over_cold_ratio", 0.004)]);
        let wobble = summary(&[("warm_over_cold_ratio", 0.04)]);
        assert!(compare(&base, &wobble, 25.0).is_pass());
        // a ratio that grows past the floor AND the tolerance gates
        let base = summary(&[("warm_over_cold_ratio", 0.2)]);
        let blowup = summary(&[("warm_over_cold_ratio", 0.5)]);
        assert!(!compare(&base, &blowup, 25.0).is_pass());
    }

    #[test]
    fn missing_tracked_series_regress_and_new_series_inform() {
        let base = summary(&[("a_ms", 100.0), ("n_hits", 5.0)]);
        let cur = summary(&[("b_ms", 1.0)]);
        let c = compare(&base, &cur, 25.0);
        // a_ms vanished → regression; n_hits vanished → informational
        assert_eq!(c.regressions().count(), 1);
        assert_eq!(c.regressions().next().expect("one").key, "a_ms");
        // b_ms is new → informational until blessed
        let new = c.deltas.iter().find(|d| d.key == "b_ms").expect("listed");
        assert!(!new.regressed);
        assert!(new.baseline.is_none());
    }

    #[test]
    fn informational_series_never_gate() {
        let base = summary(&[("prefetch_hits", 120.0), ("schema", 1.0)]);
        let cur = summary(&[("prefetch_hits", 3.0), ("schema", 2.0)]);
        assert!(compare(&base, &cur, 25.0).is_pass());
    }

    #[test]
    fn display_renders_a_table_with_verdicts() {
        let base = summary(&[("a_ms", 100.0)]);
        let cur = summary(&[("a_ms", 200.0)]);
        let c = compare(&base, &cur, 25.0);
        let text = c.to_string();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("+100.0%"));
        let pass = compare(&base, &base, 25.0).to_string();
        assert!(pass.contains("PASS"));
    }
}
