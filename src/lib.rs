//! # asip-explorer
//!
//! A compiler-in-the-loop ASIP design exploration framework reproducing
//! *"Incorporating Compiler Feedback Into the Design of ASIPs"*
//! (Onion, Nicolau, Dutt — DATE 1995).
//!
//! The public API is the [`Explorer`] session: a builder-configured
//! facade over the paper's Figure 1/2 pipeline with typed stage
//! artifacts ([`Compiled`] → [`Profiled`] → [`Scheduled`] →
//! [`Analyzed`] → [`Designed`] → [`Evaluated`], plus the suite-level
//! [`DesignedSuite`] → [`EvaluatedSuite`] pair), per-stage memoization
//! keyed by `(benchmark, configuration)` with single-flight computes
//! and optional LRU bounds ([`Explorer::with_cache_capacity`]), a
//! thread-pooled [`Explorer::explore_all`] over the whole Table-1
//! registry, and one unified [`ExplorerError`].
//!
//! The design stage consumes the *same* cached schedule the analyze
//! stage reports — session optimizer configuration included — so
//! compiler feedback and extension selection can never silently
//! diverge, and a design after an analyze costs zero optimizer runs.
//!
//! Beyond single configurations, [`Explorer::design_space`] runs an
//! incremental pareto-frontier search over a whole grid of
//! [`DesignConstraints`](synth::DesignConstraints) at once: candidate
//! costs, coverage reports and rewrite-benefit estimates are shared
//! across configs through a per-search memo table, so a 256-point
//! sweep performs exactly one optimizer run per distinct
//! `(benchmark, optimization level)` pair — and the whole grid is one
//! cached [`DesignSpaced`] artifact that persists through the tier
//! stack like any other stage (see `docs/design-space.md`).
//!
//! Sessions can also persist their artifacts *across* processes:
//! [`Explorer::with_store`] layers a content-addressed on-disk
//! [`ArtifactStore`] under the in-memory caches, so the eleven
//! paper-reproduction binaries share one pipeline run instead of each
//! recompiling, re-profiling and re-scheduling the suite (see the
//! [`store`] module and `docs/persistence.md`). Caching is organised as
//! an explicit [tier stack](tier): every cache layer implements the
//! pluggable [`ArtifactTier`] interface — the in-memory staging tier,
//! the disk store, and any custom tier added via
//! [`Explorer::with_tier`] — with read-through, write-through, parallel
//! warm-suite prefetch ([`Explorer::prefetch`]) and size/age-budgeted
//! store GC ([`ArtifactStore::gc`], surfaced as the `asip-bench`
//! `store` maintenance binary).
//!
//! Finally, artifacts can cross *machine* boundaries: the [`remote`]
//! module provides a `serve` daemon (the `asip-bench` `serve` binary)
//! that keeps one warm session resident behind a TCP or Unix socket,
//! and a [`RemoteTier`] clients insert between staging and disk via
//! [`Explorer::with_remote`] — with explicit retry/timeout/backoff
//! ([`RetryPolicy`]) and graceful degradation: any server failure is a
//! counted miss that falls back to local compute, never an error (see
//! `docs/serve.md`).
//!
//! The workspace is organised as this facade over seven member crates:
//!
//! - [`ir`] — the three-address intermediate representation and CFG.
//! - [`frontend`] — the mini-C compiler front end (paper step 1).
//! - [`sim`] — the profiling simulator (paper step 2).
//! - [`opt`] — percolation scheduling / loop pipelining / renaming
//!   (paper step 3, the "UCI VLIW compiler" substrate).
//! - [`chains`] — the chainable-sequence detection analyzer
//!   (paper step 4, the core contribution).
//! - [`synth`] — the ASIP design stage: chained-instruction synthesis,
//!   code rewriting and speedup estimation (paper Figure 1).
//! - [`benchmarks`] — the twelve Table-1 DSP benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use asip_explorer::prelude::*;
//!
//! # fn main() -> Result<(), ExplorerError> {
//! // one session for the whole exploration; every stage is memoized,
//! // and the caches can be bounded for long-lived (service) sessions
//! let session = Explorer::new()
//!     .with_levels([OptLevel::None, OptLevel::Pipelined])
//!     .with_detector(DetectorConfig::default())
//!     .with_constraints(DesignConstraints::default())
//!     .with_cache_capacity(256);
//!
//! // staged access: compile → profile → analyze, each cached
//! let compiled = session.compile("fir")?;
//! println!("fir: {} instructions", compiled.program.inst_count());
//!
//! let analyzed = session.analyze("fir", OptLevel::Pipelined)?;
//! assert!(analyzed.report.top(1).next().is_some());
//!
//! // the design stage reuses the analyze stage's cached schedule:
//! // selecting extensions performs zero additional optimizer runs
//! let schedule_runs = session.cache_stats().schedule.misses;
//! let designed = session.design("fir")?;
//! assert_eq!(session.cache_stats().schedule.misses, schedule_runs);
//!
//! // or the whole Figure-1 loop in one call (reusing the cache)
//! let exploration = session.explore("fir")?;
//! assert!(exploration.speedup() >= 1.0);
//! assert!(session.cache_stats().compile.hits > 0);
//!
//! // the paper's deployment scenario: ONE shared ASIP tuned to a
//! // whole suite, as a cached session stage of its own
//! let suite = session.evaluate_suite_with(
//!     &["fir", "sewha", "bspline"],
//!     DesignConstraints::default(),
//!     DetectorConfig::default(),
//! )?;
//! assert_eq!(suite.benchmarks.len(), 3);
//! assert!(suite.geomean_speedup().expect("non-empty suite") >= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asip_benchmarks as benchmarks;
pub use asip_chains as chains;
pub use asip_frontend as frontend;
pub use asip_gen as gen;
pub use asip_ir as ir;
pub use asip_opt as opt;
pub use asip_sim as sim;
pub use asip_synth as synth;

pub mod artifact;
pub mod cache;
pub mod error;
pub mod fault;
pub mod perf;
pub mod remote;
pub mod session;
pub mod store;
pub mod tier;

pub use artifact::{
    geomean, Analyzed, Artifact, ArtifactCodec, Compiled, DesignSpaced, Designed, DesignedSuite,
    Evaluated, EvaluatedSuite, Exploration, Profiled, Scheduled, Stage, STAGE_COUNT,
};
pub use cache::MemoryTier;
pub use error::{CodecError, ExplorerError, RemoteError};
pub use fault::{FaultConfig, FaultCounts, FaultPlan, FaultSite, FaultTier, PANIC_PROBE_KEY};
pub use remote::{serve, Endpoint, RemoteTier, RemoteTotals, RetryPolicy, ServeOptions};
pub use session::{CacheStats, Explorer, StageStats};
pub use store::{ArtifactStore, DiskStats, GcReport, Manifest, StoreGcConfig, VerifyReport};
pub use tier::{ArtifactTier, TierRead, TierStack, TierStats};

/// Convenience re-exports for the common exploration flow.
pub mod prelude {
    pub use crate::artifact::{
        Analyzed, Artifact, Compiled, DesignSpaced, Designed, DesignedSuite, Evaluated,
        EvaluatedSuite, Exploration, Profiled, Scheduled, Stage,
    };
    pub use crate::error::ExplorerError;
    pub use crate::remote::{RemoteTier, RemoteTotals, RetryPolicy};
    pub use crate::session::{CacheStats, Explorer, StageStats};
    pub use crate::store::{ArtifactStore, DiskStats, GcReport, StoreGcConfig};
    pub use crate::tier::{ArtifactTier, TierStats};
    pub use asip_benchmarks::{
        full_registry, generated_corpus, registry, Benchmark, DataSpec, Suite,
    };
    pub use asip_chains::{
        CoverageAnalyzer, DetectorConfig, SequenceDetector, SequenceReport, Signature,
    };
    pub use asip_ir::{OpClass, Program};
    pub use asip_opt::{OptConfig, OptLevel, Optimizer, ScheduleGraph};
    pub use asip_sim::{Profile, Simulator};
    pub use asip_synth::{
        AsipDesigner, DesignConstraints, DesignSpace, LevelFeedback, ParetoPoint, SearchStats,
    };
}
