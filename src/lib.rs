//! # asip-explorer
//!
//! A compiler-in-the-loop ASIP design exploration framework reproducing
//! *"Incorporating Compiler Feedback Into the Design of ASIPs"*
//! (Onion, Nicolau, Dutt — DATE 1995).
//!
//! The workspace is organised as a facade over seven member crates:
//!
//! - [`ir`] — the three-address intermediate representation and CFG.
//! - [`frontend`] — the mini-C compiler front end (paper step 1).
//! - [`sim`] — the profiling simulator (paper step 2).
//! - [`opt`] — percolation scheduling / loop pipelining / renaming
//!   (paper step 3, the "UCI VLIW compiler" substrate).
//! - [`chains`] — the chainable-sequence detection analyzer
//!   (paper step 4, the core contribution).
//! - [`synth`] — the ASIP design stage: chained-instruction synthesis,
//!   code rewriting and speedup estimation (paper Figure 1).
//! - [`benchmarks`] — the twelve Table-1 DSP benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use asip_explorer::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. compile a benchmark to 3-address code
//! let benches = asip_explorer::benchmarks::registry();
//! let bench = benches.find("fir").expect("fir is a built-in benchmark");
//! let program = bench.compile()?;
//!
//! // 2. profile it on the paper-specified input data
//! let profile = bench.profile(&program)?;
//!
//! // 3. optimize at level 1 (loop pipelining + percolation scheduling)
//! let graph = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
//!
//! // 4. detect chainable sequences
//! let report = SequenceDetector::new(DetectorConfig::default()).analyze(&graph);
//! assert!(report.top(1).next().is_some());
//! # Ok(())
//! # }
//! ```

pub use asip_benchmarks as benchmarks;
pub use asip_chains as chains;
pub use asip_frontend as frontend;
pub use asip_ir as ir;
pub use asip_opt as opt;
pub use asip_sim as sim;
pub use asip_synth as synth;

/// Convenience re-exports for the common exploration flow.
pub mod prelude {
    pub use asip_benchmarks::{registry, Benchmark};
    pub use asip_chains::{
        CoverageAnalyzer, DetectorConfig, SequenceDetector, SequenceReport, Signature,
    };
    pub use asip_ir::{OpClass, Program};
    pub use asip_opt::{OptLevel, Optimizer, ScheduleGraph};
    pub use asip_sim::{Profile, Simulator};
    pub use asip_synth::{AsipDesigner, DesignConstraints};
}
