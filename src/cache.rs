//! The bounded LRU map behind every session stage cache.
//!
//! The [`Explorer`](crate::Explorer) session memoizes each pipeline
//! stage; for the twelve-benchmark registry the maps stay tiny, but a
//! long-lived session behind a service would otherwise grow without
//! bound as sweeps visit ever more `(benchmark, configuration)` keys.
//! [`LruCache`] bounds each stage map to a configurable number of
//! entries: an insert over capacity evicts the least-recently-*used*
//! entry (a cache hit refreshes recency), and every eviction is
//! reported back so the session's [`CacheStats`](crate::CacheStats) can
//! account for it. The map itself is synchronous and unsynchronized —
//! the session wraps one per stage in a `Mutex` — and it never touches
//! disk; the persistent tier below it lives in [`crate::store`].
//!
//! ```
//! use asip_explorer::cache::LruCache;
//!
//! let mut cache = LruCache::default(); // unbounded until told otherwise
//! cache.set_capacity(Some(2));
//! cache.insert("fir", 1);
//! cache.insert("sewha", 2);
//! assert_eq!(cache.get(&"fir"), Some(&1)); // refreshes "fir"
//! let evicted = cache.insert("dft", 3);    // over capacity…
//! assert_eq!(evicted, 1);                  // …evicts LRU "sewha"
//! assert_eq!(cache.get(&"sewha"), None);
//! assert_eq!(cache.len(), 2);
//! ```

use std::collections::HashMap;
use std::hash::Hash;

/// A hash map with an optional entry-count bound and least-recently-used
/// eviction.
///
/// Recency is tracked with a monotonic tick stamped on every `get` and
/// `insert`; eviction scans for the minimum stamp. The scan is `O(len)`,
/// which is the right trade for stage caches: capacities are small, the
/// values behind them cost milliseconds to recompute, and the map lives
/// under a `Mutex` where a linked-list LRU would buy nothing.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: Option<usize>,
    tick: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<K, V> Default for LruCache<K, V> {
    fn default() -> Self {
        LruCache {
            map: HashMap::new(),
            capacity: None,
            tick: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            &e.value
        })
    }

    /// Insert (or replace) an entry, evicting least-recently-used
    /// entries as needed to respect the capacity. Returns how many
    /// entries were evicted (0 when unbounded or under capacity).
    pub fn insert(&mut self, key: K, value: V) -> u64 {
        let mut evicted = 0;
        if let Some(cap) = self.capacity {
            if !self.map.contains_key(&key) {
                while self.map.len() >= cap.max(1) && self.evict_one() {
                    evicted += 1;
                }
            }
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
        evicted
    }

    /// Set or clear the entry bound (`None` = unbounded; a bound of 0 is
    /// treated as 1 so the cache always holds the newest entry).
    /// Shrinking below the current size evicts immediately; returns the
    /// eviction count.
    pub fn set_capacity(&mut self, capacity: Option<usize>) -> u64 {
        self.capacity = capacity;
        let mut evicted = 0;
        if let Some(cap) = capacity {
            while self.map.len() > cap.max(1) && self.evict_one() {
                evicted += 1;
            }
        }
        evicted
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry (the bound survives).
    pub fn clear(&mut self) {
        self.map.clear();
        self.tick = 0;
    }

    fn evict_one(&mut self) -> bool {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        match oldest {
            Some(k) => {
                self.map.remove(&k);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_by_default() {
        let mut c = LruCache::default();
        for i in 0..100 {
            assert_eq!(c.insert(i, i * 10), 0);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.get(&42), Some(&420));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::default();
        c.set_capacity(Some(2));
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a: b is now LRU
        assert_eq!(c.insert("c", 3), 1);
        assert_eq!(c.get(&"b"), None, "b was evicted, not a");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn replacing_an_entry_never_evicts() {
        let mut c = LruCache::default();
        c.set_capacity(Some(2));
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.insert("a", 10), 0, "replacement is not growth");
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut c = LruCache::default();
        for i in 0..5 {
            c.insert(i, i);
        }
        assert_eq!(c.set_capacity(Some(2)), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&3), Some(&3), "newest entries survive the shrink");
        assert_eq!(c.get(&4), Some(&4));
    }

    #[test]
    fn capacity_zero_keeps_the_newest_entry() {
        let mut c = LruCache::default();
        c.set_capacity(Some(0));
        c.insert("a", 1);
        assert_eq!(c.insert("b", 2), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn clear_keeps_the_bound() {
        let mut c = LruCache::default();
        c.set_capacity(Some(1));
        c.insert("a", 1);
        c.clear();
        assert_eq!(c.len(), 0);
        c.insert("b", 2);
        assert_eq!(c.insert("c", 3), 1, "the bound survived the clear");
    }
}
