//! The in-memory caches: the bounded LRU map behind every typed session
//! stage cache, and the byte-budgeted [`MemoryTier`] staging tier of the
//! [tier stack](crate::tier).
//!
//! The [`Explorer`](crate::Explorer) session memoizes each pipeline
//! stage; for the twelve-benchmark registry the maps stay tiny, but a
//! long-lived session behind a service would otherwise grow without
//! bound as sweeps visit ever more `(benchmark, configuration)` keys.
//! [`LruCache`] bounds each stage map to a configurable number of
//! entries: an insert over capacity evicts the least-recently-*used*
//! entry (a cache hit refreshes recency), and every eviction is
//! reported back so the session's [`CacheStats`](crate::CacheStats) can
//! account for it. The map itself is synchronous and unsynchronized —
//! the session wraps one per stage in a `Mutex`.
//!
//! [`MemoryTier`] reuses the same LRU as an [`ArtifactTier`]: a
//! thread-safe map of
//! *encoded payload bytes* keyed by `(Stage, u64)`, bounded by a byte
//! budget instead of an entry count. The session's suite prefetcher
//! stages warm disk payloads here in parallel so stage requests decode
//! from memory; nothing is written through on the compute path (decoded
//! values live in the typed LRUs above).
//!
//! ```
//! use asip_explorer::cache::LruCache;
//!
//! let mut cache = LruCache::default(); // unbounded until told otherwise
//! cache.set_capacity(Some(2));
//! cache.insert("fir", 1);
//! cache.insert("sewha", 2);
//! assert_eq!(cache.get(&"fir"), Some(&1)); // refreshes "fir"
//! let evicted = cache.insert("dft", 3);    // over capacity…
//! assert_eq!(evicted, 1);                  // …evicts LRU "sewha"
//! assert_eq!(cache.get(&"sewha"), None);
//! assert_eq!(cache.len(), 2);
//! ```

use crate::artifact::{Stage, STAGE_COUNT};
use crate::tier::{ArtifactTier, TierCounters, TierRead, TierStats};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

/// A hash map with an optional entry-count bound and least-recently-used
/// eviction.
///
/// Recency is tracked with a monotonic tick stamped on every `get` and
/// `insert`; eviction scans for the minimum stamp. The scan is `O(len)`,
/// which is the right trade for stage caches: capacities are small, the
/// values behind them cost milliseconds to recompute, and the map lives
/// under a `Mutex` where a linked-list LRU would buy nothing.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: Option<usize>,
    tick: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<K, V> Default for LruCache<K, V> {
    fn default() -> Self {
        LruCache {
            map: HashMap::new(),
            capacity: None,
            tick: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            &e.value
        })
    }

    /// Insert (or replace) an entry, evicting least-recently-used
    /// entries as needed to respect the capacity. Returns how many
    /// entries were evicted (0 when unbounded or under capacity).
    pub fn insert(&mut self, key: K, value: V) -> u64 {
        let mut evicted = 0;
        if let Some(cap) = self.capacity {
            if !self.map.contains_key(&key) {
                while self.map.len() >= cap.max(1) && self.evict_one() {
                    evicted += 1;
                }
            }
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
        evicted
    }

    /// Set or clear the entry bound (`None` = unbounded; a bound of 0 is
    /// treated as 1 so the cache always holds the newest entry).
    /// Shrinking below the current size evicts immediately; returns the
    /// eviction count.
    pub fn set_capacity(&mut self, capacity: Option<usize>) -> u64 {
        self.capacity = capacity;
        let mut evicted = 0;
        if let Some(cap) = capacity {
            while self.map.len() > cap.max(1) && self.evict_one() {
                evicted += 1;
            }
        }
        evicted
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is present, without refreshing its recency.
    pub fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Drop every entry (the bound survives).
    pub fn clear(&mut self) {
        self.map.clear();
        self.tick = 0;
    }

    /// Remove one entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|e| e.value)
    }

    /// Visit every cached value without touching recency, in no
    /// particular order. Used by the session to aggregate per-engine
    /// counters (e.g. run-state pool stats) into its [`CacheStats`]
    /// snapshot.
    ///
    /// [`CacheStats`]: crate::CacheStats
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.map.values().map(|e| &e.value)
    }

    /// Remove and return the least-recently-used entry, or `None` when
    /// empty. This is the primitive byte-budgeted callers
    /// ([`MemoryTier`]) build on: they need the evicted *value* back to
    /// keep their size accounting exact.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())?;
        let value = self.map.remove(&oldest)?.value;
        Some((oldest, value))
    }

    fn evict_one(&mut self) -> bool {
        self.pop_lru().is_some()
    }
}

// -- the in-memory staging tier ----------------------------------------

/// Default byte budget of a [`MemoryTier`]: generous next to a full
/// warm-suite prefetch (a complete twelve-benchmark pipeline is a few
/// MiB of payloads) while bounding a pathological sweep.
pub const DEFAULT_STAGING_BUDGET: u64 = 64 << 20;

#[derive(Debug, Default)]
struct MemoryState {
    lru: LruCache<(Stage, u64), Vec<u8>>,
    bytes: u64,
    stage_entries: [u64; STAGE_COUNT],
    stage_bytes: [u64; STAGE_COUNT],
}

impl MemoryState {
    fn insert(&mut self, stage: Stage, key: u64, payload: &[u8], budget: u64) {
        if let Some(old) = self.lru.remove(&(stage, key)) {
            self.forget(stage, old.len() as u64);
        }
        self.lru.insert((stage, key), payload.to_vec());
        self.bytes += payload.len() as u64;
        self.stage_entries[stage as usize] += 1;
        self.stage_bytes[stage as usize] += payload.len() as u64;
        while self.bytes > budget {
            let Some(((s, _), evicted)) = self.lru.pop_lru() else {
                break;
            };
            self.forget(s, evicted.len() as u64);
        }
    }

    fn forget(&mut self, stage: Stage, bytes: u64) {
        self.bytes -= bytes;
        self.stage_entries[stage as usize] -= 1;
        self.stage_bytes[stage as usize] -= bytes;
    }
}

/// The in-memory byte tier: a thread-safe, byte-budgeted LRU of encoded
/// artifact payloads implementing [`ArtifactTier`].
///
/// This is the stack's *staging* tier
/// ([`persistent`](ArtifactTier::persistent)` == false`): computed
/// artifacts are not written through to it — they already live, decoded,
/// in the session's typed stage caches. Its entries come from the
/// parallel suite prefetcher
/// ([`Explorer::prefetch`](crate::Explorer::prefetch)), which batch-reads
/// warm disk payloads into it so the subsequent stage requests decode
/// from memory instead of performing serial disk reads; every request it
/// serves is counted as a `prefetch_hit` in
/// [`CacheStats`](crate::CacheStats).
///
/// ```
/// use asip_explorer::artifact::Stage;
/// use asip_explorer::cache::MemoryTier;
/// use asip_explorer::tier::{ArtifactTier, TierRead};
///
/// let tier = MemoryTier::with_budget(1024);
/// assert!(tier.put(Stage::Compile, 7, b"payload"));
/// assert!(tier.contains(Stage::Compile, 7));
/// assert!(matches!(tier.get(Stage::Compile, 7), TierRead::Hit(p) if p == b"payload"));
/// assert!(matches!(tier.get(Stage::Compile, 8), TierRead::Miss));
/// assert_eq!(tier.totals().bytes, 7);
/// assert!(!tier.persistent(), "a staging buffer, not a store");
/// ```
#[derive(Debug)]
pub struct MemoryTier {
    state: Mutex<MemoryState>,
    counters: TierCounters,
    budget: u64,
}

impl Default for MemoryTier {
    fn default() -> Self {
        MemoryTier::new()
    }
}

impl MemoryTier {
    /// A staging tier with the [default byte
    /// budget](DEFAULT_STAGING_BUDGET).
    pub fn new() -> Self {
        MemoryTier::with_budget(DEFAULT_STAGING_BUDGET)
    }

    /// A staging tier bounded to at most `budget` payload bytes;
    /// least-recently-used entries are evicted first when an insert
    /// overflows the budget. A budget of 0 keeps nothing (every `put`
    /// inserts, then immediately evicts back under budget).
    pub fn with_budget(budget: u64) -> Self {
        MemoryTier {
            state: Mutex::new(MemoryState::default()),
            counters: TierCounters::default(),
            budget,
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Drop every staged payload (counters are untouched; use
    /// [`ArtifactTier::reset_counters`] for those).
    pub fn clear(&self) {
        let mut state = crate::tier::lock(&self.state);
        *state = MemoryState::default();
    }
}

impl ArtifactTier for MemoryTier {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn get(&self, stage: Stage, key: u64) -> TierRead {
        let mut state = crate::tier::lock(&self.state);
        match state.lru.get(&(stage, key)) {
            Some(payload) => {
                let payload = payload.clone();
                self.counters.count_hit(stage);
                TierRead::Hit(payload)
            }
            None => {
                self.counters.count_miss(stage);
                TierRead::Miss
            }
        }
    }

    fn put(&self, stage: Stage, key: u64, payload: &[u8]) -> bool {
        let mut state = crate::tier::lock(&self.state);
        state.insert(stage, key, payload, self.budget);
        self.counters.count_write(stage);
        true
    }

    fn contains(&self, stage: Stage, key: u64) -> bool {
        crate::tier::lock(&self.state)
            .lru
            .contains_key(&(stage, key))
    }

    fn stats(&self, stage: Stage) -> TierStats {
        let occupancy = {
            let state = crate::tier::lock(&self.state);
            (
                state.stage_entries[stage as usize],
                state.stage_bytes[stage as usize],
            )
        };
        TierStats {
            entries: occupancy.0,
            bytes: occupancy.1,
            ..self.counters.snapshot(stage)
        }
    }

    fn persistent(&self) -> bool {
        false
    }

    fn mark_corrupt(&self, stage: Stage, key: u64) {
        let mut state = crate::tier::lock(&self.state);
        if let Some(old) = state.lru.remove(&(stage, key)) {
            state.forget(stage, old.len() as u64);
        }
        self.counters.demote_hit(stage);
    }

    fn reset_counters(&self) {
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_by_default() {
        let mut c = LruCache::default();
        for i in 0..100 {
            assert_eq!(c.insert(i, i * 10), 0);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.get(&42), Some(&420));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::default();
        c.set_capacity(Some(2));
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a: b is now LRU
        assert_eq!(c.insert("c", 3), 1);
        assert_eq!(c.get(&"b"), None, "b was evicted, not a");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn replacing_an_entry_never_evicts() {
        let mut c = LruCache::default();
        c.set_capacity(Some(2));
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.insert("a", 10), 0, "replacement is not growth");
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut c = LruCache::default();
        for i in 0..5 {
            c.insert(i, i);
        }
        assert_eq!(c.set_capacity(Some(2)), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&3), Some(&3), "newest entries survive the shrink");
        assert_eq!(c.get(&4), Some(&4));
    }

    #[test]
    fn capacity_zero_keeps_the_newest_entry() {
        let mut c = LruCache::default();
        c.set_capacity(Some(0));
        c.insert("a", 1);
        assert_eq!(c.insert("b", 2), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn clear_keeps_the_bound() {
        let mut c = LruCache::default();
        c.set_capacity(Some(1));
        c.insert("a", 1);
        c.clear();
        assert_eq!(c.len(), 0);
        c.insert("b", 2);
        assert_eq!(c.insert("c", 3), 1, "the bound survived the clear");
    }

    #[test]
    fn pop_lru_returns_oldest_first() {
        let mut c = LruCache::default();
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a: b is now LRU
        assert_eq!(c.pop_lru(), Some(("b", 2)));
        assert_eq!(c.pop_lru(), Some(("a", 1)));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn memory_tier_respects_its_byte_budget_lru_first() {
        let tier = MemoryTier::with_budget(10);
        tier.put(Stage::Compile, 1, b"aaaa"); // 4 bytes
        tier.put(Stage::Profile, 2, b"bbbb"); // 8 bytes
                                              // refresh entry 1, then overflow: entry 2 is LRU and must go
        assert!(matches!(tier.get(Stage::Compile, 1), TierRead::Hit(_)));
        tier.put(Stage::Schedule, 3, b"cccc"); // 12 > 10 → evict
        assert!(tier.contains(Stage::Compile, 1));
        assert!(!tier.contains(Stage::Profile, 2), "LRU entry evicted");
        assert!(tier.contains(Stage::Schedule, 3));
        let totals = tier.totals();
        assert_eq!(totals.bytes, 8);
        assert_eq!(totals.entries, 2);
        // per-stage occupancy adds up
        assert_eq!(tier.stats(Stage::Compile).bytes, 4);
        assert_eq!(tier.stats(Stage::Profile).entries, 0);
    }

    #[test]
    fn memory_tier_replacement_keeps_accounting_exact() {
        let tier = MemoryTier::with_budget(100);
        tier.put(Stage::Compile, 1, b"xxxxxxxx");
        tier.put(Stage::Compile, 1, b"yy");
        assert_eq!(tier.totals().bytes, 2, "old size released on replace");
        assert_eq!(tier.totals().entries, 1);
        // mark_corrupt always follows a hit in the stack's flow
        assert!(matches!(tier.get(Stage::Compile, 1), TierRead::Hit(_)));
        tier.mark_corrupt(Stage::Compile, 1);
        assert_eq!(tier.totals().hits, 0, "the hit was demoted");
        assert_eq!(tier.totals().bytes, 0);
        assert_eq!(tier.totals().entries, 0);
        assert_eq!(tier.totals().corrupt, 1);
        tier.clear();
        let tier = MemoryTier::with_budget(0);
        tier.put(Stage::Compile, 1, b"z");
        assert_eq!(tier.totals().entries, 0, "zero budget keeps nothing");
    }
}
