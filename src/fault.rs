//! Deterministic, seed-keyed fault injection for chaos testing.
//!
//! This module is the robustness counterpart of the `asip-gen` workload
//! generator: where the generator gives every feature *differential*
//! coverage from a seed, a [`FaultPlan`] gives every tier and the serve
//! daemon *chaos* coverage from a seed. A plan is built on the same
//! SplitMix64 discipline as `asip_gen::GenRng` (one independent stream
//! per fault site, so per-site probabilities are stable regardless of
//! how concurrent callers interleave their draws) and schedules the
//! full fault taxonomy:
//!
//! - **disk** — read I/O errors, write I/O errors, torn/partial writes
//!   at a plan-chosen byte offset, manifest corruption;
//! - **remote** — connection refusal, drop-mid-frame, timeouts,
//!   garbage frames, checksum tampering.
//!
//! Injection seams are deliberately narrow: [`ArtifactStore`] and
//! [`RemoteTier`] each expose an `arm_faults(plan)` hook guarded by a
//! relaxed atomic flag (a single predictable-false branch when no plan
//! is armed — the production hot path pays nothing), and the wrapper
//! [`FaultTier`] injects faults in front of *any* [`ArtifactTier`]
//! without the inner tier's cooperation. Every injected fault must
//! degrade exactly like the real fault it models: a counted miss, a
//! counted corrupt entry, a counted retry — never a wrong byte and
//! never a panic escaping the tier contract. `tests/chaos.rs` sweeps
//! seeded plans through full sessions and reconciles the plan's
//! [`FaultCounts`] against the session counters; see
//! `docs/robustness.md` for the taxonomy and the guarantees.
//!
//! [`ArtifactStore`]: crate::store::ArtifactStore
//! [`RemoteTier`]: crate::remote::RemoteTier

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::artifact::Stage;
use crate::tier::{ArtifactTier, TierRead, TierStats};

/// The artifact key [`FaultTier::panic_probe`] panics on — used by the
/// `serve --chaos-panic` smoke flow to prove the daemon survives a
/// panicking stage lookup. ASCII `"panic"` as a little-endian integer.
pub const PANIC_PROBE_KEY: u64 = 0x0063_696e_6170;

/// SplitMix64 — the same generator discipline as `asip_gen::GenRng`,
/// duplicated here so the fault layer stays free of cross-crate
/// dependencies. For seed 0 the first two outputs are
/// `0xE220_A839_7B1D_CDAF`, `0x6E78_9E6A_A1B9_65F4` (pinned below).
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator whose whole future stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// True with probability `percent`/100.
    pub fn percent(&mut self, percent: u8) -> bool {
        match percent {
            0 => false,
            p if p >= 100 => true,
            p => self.below(100) < u64::from(p),
        }
    }
}

/// One injectable fault kind — the index into a plan's per-site RNG
/// streams and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A disk read fails with an I/O error (store degrades to a miss).
    DiskRead,
    /// A disk write fails before any byte lands (put reports `false`).
    DiskWrite,
    /// A disk write tears: a truncated prefix of the entry reaches the
    /// final path, as if the process died mid-write.
    TornWrite,
    /// The store manifest is written corrupted (truncated + scribbled).
    ManifestCorrupt,
    /// A remote connect is refused before dialing.
    ConnectRefused,
    /// A remote connection dies mid-frame (partial write, or EOF
    /// mid-read).
    DropMidFrame,
    /// A remote read times out.
    Timeout,
    /// A received frame is garbled (client-side bit flip).
    GarbageFrame,
    /// A sent frame's bytes are tampered so the peer's checksum check
    /// fails.
    ChecksumTamper,
}

/// Number of [`FaultSite`] variants (length of per-site arrays).
pub const FAULT_SITE_COUNT: usize = 9;

impl FaultSite {
    /// All sites, in counter order.
    pub fn all() -> [FaultSite; FAULT_SITE_COUNT] {
        [
            FaultSite::DiskRead,
            FaultSite::DiskWrite,
            FaultSite::TornWrite,
            FaultSite::ManifestCorrupt,
            FaultSite::ConnectRefused,
            FaultSite::DropMidFrame,
            FaultSite::Timeout,
            FaultSite::GarbageFrame,
            FaultSite::ChecksumTamper,
        ]
    }

    fn index(self) -> usize {
        match self {
            FaultSite::DiskRead => 0,
            FaultSite::DiskWrite => 1,
            FaultSite::TornWrite => 2,
            FaultSite::ManifestCorrupt => 3,
            FaultSite::ConnectRefused => 4,
            FaultSite::DropMidFrame => 5,
            FaultSite::Timeout => 6,
            FaultSite::GarbageFrame => 7,
            FaultSite::ChecksumTamper => 8,
        }
    }
}

/// Per-site injection rates in percent (0 disables a site entirely —
/// disabled sites draw nothing from their stream, so enabling one site
/// never perturbs another's schedule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Disk read I/O error rate.
    pub disk_read_error: u8,
    /// Disk write I/O error rate.
    pub disk_write_error: u8,
    /// Torn (partial) disk write rate.
    pub torn_write: u8,
    /// Manifest corruption rate (per manifest flush).
    pub manifest_corruption: u8,
    /// Remote connect refusal rate.
    pub connect_refused: u8,
    /// Drop-mid-frame rate (per connection).
    pub drop_mid_frame: u8,
    /// Remote read timeout rate (per connection).
    pub timeout: u8,
    /// Garbled received frame rate (per connection).
    pub garbage_frame: u8,
    /// Tampered sent frame rate (per connection).
    pub checksum_tamper: u8,
}

impl FaultConfig {
    /// All disk sites at `rate` percent, remote sites disabled.
    pub fn disk(rate: u8) -> Self {
        FaultConfig {
            disk_read_error: rate,
            disk_write_error: rate,
            torn_write: rate,
            manifest_corruption: rate,
            ..FaultConfig::default()
        }
    }

    /// All remote sites at `rate` percent, disk sites disabled.
    pub fn remote(rate: u8) -> Self {
        FaultConfig {
            connect_refused: rate,
            drop_mid_frame: rate,
            timeout: rate,
            garbage_frame: rate,
            checksum_tamper: rate,
            ..FaultConfig::default()
        }
    }

    /// Every site at `rate` percent.
    pub fn uniform(rate: u8) -> Self {
        FaultConfig {
            disk_read_error: rate,
            disk_write_error: rate,
            torn_write: rate,
            manifest_corruption: rate,
            connect_refused: rate,
            drop_mid_frame: rate,
            timeout: rate,
            garbage_frame: rate,
            checksum_tamper: rate,
        }
    }

    /// The configured rate for `site`.
    pub fn rate(&self, site: FaultSite) -> u8 {
        match site {
            FaultSite::DiskRead => self.disk_read_error,
            FaultSite::DiskWrite => self.disk_write_error,
            FaultSite::TornWrite => self.torn_write,
            FaultSite::ManifestCorrupt => self.manifest_corruption,
            FaultSite::ConnectRefused => self.connect_refused,
            FaultSite::DropMidFrame => self.drop_mid_frame,
            FaultSite::Timeout => self.timeout,
            FaultSite::GarbageFrame => self.garbage_frame,
            FaultSite::ChecksumTamper => self.checksum_tamper,
        }
    }
}

/// Snapshot of how many faults a plan actually injected, per site.
/// `tests/chaos.rs` reconciles these against `CacheStats` /
/// `RemoteTotals` — every injected fault must be visible as a counted
/// degradation on the other side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected disk read errors.
    pub disk_read_errors: u64,
    /// Injected disk write errors.
    pub disk_write_errors: u64,
    /// Injected torn writes.
    pub torn_writes: u64,
    /// Injected manifest corruptions.
    pub manifest_corruptions: u64,
    /// Injected connect refusals.
    pub connects_refused: u64,
    /// Injected mid-frame drops.
    pub drops_mid_frame: u64,
    /// Injected timeouts.
    pub timeouts: u64,
    /// Injected garbled frames.
    pub garbage_frames: u64,
    /// Injected tampered frames.
    pub checksum_tampers: u64,
}

impl FaultCounts {
    /// Total injected faults across all sites.
    pub fn total(&self) -> u64 {
        self.disk_read_errors
            + self.disk_write_errors
            + self.torn_writes
            + self.manifest_corruptions
            + self.remote_total()
    }

    /// Total injected remote-transport faults.
    pub fn remote_total(&self) -> u64 {
        self.connects_refused
            + self.drops_mid_frame
            + self.timeouts
            + self.garbage_frames
            + self.checksum_tampers
    }
}

/// A seed-keyed schedule of injectable faults.
///
/// Construction is cheap and the plan is sharable (`Arc`) between a
/// store hook, a remote hook and any number of [`FaultTier`]s; each
/// fault site draws from its own SplitMix64 stream derived from the
/// seed, and every fired fault is counted for reconciliation.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    streams: [Mutex<FaultRng>; FAULT_SITE_COUNT],
    counts: [AtomicU64; FAULT_SITE_COUNT],
}

impl FaultPlan {
    /// A plan whose whole schedule is determined by `seed` + `config`.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        // Per-site streams are decorrelated by running the seed through
        // one SplitMix64 step per site index — the same "stream split"
        // idiom asip-gen uses for its per-section RNGs.
        let mut splitter = FaultRng::new(seed);
        let streams = std::array::from_fn(|_| Mutex::new(FaultRng::new(splitter.next_u64())));
        let counts = std::array::from_fn(|_| AtomicU64::new(0));
        FaultPlan {
            seed,
            config,
            streams,
            counts,
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-site rate configuration.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Roll `site`: true (and counted) when the fault fires. Sites with
    /// rate 0 return immediately without consuming a draw.
    pub fn roll(&self, site: FaultSite) -> bool {
        let rate = self.config.rate(site);
        if rate == 0 {
            return false;
        }
        let i = site.index();
        let fired = crate::tier::lock(&self.streams[i]).percent(rate);
        if fired {
            self.counts[i].fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Draw a value in `[0, bound)` from `site`'s stream without
    /// counting a fault — used to pick torn-write offsets and which
    /// byte to garble.
    pub fn draw(&self, site: FaultSite, bound: u64) -> u64 {
        crate::tier::lock(&self.streams[site.index()]).below(bound)
    }

    /// How many times `site` has fired so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.counts[site.index()].load(Ordering::Relaxed)
    }

    /// Snapshot every site's fired count.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            disk_read_errors: self.fired(FaultSite::DiskRead),
            disk_write_errors: self.fired(FaultSite::DiskWrite),
            torn_writes: self.fired(FaultSite::TornWrite),
            manifest_corruptions: self.fired(FaultSite::ManifestCorrupt),
            connects_refused: self.fired(FaultSite::ConnectRefused),
            drops_mid_frame: self.fired(FaultSite::DropMidFrame),
            timeouts: self.fired(FaultSite::Timeout),
            garbage_frames: self.fired(FaultSite::GarbageFrame),
            checksum_tampers: self.fired(FaultSite::ChecksumTamper),
        }
    }
}

/// An [`ArtifactTier`] wrapper that injects faults in front of any
/// inner tier: plan-scheduled read misses, garbled payloads and dropped
/// writes, plus two deterministic triggers used by the daemon-hardening
/// tests — a panic on one exact key ([`FaultTier::panic_on`]) and a
/// fixed per-get delay ([`FaultTier::with_get_delay`], for driving the
/// server into overload).
///
/// Garbled payloads exercise the stack's *healing* path: the typed
/// decode above the tier fails, `mark_corrupt` fires (forwarded to the
/// inner tier), and the recompute writes a fresh copy through.
#[derive(Debug)]
pub struct FaultTier {
    inner: Arc<dyn ArtifactTier>,
    plan: Option<Arc<FaultPlan>>,
    panic_on: Option<(Stage, u64)>,
    get_delay: Option<Duration>,
    panics: AtomicU64,
    delays: AtomicU64,
}

impl FaultTier {
    /// A transparent wrapper around `inner` with no faults armed.
    pub fn new(inner: Arc<dyn ArtifactTier>) -> Self {
        FaultTier {
            inner,
            plan: None,
            panic_on: None,
            get_delay: None,
            panics: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        }
    }

    /// Schedule probabilistic faults from `plan` (disk sites:
    /// [`FaultSite::DiskRead`] → miss, [`FaultSite::GarbageFrame`] →
    /// garbled hit, [`FaultSite::DiskWrite`] → dropped write).
    pub fn with_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Panic (deliberately) on every `get` of exactly `(stage, key)`.
    pub fn panic_on(mut self, stage: Stage, key: u64) -> Self {
        self.panic_on = Some((stage, key));
        self
    }

    /// A wrapper that panics on `(Stage::Compile, PANIC_PROBE_KEY)` —
    /// the key the `serve --panic-probe` client asks for.
    pub fn panic_probe(inner: Arc<dyn ArtifactTier>) -> Self {
        FaultTier::new(inner).panic_on(Stage::Compile, PANIC_PROBE_KEY)
    }

    /// Sleep `delay` inside every `get` (simulates a slow tier; used to
    /// drive the serve daemon against its in-flight bound).
    pub fn with_get_delay(mut self, delay: Duration) -> Self {
        self.get_delay = Some(delay);
        self
    }

    /// How many injected panics have been triggered (counted before
    /// unwinding).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// How many delayed gets have been served.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }
}

impl ArtifactTier for FaultTier {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn get(&self, stage: Stage, key: u64) -> TierRead {
        if self.panic_on == Some((stage, key)) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: panic on get({stage:?}, {key:#x})");
        }
        if let Some(delay) = self.get_delay {
            self.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        if let Some(plan) = &self.plan {
            if plan.roll(FaultSite::DiskRead) {
                return TierRead::Miss;
            }
            if plan.roll(FaultSite::GarbageFrame) {
                return match self.inner.get(stage, key) {
                    TierRead::Hit(mut bytes) => {
                        if bytes.is_empty() {
                            TierRead::Miss
                        } else {
                            let i = plan.draw(FaultSite::GarbageFrame, bytes.len() as u64) as usize;
                            bytes[i] ^= 0xFF;
                            TierRead::Hit(bytes)
                        }
                    }
                    other => other,
                };
            }
        }
        self.inner.get(stage, key)
    }

    fn put(&self, stage: Stage, key: u64, payload: &[u8]) -> bool {
        if let Some(plan) = &self.plan {
            if plan.roll(FaultSite::DiskWrite) {
                return false;
            }
        }
        self.inner.put(stage, key, payload)
    }

    fn contains(&self, stage: Stage, key: u64) -> bool {
        self.inner.contains(stage, key)
    }

    fn stats(&self, stage: Stage) -> TierStats {
        self.inner.stats(stage)
    }

    fn totals(&self) -> TierStats {
        self.inner.totals()
    }

    fn persistent(&self) -> bool {
        self.inner.persistent()
    }

    fn mark_corrupt(&self, stage: Stage, key: u64) {
        self.inner.mark_corrupt(stage, key);
    }

    fn reset_counters(&self) {
        self.inner.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MemoryTier;

    #[test]
    fn splitmix_stream_is_pinned() {
        // Must match asip_gen::GenRng exactly — same constants, same
        // reference stream for seed 0.
        let mut rng = FaultRng::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = FaultPlan::new(42, FaultConfig::uniform(30));
        let b = FaultPlan::new(42, FaultConfig::uniform(30));
        for site in FaultSite::all() {
            for _ in 0..200 {
                assert_eq!(a.roll(site), b.roll(site));
            }
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "30% over 1800 rolls must fire");

        let c = FaultPlan::new(43, FaultConfig::uniform(30));
        let mut diverged = false;
        for site in FaultSite::all() {
            for _ in 0..200 {
                diverged |= c.roll(site) != b.roll(site);
            }
        }
        assert!(diverged, "different seeds must diverge");
    }

    #[test]
    fn zero_rate_sites_never_fire_and_never_draw() {
        let plan = FaultPlan::new(7, FaultConfig::default());
        for site in FaultSite::all() {
            for _ in 0..100 {
                assert!(!plan.roll(site));
            }
        }
        assert_eq!(plan.counts(), FaultCounts::default());
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn enabling_one_site_does_not_perturb_another() {
        // DiskRead's schedule must be identical whether or not the
        // remote sites are enabled (independent per-site streams).
        let solo = FaultPlan::new(9, FaultConfig::disk(25));
        let mixed = FaultPlan::new(9, FaultConfig::uniform(25));
        for _ in 0..500 {
            assert_eq!(
                solo.roll(FaultSite::DiskRead),
                mixed.roll(FaultSite::DiskRead)
            );
        }
    }

    #[test]
    fn fault_tier_injects_misses_drops_and_garble() {
        let inner = Arc::new(MemoryTier::new());
        let plan = Arc::new(FaultPlan::new(
            3,
            FaultConfig {
                disk_read_error: 50,
                disk_write_error: 50,
                garbage_frame: 50,
                ..FaultConfig::default()
            },
        ));
        let tier = FaultTier::new(inner.clone()).with_plan(plan.clone());

        let mut dropped = 0u64;
        for key in 0..200u64 {
            if !tier.put(Stage::Compile, key, b"payload-bytes") {
                dropped += 1;
            }
        }
        assert_eq!(dropped, plan.counts().disk_write_errors);
        assert!(dropped > 0, "50% over 200 puts must drop some");

        let mut misses = 0u64;
        let mut garbled = 0u64;
        for key in 0..200u64 {
            match tier.get(Stage::Compile, key) {
                TierRead::Miss => misses += 1,
                TierRead::Hit(bytes) => {
                    if bytes != b"payload-bytes" {
                        garbled += 1;
                    }
                }
                TierRead::Corrupt => {}
            }
        }
        let counts = plan.counts();
        assert!(misses >= counts.disk_read_errors);
        assert!(counts.disk_read_errors > 0);
        // Garbles only show on keys the inner tier actually holds.
        assert!(garbled > 0, "some garbled hits must surface");
        assert!(garbled <= counts.garbage_frames);
    }

    #[test]
    fn unarmed_fault_tier_is_transparent() {
        let inner = Arc::new(MemoryTier::new());
        let tier = FaultTier::new(inner.clone());
        assert!(tier.put(Stage::Profile, 1, b"abc"));
        assert!(matches!(tier.get(Stage::Profile, 1), TierRead::Hit(b) if b == b"abc"));
        assert!(tier.contains(Stage::Profile, 1));
        assert_eq!(tier.panics(), 0);
        assert_eq!(tier.delays(), 0);
    }

    #[test]
    fn panic_on_fires_only_for_the_exact_key() {
        let inner = Arc::new(MemoryTier::new());
        let tier = FaultTier::panic_probe(inner);
        assert!(matches!(tier.get(Stage::Compile, 1), TierRead::Miss));
        assert_eq!(tier.panics(), 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tier.get(Stage::Compile, PANIC_PROBE_KEY)
        }));
        assert!(caught.is_err());
        assert_eq!(tier.panics(), 1);
    }
}
