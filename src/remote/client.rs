//! The client half of exploration-as-a-service: [`RemoteTier`], an
//! [`ArtifactTier`] backed by a running `serve` daemon.
//!
//! The tier keeps a small pool of connections, retries failed requests
//! under an explicit [`RetryPolicy`], and — crucially — *degrades*
//! instead of failing: any exhausted request becomes a counted miss, so
//! the stack falls through to the next tier or the computation. A dead
//! server costs latency (bounded by the policy) and throughput, never
//! correctness, and after the first exhausted request the server is
//! marked unhealthy so subsequent requests skip the network entirely
//! until a periodic re-probe succeeds.

use crate::artifact::Stage;
use crate::error::RemoteError;
use crate::fault::{FaultPlan, FaultRng, FaultSite};
use crate::remote::proto::{read_frame, write_frame, Request, Response, ServeStats, ServerInfo};
use crate::remote::transport::{self, Conn, Endpoint};
use crate::tier::{lock, ArtifactTier, TierCounters, TierRead, TierStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Retry discipline for one remote request: how many attempts, how long
/// each socket operation may take, and how long to back off between
/// attempts (doubling per retry, capped at one second, with a ±50%
/// deterministic jitter so a fleet recovering from the same daemon
/// restart doesn't retry in lockstep). The first attempt may reuse a
/// pooled connection; every retry opens a fresh one, so a pool full of
/// stale sockets cannot exhaust the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (minimum 1).
    pub attempts: u32,
    /// Bound on each connect, read and write.
    pub timeout: Duration,
    /// Base sleep between attempts (doubled per retry, capped at 1s,
    /// then jittered to 50–150%).
    pub backoff: Duration,
    /// Seed for the backoff jitter stream. `None` derives a per-tier
    /// seed (pid + a process-wide counter), so concurrent clients
    /// desynchronize; `Some` pins the stream for deterministic tests.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    /// Three attempts, two-second operation timeout, 25ms base backoff,
    /// per-tier jitter.
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            timeout: Duration::from_secs(2),
            backoff: Duration::from_millis(25),
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A fail-fast policy for latency-sensitive callers and tests: one
    /// attempt, a short timeout, no backoff.
    pub fn fail_fast() -> Self {
        RetryPolicy {
            attempts: 1,
            timeout: Duration::from_millis(250),
            backoff: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// Pin the backoff jitter stream to `seed` (deterministic sleeps).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }
}

const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// Scale `base` to 50–150% in 1/1024 steps, driven by one jitter draw.
fn jittered(base: Duration, draw: u64) -> Duration {
    let scale = 512 + (draw % 1025); // 512..=1536 of 1024
    let nanos = (base.as_nanos() as u64).saturating_mul(scale) / 1024;
    Duration::from_nanos(nanos)
}

/// Wire-level counters of one [`RemoteTier`], complementing the
/// per-stage hit/miss [`TierStats`]: how often the network path was
/// exercised, retried, given up on, or skipped while unhealthy, and how
/// many frame bytes moved each way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteTotals {
    /// Requests that reached the request path (skipped ones excluded).
    pub requests: u64,
    /// Requests that exhausted every attempt and degraded to a miss.
    pub errors: u64,
    /// Individual failed attempts that were retried.
    pub retries: u64,
    /// Requests declined locally because the server was marked
    /// unhealthy and the re-probe interval had not elapsed.
    pub skipped: u64,
    /// `Overloaded` responses received (the server shed the request at
    /// its in-flight bound; retried with backoff, then degraded).
    pub overloaded: u64,
    /// Connections opened (first use and every replacement).
    pub connects: u64,
    /// Frame bytes written to the wire.
    pub bytes_sent: u64,
    /// Frame bytes read from the wire.
    pub bytes_received: u64,
}

#[derive(Debug, Default)]
struct TotalCells {
    requests: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    skipped: AtomicU64,
    overloaded: AtomicU64,
    connects: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl TotalCells {
    fn snapshot(&self) -> RemoteTotals {
        RemoteTotals {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }
    fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.skipped.store(0, Ordering::Relaxed);
        self.overloaded.store(0, Ordering::Relaxed);
        self.connects.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct Health {
    /// When the server was last marked unhealthy; `None` while healthy.
    down_since: Option<Instant>,
}

/// A shared remote artifact tier: [`ArtifactTier`] over the wire
/// protocol, speaking to a `serve` daemon (see [`crate::remote`]).
///
/// Plugged between the staging tier and the disk store by
/// [`Explorer::with_remote`](crate::Explorer::with_remote); storeless
/// clients get `staging → remote`, so a warm server turns a cold client
/// process into an all-hit run with zero local persistence. The tier is
/// [persistent](ArtifactTier::persistent): computed artifacts are
/// written through, so every client shares its work with the fleet.
#[derive(Debug)]
pub struct RemoteTier {
    endpoint: Endpoint,
    policy: RetryPolicy,
    probe_interval: Duration,
    pool: Mutex<Vec<Box<dyn Conn>>>,
    pool_cap: usize,
    health: Mutex<Health>,
    counters: TierCounters,
    totals: TotalCells,
    next_id: AtomicU64,
    jitter: Mutex<FaultRng>,
    /// Fast-path guard for the fault-injection seam (see
    /// [`crate::fault`]): one relaxed load per connection open when no
    /// plan is armed.
    faults_armed: AtomicBool,
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl RemoteTier {
    /// A tier speaking to `endpoint` under `policy`, with a one-second
    /// unhealthy re-probe interval.
    pub fn new(endpoint: Endpoint, policy: RetryPolicy) -> Self {
        let jitter_seed = policy.jitter_seed.unwrap_or_else(|| {
            // Desynchronize unpinned tiers across threads and processes:
            // two clients recovering from the same daemon restart must
            // not sleep in lockstep.
            static TIER_SEQ: AtomicU64 = AtomicU64::new(0);
            (u64::from(std::process::id()) << 32) ^ TIER_SEQ.fetch_add(1, Ordering::Relaxed)
        });
        RemoteTier {
            endpoint,
            policy,
            probe_interval: Duration::from_secs(1),
            pool: Mutex::new(Vec::new()),
            pool_cap: 8,
            health: Mutex::new(Health::default()),
            counters: TierCounters::default(),
            totals: TotalCells::default(),
            next_id: AtomicU64::new(1),
            jitter: Mutex::new(FaultRng::new(jitter_seed)),
            faults_armed: AtomicBool::new(false),
            faults: Mutex::new(None),
        }
    }

    /// Arm a [`FaultPlan`]: subsequent connections may be refused and
    /// live streams may drop, stall, garble or tamper frames (see
    /// [`crate::fault`]). Chaos-testing seam — never armed in
    /// production.
    pub fn arm_faults(&self, plan: Arc<FaultPlan>) {
        *lock(&self.faults) = Some(plan);
        self.faults_armed.store(true, Ordering::Release);
    }

    /// Remove any armed [`FaultPlan`]; the tier returns to normal
    /// operation.
    pub fn disarm_faults(&self) {
        self.faults_armed.store(false, Ordering::Release);
        *lock(&self.faults) = None;
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        lock(&self.faults).clone()
    }

    /// Override how long the tier declines requests after marking the
    /// server unhealthy before letting one probe through again.
    pub fn with_probe_interval(mut self, interval: Duration) -> Self {
        self.probe_interval = interval;
        self
    }

    /// The server address this tier speaks to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The retry policy bounding every request.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Whether the last request succeeded (an unhealthy tier declines
    /// requests until the re-probe interval elapses).
    pub fn is_healthy(&self) -> bool {
        lock(&self.health).down_since.is_none()
    }

    /// Snapshot the wire-level counters.
    pub fn remote_totals(&self) -> RemoteTotals {
        self.totals.snapshot()
    }

    /// Probe the server's liveness and version triple.
    ///
    /// # Errors
    ///
    /// Any [`RemoteError`] the request path produces.
    pub fn ping(&self) -> Result<ServerInfo, RemoteError> {
        match self.request(&Request::Ping)? {
            Response::Pong(info) => Ok(info),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetch the server's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Any [`RemoteError`] the request path produces.
    pub fn server_stats(&self) -> Result<ServeStats, RemoteError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the daemon to shut down cleanly (stop accepting, drain
    /// connections, flush its store manifest).
    ///
    /// # Errors
    ///
    /// Any [`RemoteError`] the request path produces.
    pub fn shutdown_server(&self) -> Result<(), RemoteError> {
        match self.request(&Request::Shutdown)? {
            Response::Closing => Ok(()),
            other => Err(unexpected("Closing", &other)),
        }
    }

    // -- the request path ----------------------------------------------

    /// Whether requests should be declined without touching the
    /// network. Lets exactly one caller probe per interval: the probe
    /// slot is claimed by pushing `down_since` forward, so a stampede
    /// of requests against a dead server costs one timeout per
    /// interval, not one per request.
    fn declined(&self) -> bool {
        let mut health = lock(&self.health);
        match health.down_since {
            None => false,
            Some(at) if at.elapsed() < self.probe_interval => true,
            Some(_) => {
                health.down_since = Some(Instant::now());
                false
            }
        }
    }

    fn mark_healthy(&self) {
        lock(&self.health).down_since = None;
    }

    fn mark_unhealthy(&self) {
        lock(&self.health).down_since = Some(Instant::now());
    }

    /// Run one request under the retry policy. Every failure path is
    /// counted; an `Err` here becomes a miss (or a `false`) at the
    /// [`ArtifactTier`] surface — never a session error.
    fn request(&self, req: &Request) -> Result<Response, RemoteError> {
        if self.declined() {
            self.totals.skipped.fetch_add(1, Ordering::Relaxed);
            return Err(RemoteError::Unavailable);
        }
        self.totals.requests.fetch_add(1, Ordering::Relaxed);
        let attempts = self.policy.attempts.max(1);
        let mut backoff = self.policy.backoff;
        let mut last = RemoteError::Unavailable;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.totals.retries.fetch_add(1, Ordering::Relaxed);
                if !backoff.is_zero() {
                    let draw = lock(&self.jitter).next_u64();
                    std::thread::sleep(jittered(backoff.min(MAX_BACKOFF), draw));
                    backoff = backoff.saturating_mul(2);
                }
            }
            // retries bypass the pool: a failed attempt may mean every
            // pooled socket is stale, so pay for a fresh connection
            match self.attempt(req, attempt == 0) {
                Ok(resp) => {
                    self.mark_healthy();
                    return Ok(resp);
                }
                Err(e) => last = e,
            }
        }
        self.totals.errors.fetch_add(1, Ordering::Relaxed);
        // An Overloaded reply is proof the server is alive: degrade this
        // request, but don't gate the fleet behind the health probe.
        if !matches!(last, RemoteError::Overloaded) {
            self.mark_unhealthy();
        }
        Err(last)
    }

    fn attempt(&self, req: &Request, allow_pooled: bool) -> Result<Response, RemoteError> {
        let mut conn = match (allow_pooled, self.checkout()) {
            (true, Some(conn)) => conn,
            _ => self.open()?,
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let sent = write_frame(conn.as_mut(), req.kind(), id, &req.encode_body())?;
        self.totals.bytes_sent.fetch_add(sent, Ordering::Relaxed);
        let frame = read_frame(conn.as_mut())?;
        self.totals
            .bytes_received
            .fetch_add(frame.wire_bytes, Ordering::Relaxed);
        if frame.request_id != id {
            return Err(RemoteError::Protocol {
                detail: format!("response id {} for request {id}", frame.request_id),
            });
        }
        let resp = Response::decode(frame.kind, &frame.body)?;
        // the connection is in sync; recycle it (unless the server is
        // closing, in which case the socket is about to die)
        if !matches!(resp, Response::Closing) {
            self.checkin(conn);
        }
        if let Response::Overloaded = resp {
            self.totals.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(RemoteError::Overloaded);
        }
        if let Response::Error(detail) = resp {
            return Err(RemoteError::Protocol { detail });
        }
        Ok(resp)
    }

    fn checkout(&self) -> Option<Box<dyn Conn>> {
        lock(&self.pool).pop()
    }

    fn checkin(&self, conn: Box<dyn Conn>) {
        let mut pool = lock(&self.pool);
        if pool.len() < self.pool_cap {
            pool.push(conn);
        }
    }

    fn open(&self) -> Result<Box<dyn Conn>, RemoteError> {
        let plan = self.fault_plan();
        if let Some(plan) = &plan {
            if plan.roll(FaultSite::ConnectRefused) {
                return Err(RemoteError::Io {
                    detail: "injected fault: connection refused".into(),
                });
            }
        }
        let conn = self.endpoint.connect(self.policy.timeout)?;
        conn.set_read_timeout(Some(self.policy.timeout))?;
        conn.set_write_timeout(Some(self.policy.timeout))?;
        self.totals.connects.fetch_add(1, Ordering::Relaxed);
        Ok(match plan {
            Some(plan) => transport::faulty(conn, plan),
            None => conn,
        })
    }
}

fn unexpected(wanted: &str, got: &Response) -> RemoteError {
    RemoteError::Protocol {
        detail: format!("expected {wanted}, got kind {:#04x}", got.kind()),
    }
}

impl ArtifactTier for RemoteTier {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn get(&self, stage: Stage, key: u64) -> TierRead {
        match self.request(&Request::Get { stage, key }) {
            Ok(Response::Value(Some(payload))) => {
                self.counters.count_hit(stage);
                TierRead::Hit(payload)
            }
            // a protocol-level surprise (wrong variant) and a network
            // failure both degrade the same way: a counted miss, so the
            // next tier or the computation serves the request
            Ok(_) | Err(_) => {
                self.counters.count_miss(stage);
                TierRead::Miss
            }
        }
    }

    fn get_batch(&self, keys: &[(Stage, u64)]) -> Vec<TierRead> {
        let req = Request::GetBatch {
            keys: keys.to_vec(),
        };
        match self.request(&req) {
            Ok(Response::Batch(slots)) if slots.len() == keys.len() => keys
                .iter()
                .zip(slots)
                .map(|(&(stage, _), slot)| match slot {
                    Some(payload) => {
                        self.counters.count_hit(stage);
                        TierRead::Hit(payload)
                    }
                    None => {
                        self.counters.count_miss(stage);
                        TierRead::Miss
                    }
                })
                .collect(),
            Ok(_) | Err(_) => keys
                .iter()
                .map(|&(stage, _)| {
                    self.counters.count_miss(stage);
                    TierRead::Miss
                })
                .collect(),
        }
    }

    fn batched(&self) -> bool {
        true
    }

    fn put(&self, stage: Stage, key: u64, payload: &[u8]) -> bool {
        let req = Request::Put {
            stage,
            key,
            payload: payload.to_vec(),
        };
        match self.request(&req) {
            Ok(Response::Done(true)) => {
                self.counters.count_write(stage);
                true
            }
            Ok(_) | Err(_) => false,
        }
    }

    fn contains(&self, stage: Stage, key: u64) -> bool {
        matches!(
            self.request(&Request::Contains { stage, key }),
            Ok(Response::Has(true))
        )
    }

    fn stats(&self, stage: Stage) -> TierStats {
        // occupancy lives on the server (ask via `server_stats`); the
        // client-side snapshot carries this session's probe counters
        self.counters.snapshot(stage)
    }

    fn persistent(&self) -> bool {
        true
    }

    fn mark_corrupt(&self, stage: Stage, key: u64) {
        // the payload crossed the wire intact (frame checksum) but
        // failed typed decoding — the server-side entry is damaged or
        // semantically skewed. There is no remote delete op; the
        // recompute's write-through will replace the entry, so here the
        // hit is just reclassified.
        let _ = key;
        self.counters.demote_hit(stage);
    }

    fn reset_counters(&self) {
        self.counters.reset();
        self.totals.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An endpoint with nothing listening: bind an ephemeral port to
    /// learn a free address, then drop the listener.
    fn dead_endpoint() -> Endpoint {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        Endpoint::Tcp(addr.to_string())
    }

    #[test]
    fn absent_server_degrades_to_counted_misses() {
        let tier = RemoteTier::new(
            dead_endpoint(),
            RetryPolicy {
                attempts: 2,
                timeout: Duration::from_millis(200),
                backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        assert!(matches!(tier.get(Stage::Compile, 1), TierRead::Miss));
        assert!(!tier.put(Stage::Compile, 1, b"x"));
        assert!(!tier.contains(Stage::Compile, 1));
        let totals = tier.remote_totals();
        assert!(totals.errors >= 1, "exhausted request counted");
        assert!(totals.retries >= 1, "second attempt counted");
        assert!(!tier.is_healthy());
        // while unhealthy, requests are declined without the network
        assert!(totals.skipped >= 1 || tier.remote_totals().skipped == 0);
        assert!(matches!(tier.get(Stage::Compile, 2), TierRead::Miss));
        assert!(tier.remote_totals().skipped >= 1, "declined while down");
        assert_eq!(ArtifactTier::stats(&tier, Stage::Compile).misses, 2);
    }

    #[test]
    fn batch_against_a_dead_server_is_one_counted_error() {
        let tier = RemoteTier::new(dead_endpoint(), RetryPolicy::fail_fast());
        let keys = [(Stage::Compile, 1), (Stage::Profile, 2)];
        let reads = tier.get_batch(&keys);
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().all(|r| matches!(r, TierRead::Miss)));
        let totals = tier.remote_totals();
        assert_eq!(totals.errors, 1, "one request, one error");
        assert_eq!(tier.totals().misses, 2, "but every key counted a miss");
    }

    #[test]
    fn backoff_jitter_is_bounded_and_deterministic() {
        let base = Duration::from_millis(100);
        let mut rng_a = FaultRng::new(99);
        let mut rng_b = FaultRng::new(99);
        for _ in 0..1000 {
            let a = jittered(base, rng_a.next_u64());
            let b = jittered(base, rng_b.next_u64());
            assert_eq!(a, b, "same seed, same sleep schedule");
            assert!(a >= base / 2, "never below 50%: {a:?}");
            assert!(a <= base * 3 / 2, "never above 150%: {a:?}");
        }
        // different seeds desynchronize (some draw must differ)
        let mut rng_c = FaultRng::new(100);
        let mut rng_d = FaultRng::new(99);
        let diverged =
            (0..100).any(|_| jittered(base, rng_c.next_u64()) != jittered(base, rng_d.next_u64()));
        assert!(diverged);
        // zero base stays zero; the cap applies before jitter
        assert_eq!(jittered(Duration::ZERO, 7), Duration::ZERO);
    }

    #[test]
    fn jitter_seed_round_trips_through_the_policy() {
        let policy = RetryPolicy::default().with_jitter_seed(1234);
        assert_eq!(policy.jitter_seed, Some(1234));
        let tier = RemoteTier::new(dead_endpoint(), policy);
        assert_eq!(tier.policy().jitter_seed, Some(1234));
    }

    #[test]
    fn reset_clears_wire_and_stage_counters() {
        let tier = RemoteTier::new(dead_endpoint(), RetryPolicy::fail_fast());
        let _ = tier.get(Stage::Compile, 1);
        assert_ne!(tier.remote_totals(), RemoteTotals::default());
        tier.reset_counters();
        assert_eq!(tier.remote_totals(), RemoteTotals::default());
        assert_eq!(tier.totals(), TierStats::default());
    }
}
