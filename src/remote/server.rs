//! The daemon half of exploration-as-a-service: [`serve`] runs one warm
//! [`Explorer`] session behind a socket and answers artifact operations
//! from its tier stack.
//!
//! The daemon is deliberately thin: it does not compute on behalf of
//! clients (a `get` miss is a miss — the *client* computes and writes
//! the result back through `put`), so a slow client cannot occupy the
//! server with stage work. What the server provides is its resident
//! tier stack — staging memory plus disk store — shared across every
//! client process, and a `stats` op exposing its own session counters
//! so tests can observe single-flight behaviour fleet-wide.
//!
//! Threading model: one accept thread polls the listener under a short
//! interval so the stop flag stays responsive; each accepted connection
//! gets its own thread that serves frames until the peer hangs up, the
//! idle timeout passes, or shutdown is requested. Shutdown (the
//! [`Request::Shutdown`](crate::remote::Request) op or
//! [`ServerHandle::request_shutdown`]) stops the accept loop, waits
//! bounded for in-flight connections to drain, and flushes the store
//! manifest so a later cold start sees every entry.

use crate::remote::proto::{
    read_frame_after, write_frame, Request, Response, ServeStats, ServerInfo, PROTO_VERSION,
};
use crate::remote::transport::{Conn, Endpoint, Listener};
use crate::session::Explorer;
use crate::store::{StoreGcConfig, FORMAT_VERSION};
use crate::tier::TierRead;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`serve`] daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Bound on each read/write once a frame has started. A slow
    /// client that stalls mid-frame (or stops draining responses) is
    /// cut loose after this long rather than pinning its thread.
    pub io_timeout: Duration,
    /// How often the accept loop and idle connections re-check the
    /// stop flag; also the worst-case wait before a new connection is
    /// accepted, so it bounds per-request latency for short-lived
    /// clients, and the upper bound on shutdown latency per thread.
    pub poll_interval: Duration,
    /// Bound on *data* requests (`get`/`get_batch`/`put`/`contains`)
    /// being served at once, across all connections. A request landing
    /// at the bound is shed with [`Response::Overloaded`] — a typed,
    /// retryable answer, not an error — so a client stampede degrades
    /// to client-side recompute instead of queueing without bound.
    /// Control ops (`ping`/`stats`/`shutdown`) are exempt: health
    /// probes and drain must work precisely when the daemon is busiest.
    pub max_inflight: usize,
    /// Budget for answering one request. Only `get_batch` can run long
    /// enough to matter: once the deadline passes, remaining keys in
    /// the batch are answered `None` (each counted as
    /// `deadline_truncated`), which the client treats as misses and
    /// recomputes — degraded, never wrong.
    pub request_deadline: Duration,
    /// How long a connection may sit idle (no frame started) before the
    /// daemon reaps it to bound thread count against clients that
    /// connect and forget. Reaps are counted as `idle_reaped`.
    pub idle_timeout: Duration,
}

impl Default for ServeOptions {
    /// Ten-second I/O bound, 5ms stop-flag/accept poll (a connection
    /// landing mid-sleep waits a full interval, so a coarse poll is a
    /// per-connection latency floor), 64 in-flight data requests,
    /// thirty-second request deadline, sixty-second idle reap.
    fn default() -> Self {
        ServeOptions {
            io_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(5),
            max_inflight: 64,
            request_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// How long [`serve`]'s shutdown path waits for in-flight connections
/// before abandoning them (their threads still exit on their next
/// stop-flag poll; only the *wait* is bounded).
const DRAIN_BOUND: Duration = Duration::from_secs(5);

#[derive(Debug, Default)]
struct ServeCounters {
    requests: AtomicU64,
    gets: AtomicU64,
    batch_keys: AtomicU64,
    puts: AtomicU64,
    contains: AtomicU64,
    pings: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    connections: AtomicU64,
    frame_errors: AtomicU64,
    overloaded: AtomicU64,
    panics: AtomicU64,
    deadline_truncated: AtomicU64,
    idle_reaped: AtomicU64,
}

struct Shared {
    session: Arc<Explorer>,
    counters: ServeCounters,
    stop: AtomicBool,
    active: AtomicUsize,
    inflight: AtomicUsize,
    options: ServeOptions,
}

/// RAII claim on one of the daemon's [`ServeOptions::max_inflight`]
/// data-request slots; releases on drop, panic or not.
struct InflightSlot<'a> {
    shared: &'a Shared,
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Whether a request occupies an in-flight slot. Control ops are
/// exempt so probes and shutdown work under overload.
fn is_data_op(req: &Request) -> bool {
    matches!(
        req,
        Request::Get { .. }
            | Request::GetBatch { .. }
            | Request::Put { .. }
            | Request::Contains { .. }
    )
}

impl Shared {
    fn add(&self, cell: &AtomicU64, n: u64) {
        cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Claim an in-flight slot, or `None` at the bound. Optimistic
    /// add-then-check keeps the claim a single atomic in the common
    /// case; the transient overshoot only ever sheds harder, never
    /// admits past the bound.
    fn try_acquire_slot(&self) -> Option<InflightSlot<'_>> {
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.options.max_inflight {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(InflightSlot { shared: self })
    }

    /// Assemble the stats reply: wire counters from the daemon,
    /// per-stage compute counts and tier totals from the session.
    fn stats(&self) -> ServeStats {
        let cache = self.session.cache_stats();
        let c = &self.counters;
        ServeStats {
            requests: c.requests.load(Ordering::Relaxed),
            gets: c.gets.load(Ordering::Relaxed),
            batch_keys: c.batch_keys.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            contains: c.contains.load(Ordering::Relaxed),
            pings: c.pings.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            connections: c.connections.load(Ordering::Relaxed),
            frame_errors: c.frame_errors.load(Ordering::Relaxed),
            overloaded: c.overloaded.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            deadline_truncated: c.deadline_truncated.load(Ordering::Relaxed),
            idle_reaped: c.idle_reaped.load(Ordering::Relaxed),
            stage_computes: crate::artifact::Stage::all()
                .into_iter()
                .map(|s| (s.name().to_string(), cache.stage(s).misses))
                .collect(),
            tier_totals: self
                .session
                .tier_totals()
                .into_iter()
                .map(|(name, totals)| (name.to_string(), totals))
                .collect(),
        }
    }

    /// Serve a `get` probe from the resident stack, top tier down. A
    /// miss everywhere stays a miss — the client computes.
    fn lookup(&self, stage: crate::artifact::Stage, key: u64) -> Option<Vec<u8>> {
        for tier in self.session.tier_stack().tiers() {
            if let TierRead::Hit(payload) = tier.get(stage, key) {
                self.add(&self.counters.hits, 1);
                return Some(payload);
            }
        }
        self.add(&self.counters.misses, 1);
        None
    }

    /// Answer one decoded request. `deadline` bounds the work: only
    /// `get_batch` iterates long enough to check it, truncating the
    /// remaining keys to `None` once it passes.
    fn handle(&self, req: Request, deadline: Instant) -> Response {
        match req {
            Request::Ping => {
                self.add(&self.counters.pings, 1);
                Response::Pong(ServerInfo {
                    proto_version: PROTO_VERSION,
                    format_version: FORMAT_VERSION,
                    crate_version: env!("CARGO_PKG_VERSION").to_string(),
                })
            }
            Request::Get { stage, key } => {
                self.add(&self.counters.gets, 1);
                Response::Value(self.lookup(stage, key))
            }
            Request::GetBatch { keys } => {
                self.add(&self.counters.batch_keys, keys.len() as u64);
                let mut reads = Vec::with_capacity(keys.len());
                for (stage, key) in keys {
                    if Instant::now() >= deadline {
                        // a truncated slot is a miss to the client:
                        // it recomputes — degraded, never wrong
                        self.add(&self.counters.deadline_truncated, 1);
                        reads.push(None);
                        continue;
                    }
                    reads.push(self.lookup(stage, key));
                }
                Response::Batch(reads)
            }
            Request::Put {
                stage,
                key,
                payload,
            } => {
                self.add(&self.counters.puts, 1);
                let mut landed = false;
                for tier in self.session.tier_stack().tiers() {
                    if tier.persistent() {
                        landed |= tier.put(stage, key, &payload);
                    }
                }
                Response::Done(landed)
            }
            Request::Contains { stage, key } => {
                self.add(&self.counters.contains, 1);
                let has = self
                    .session
                    .tier_stack()
                    .tiers()
                    .iter()
                    .any(|t| t.contains(stage, key));
                Response::Has(has)
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Shutdown => Response::Closing,
        }
    }

    /// Admission control plus panic isolation around [`Shared::handle`].
    ///
    /// Data ops are shed with [`Response::Overloaded`] at the in-flight
    /// bound. A panic while handling (a poisoned artifact, a bug in a
    /// tier) is caught here: the panicking request gets a typed error
    /// response, the counter ticks, and the daemon — and every other
    /// connection — keeps serving.
    fn dispatch(&self, req: Request) -> Response {
        self.add(&self.counters.requests, 1);
        let _slot = if is_data_op(&req) {
            match self.try_acquire_slot() {
                Some(slot) => slot,
                None => {
                    self.add(&self.counters.overloaded, 1);
                    return Response::Overloaded;
                }
            }
        } else {
            // control ops bypass the bound; claim nothing
            return self.handle_isolated(req);
        };
        self.handle_isolated(req)
    }

    fn handle_isolated(&self, req: Request) -> Response {
        let deadline = Instant::now() + self.options.request_deadline;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.handle(req, deadline)))
        {
            Ok(response) => response,
            Err(payload) => {
                self.add(&self.counters.panics, 1);
                let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Response::Error(format!("request handler panicked: {detail}"))
            }
        }
    }
}

/// Serve one connection until the peer hangs up, the idle bound
/// elapses, a frame is undecipherable, or shutdown is requested.
fn serve_conn(shared: &Shared, mut conn: Box<dyn Conn>) {
    let opts = shared.options;
    let _ = conn.set_write_timeout(Some(opts.io_timeout));
    let mut idle_since = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // read the first header byte under the poll interval so the
        // stop flag stays responsive on idle connections …
        let _ = conn.set_read_timeout(Some(opts.poll_interval));
        let mut first = [0u8; 1];
        match conn.read(&mut first) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_since.elapsed() > opts.idle_timeout {
                    shared.add(&shared.counters.idle_reaped, 1);
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // … then bound the rest of the frame by the real I/O timeout
        let _ = conn.set_read_timeout(Some(opts.io_timeout));
        let frame = match read_frame_after(first[0], conn.as_mut()) {
            Ok(frame) => frame,
            Err(e) => {
                // structural damage: count it, answer best-effort (the
                // peer may already be gone), and drop the connection —
                // after a bad frame the stream cannot be trusted to be
                // on a frame boundary
                shared.add(&shared.counters.frame_errors, 1);
                let body = Response::Error(e.to_string()).encode_body();
                let _ = write_frame(conn.as_mut(), crate::remote::proto::kind::ERROR, 0, &body);
                return;
            }
        };
        shared.add(&shared.counters.bytes_in, frame.wire_bytes);
        let response = match Request::decode(frame.kind, &frame.body) {
            Ok(req) => shared.dispatch(req),
            Err(e) => {
                shared.add(&shared.counters.frame_errors, 1);
                Response::Error(e.to_string())
            }
        };
        let closing = matches!(response, Response::Closing);
        match write_frame(
            conn.as_mut(),
            response.kind(),
            frame.request_id,
            &response.encode_body(),
        ) {
            Ok(sent) => shared.add(&shared.counters.bytes_out, sent),
            Err(_) => return,
        }
        if closing {
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
        idle_since = Instant::now();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: Box<dyn Listener>) {
    let poll = shared.options.poll_interval;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.poll_accept(poll) {
            Ok(Some(conn)) => {
                shared.add(&shared.counters.connections, 1);
                shared.active.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    serve_conn(&shared, conn);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Ok(None) => {}
            Err(_) => std::thread::sleep(poll),
        }
    }
    // drain: wait (bounded) for in-flight connections, then flush the
    // manifest so a cold restart sees every entry written this run
    let deadline = Instant::now() + DRAIN_BOUND;
    while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(poll);
    }
    if let Some(store) = shared.session.store() {
        store.gc(&StoreGcConfig::default());
    }
}

/// A running [`serve`] daemon: its resolved endpoint, its counters and
/// the handle to stop and join it.
#[derive(Debug)]
pub struct ServerHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("stop", &self.stop.load(Ordering::SeqCst))
            .field("active", &self.active.load(Ordering::SeqCst))
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The endpoint the daemon is actually bound to. For `host:0` TCP
    /// binds this carries the kernel-assigned port — connect clients
    /// to *this*, not the address passed to [`serve`].
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The session the daemon serves from.
    pub fn session(&self) -> &Arc<Explorer> {
        &self.shared.session
    }

    /// Snapshot the daemon's statistics (same assembly as the wire
    /// `stats` op, without a round trip).
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Ask the daemon to stop. Returns immediately; the accept loop
    /// notices within one poll interval, drains and flushes. Use
    /// [`ServerHandle::join`] (or [`ServerHandle::shutdown`]) to wait.
    pub fn request_shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether the stop flag is set (by [`ServerHandle::request_shutdown`]
    /// or a wire `shutdown` op).
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Wait for the daemon to exit (after a stop was requested locally
    /// or over the wire). Returns the final statistics snapshot.
    pub fn join(mut self) -> ServeStats {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.shared.stats()
    }

    /// [`request_shutdown`](ServerHandle::request_shutdown) followed by
    /// [`join`](ServerHandle::join).
    pub fn shutdown(self) -> ServeStats {
        self.request_shutdown();
        self.join()
    }
}

impl Drop for ServerHandle {
    /// A dropped handle stops the daemon (best-effort, without
    /// waiting): a forgotten `serve` in a test must not leak an accept
    /// thread past the test body.
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Bind `endpoint` and serve `session`'s tier stack until shutdown.
///
/// The session is shared, not consumed: the caller may keep exploring
/// on it (warming the very stack clients read) while the daemon runs.
///
/// # Errors
///
/// Any [`io::Error`] from binding the endpoint. Runtime failures on
/// individual connections never surface here — they end that
/// connection (and count a frame error when structural).
pub fn serve(
    session: Arc<Explorer>,
    endpoint: &Endpoint,
    options: ServeOptions,
) -> io::Result<ServerHandle> {
    let listener = endpoint.bind()?;
    let resolved = listener.local_endpoint();
    let shared = Arc::new(Shared {
        session,
        counters: ServeCounters::default(),
        stop: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        inflight: AtomicUsize::new(0),
        options,
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("asip-serve-accept".into())
            .spawn(move || accept_loop(&shared, listener))?
    };
    Ok(ServerHandle {
        endpoint: resolved,
        shared,
        accept: Some(accept),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::client::{RemoteTier, RetryPolicy};
    use crate::tier::ArtifactTier;
    use crate::Explorer;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asip-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn loopback() -> Endpoint {
        Endpoint::Tcp("127.0.0.1:0".into())
    }

    #[test]
    fn daemon_serves_ping_put_get_contains_and_stats() {
        let dir = temp_dir("basic");
        let session = Arc::new(Explorer::new().with_store(&dir));
        let handle = serve(session, &loopback(), ServeOptions::default()).expect("binds");
        let tier = RemoteTier::new(handle.endpoint().clone(), RetryPolicy::default());

        let info = tier.ping().expect("ping answered");
        assert_eq!(info.proto_version, PROTO_VERSION);
        assert_eq!(info.format_version, FORMAT_VERSION);
        assert_eq!(info.crate_version, env!("CARGO_PKG_VERSION"));

        use crate::artifact::Stage;
        use crate::tier::TierRead;
        assert!(matches!(tier.get(Stage::Compile, 7), TierRead::Miss));
        assert!(!tier.contains(Stage::Compile, 7));
        assert!(tier.put(Stage::Compile, 7, b"payload"));
        assert!(tier.contains(Stage::Compile, 7));
        match tier.get(Stage::Compile, 7) {
            TierRead::Hit(p) => assert_eq!(p, b"payload"),
            other => panic!("expected hit, got {other:?}"),
        }

        let stats = tier.server_stats().expect("stats answered");
        assert_eq!(stats.pings, 1);
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.connections, 1, "requests reuse one pooled conn");
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);

        tier.shutdown_server().expect("closing acknowledged");
        let final_stats = handle.join();
        assert!(final_stats.requests >= stats.requests);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_round_trip_hits_and_misses_in_request_order() {
        let dir = temp_dir("batch");
        let session = Arc::new(Explorer::new().with_store(&dir));
        let handle = serve(session, &loopback(), ServeOptions::default()).expect("binds");
        let tier = RemoteTier::new(handle.endpoint().clone(), RetryPolicy::default());

        use crate::artifact::Stage;
        use crate::tier::TierRead;
        assert!(tier.put(Stage::Profile, 1, b"one"));
        assert!(tier.put(Stage::Profile, 3, b"three"));
        let reads = tier.get_batch(&[
            (Stage::Profile, 1),
            (Stage::Profile, 2),
            (Stage::Profile, 3),
        ]);
        assert!(matches!(&reads[0], TierRead::Hit(p) if p == b"one"));
        assert!(matches!(&reads[1], TierRead::Miss));
        assert!(matches!(&reads[2], TierRead::Hit(p) if p == b"three"));

        let stats = handle.shutdown();
        assert_eq!(stats.batch_keys, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_sheds_data_ops_but_answers_control_ops() {
        let dir = temp_dir("overload");
        let session = Arc::new(Explorer::new().with_store(&dir));
        let options = ServeOptions {
            max_inflight: 0,
            ..ServeOptions::default()
        };
        let handle = serve(session, &loopback(), options).expect("binds");
        let tier = RemoteTier::new(handle.endpoint().clone(), RetryPolicy::fail_fast());

        use crate::artifact::Stage;
        use crate::tier::TierRead;
        // every data op is shed server-side and degrades client-side
        assert!(matches!(tier.get(Stage::Compile, 1), TierRead::Miss));
        assert!(!tier.put(Stage::Compile, 1, b"payload"));
        assert!(!tier.contains(Stage::Compile, 1));
        // control ops bypass the bound: the daemon is saturated, not dead
        assert!(tier.ping().is_ok());
        let stats = tier.server_stats().expect("stats answered under overload");
        assert_eq!(stats.overloaded, 3);
        assert_eq!(
            stats.hits + stats.misses,
            0,
            "shed ops never touch the stack"
        );

        let totals = tier.remote_totals();
        assert_eq!(totals.overloaded, 3);
        assert_eq!(
            totals.skipped, 0,
            "overload is proof of life — it must not trip the health gate"
        );
        let _ = handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_request_is_isolated_and_counted() {
        use crate::cache::MemoryTier;
        use crate::fault::{FaultTier, PANIC_PROBE_KEY};
        let dir = temp_dir("panic");
        let probe = Arc::new(FaultTier::panic_probe(Arc::new(MemoryTier::new())));
        let session = Arc::new(Explorer::new().with_store(&dir).with_tier(probe));
        let handle = serve(session, &loopback(), ServeOptions::default()).expect("binds");
        let tier = RemoteTier::new(handle.endpoint().clone(), RetryPolicy::fail_fast())
            .with_probe_interval(Duration::ZERO);

        use crate::artifact::Stage;
        use crate::tier::TierRead;
        // the poisoned key panics in the handler; the client sees a
        // typed error response and degrades to a miss
        assert!(matches!(
            tier.get(Stage::Compile, PANIC_PROBE_KEY),
            TierRead::Miss
        ));
        // the daemon — and every later request — keeps serving
        assert!(tier.put(Stage::Compile, 7, b"payload"));
        assert!(matches!(
            tier.get(Stage::Compile, 7),
            TierRead::Hit(p) if p == b"payload"
        ));
        let stats = handle.shutdown();
        assert_eq!(stats.panics, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn idle_connections_are_reaped_and_counted() {
        let dir = temp_dir("idle");
        let session = Arc::new(Explorer::new().with_store(&dir));
        let options = ServeOptions {
            idle_timeout: Duration::from_millis(30),
            ..ServeOptions::default()
        };
        let handle = serve(session, &loopback(), options).expect("binds");
        // dial raw and never send a frame
        let conn = handle
            .endpoint()
            .connect(Duration::from_secs(1))
            .expect("dials");
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.stats().idle_reaped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handle.stats().idle_reaped, 1);
        drop(conn);
        let _ = handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_handle_stops_the_daemon() {
        let dir = temp_dir("drop");
        let session = Arc::new(Explorer::new().with_store(&dir));
        let handle = serve(session, &loopback(), ServeOptions::default()).expect("binds");
        let endpoint = handle.endpoint().clone();
        drop(handle);
        // the listener is gone: a fail-fast client sees a dead server
        let tier = RemoteTier::new(endpoint, RetryPolicy::fail_fast());
        assert!(tier.ping().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
