//! Exploration-as-a-service: share one warm artifact store across
//! machines and processes.
//!
//! The [`store`](crate::store) module made stage artifacts outlive a
//! process; this module makes them outlive a *machine boundary*. A
//! `serve` daemon (see [`serve`]) keeps one [`Explorer`](crate::Explorer)
//! session resident — staging memory plus disk store — and answers
//! artifact operations over a versioned binary protocol
//! ([`proto`]); clients plug a [`RemoteTier`] between their staging
//! tier and their disk store (or run storeless against the server
//! alone) via [`Explorer::with_remote`](crate::Explorer::with_remote).
//!
//! The design inherits the cache's core contract: *the remote tier can
//! degrade, never break*. Every failure — server absent, killed
//! mid-request, corrupt frame, protocol version skew, timeout — maps
//! to a counted miss, so the next tier or the computation serves the
//! request. A [`RetryPolicy`] bounds every socket operation, and an
//! unhealthy server is skipped entirely (one probe per interval) so a
//! dead daemon costs one timeout per second, not one per request.
//!
//! Module layout:
//!
//! - [`proto`] — the frame format and message bodies;
//! - [`transport`] — [`Endpoint`] addressing (TCP and Unix sockets)
//!   and the [`Conn`]/[`Listener`] abstractions;
//! - [`client`] — [`RemoteTier`], the
//!   [`ArtifactTier`](crate::tier::ArtifactTier) speaking the protocol;
//! - [`server`] — the [`serve`] daemon and its [`ServerHandle`].
//!
//! See `docs/serve.md` for the wire specification, the compatibility
//! policy and the operational topology.

pub mod client;
pub mod proto;
pub mod server;
pub mod transport;

pub use client::{RemoteTier, RemoteTotals, RetryPolicy};
pub use proto::{Request, Response, ServeStats, ServerInfo, PROTO_VERSION};
pub use server::{serve, ServeOptions, ServerHandle};
pub use transport::{Conn, Endpoint, Listener};
