//! The versioned binary wire protocol of the remote artifact tier.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! offset  size  field
//!      0     8  magic              b"ASIPRPC\n"
//!      8     4  protocol version   u32 LE (PROTO_VERSION)
//!     12     1  kind               message kind (see `kind`)
//!     13     8  request id         u64 LE, echoed by the response
//!     21     4  body length        u32 LE, at most MAX_BODY_BYTES
//!     25     8  body checksum      u64 LE, FNV-1a 64 over the body
//!     33     …  body               ArtifactCodec-encoded message
//! ```
//!
//! The framing reuses the store's building blocks on purpose: the same
//! FNV-1a checksum ([`crate::store`]), the same self-describing
//! [`ArtifactCodec`](crate::artifact::ArtifactCodec) primitives for the
//! body ([`crate::artifact`]), and
//! the same failure philosophy — any structural defect (bad magic,
//! oversize length, checksum mismatch, short read) is a typed
//! [`RemoteError`], never a panic or a misread. Version negotiation is
//! all-or-nothing like the store's `FORMAT_VERSION`: a peer announcing
//! a different [`PROTO_VERSION`] is rejected with
//! [`RemoteError::VersionSkew`] before its body is interpreted, and the
//! client degrades to local compute. See `docs/serve.md` for the
//! complete specification and compatibility policy.

use crate::artifact::{Decoder, Encoder, Stage};
use crate::error::RemoteError;
use crate::store::checksum;
use crate::tier::TierStats;
use std::io::{Read, Write};

/// Frame magic; distinct from the store's `ASIPART\n` so a store file
/// piped at a socket (or vice versa) is rejected at byte 5.
pub const PROTO_MAGIC: [u8; 8] = *b"ASIPRPC\n";

/// Protocol version. Bump on *any* change to the frame layout or to an
/// existing message's body encoding; peers reject mismatches outright
/// (no negotiation), mirroring the store's `FORMAT_VERSION` policy.
/// Adding a *new* message kind alone does not require a bump — an old
/// server answers an unknown kind with [`Response::Error`], which
/// clients degrade to a miss.
///
/// History: v2 — the [`Response::Overloaded`] kind was added (new kinds
/// alone are bump-free) *and* the `STATS` body grew the daemon
/// hardening counters (overloaded/panics/deadline/idle-reap), which
/// changes an existing body encoding and forces the bump.
pub const PROTO_VERSION: u32 = 2;

/// Upper bound on one frame's body. Generous (the largest suite
/// artifact is a few hundred KiB; a full prefetch batch is a few MiB)
/// while still rejecting a garbage length field before allocating.
pub const MAX_BODY_BYTES: u32 = 64 << 20;

/// Frame header size in bytes.
pub const HEADER_BYTES: usize = 33;

/// Message kinds. Requests have the high bit clear, responses set;
/// `ERROR` is the one response any request may receive.
pub mod kind {
    /// Liveness probe ([`Request::Ping`](super::Request::Ping)).
    pub const PING: u8 = 0x01;
    /// Single-entry read ([`Request::Get`](super::Request::Get)).
    pub const GET: u8 = 0x02;
    /// Bulk read ([`Request::GetBatch`](super::Request::GetBatch)).
    pub const GET_BATCH: u8 = 0x03;
    /// Entry write ([`Request::Put`](super::Request::Put)).
    pub const PUT: u8 = 0x04;
    /// Existence probe ([`Request::Contains`](super::Request::Contains)).
    pub const CONTAINS: u8 = 0x05;
    /// Server statistics ([`Request::Stats`](super::Request::Stats)).
    pub const STATS: u8 = 0x06;
    /// Clean shutdown ([`Request::Shutdown`](super::Request::Shutdown)).
    pub const SHUTDOWN: u8 = 0x07;
    /// Reply to `PING` ([`Response::Pong`](super::Response::Pong)).
    pub const PONG: u8 = 0x81;
    /// Reply to `GET` ([`Response::Value`](super::Response::Value)).
    pub const VALUE: u8 = 0x82;
    /// Reply to `GET_BATCH` ([`Response::Batch`](super::Response::Batch)).
    pub const BATCH: u8 = 0x83;
    /// Reply to `PUT` ([`Response::Done`](super::Response::Done)).
    pub const DONE: u8 = 0x84;
    /// Reply to `CONTAINS` ([`Response::Has`](super::Response::Has)).
    pub const HAS: u8 = 0x85;
    /// Reply to `STATS` ([`Response::Stats`](super::Response::Stats)).
    pub const STATS_REPLY: u8 = 0x86;
    /// Reply to `SHUTDOWN` ([`Response::Closing`](super::Response::Closing)).
    pub const CLOSING: u8 = 0x87;
    /// Load-shed reply to any data request
    /// ([`Response::Overloaded`](super::Response::Overloaded)).
    pub const OVERLOADED: u8 = 0x88;
    /// Error reply ([`Response::Error`](super::Response::Error)).
    pub const ERROR: u8 = 0xFF;
}

/// One client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness/version probe; answered with [`Response::Pong`].
    Ping,
    /// Read one entry; answered with [`Response::Value`].
    Get {
        /// The pipeline stage the entry belongs to.
        stage: Stage,
        /// The content-derived tier key.
        key: u64,
    },
    /// Read many entries in one round trip (the warm-prefetch path);
    /// answered with [`Response::Batch`], one slot per key in order.
    GetBatch {
        /// The `(stage, key)` pairs to probe.
        keys: Vec<(Stage, u64)>,
    },
    /// Write one entry through to the server's persistent tiers;
    /// answered with [`Response::Done`].
    Put {
        /// The pipeline stage the entry belongs to.
        stage: Stage,
        /// The content-derived tier key.
        key: u64,
        /// The complete encoded artifact payload.
        payload: Vec<u8>,
    },
    /// Probe for existence without counting a read; answered with
    /// [`Response::Has`].
    Contains {
        /// The pipeline stage the entry belongs to.
        stage: Stage,
        /// The content-derived tier key.
        key: u64,
    },
    /// Request the server's counters and tier totals; answered with
    /// [`Response::Stats`].
    Stats,
    /// Ask the daemon to stop accepting, drain connections and flush
    /// its store manifest; answered with [`Response::Closing`].
    Shutdown,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The server is alive; carries its version triple.
    Pong(ServerInfo),
    /// The probed entry's payload, or `None` for a miss.
    Value(Option<Vec<u8>>),
    /// One optional payload per requested key, in request order.
    Batch(Vec<Option<Vec<u8>>>),
    /// Whether the write landed on any persistent server tier.
    Done(bool),
    /// Whether the probed entry exists on any server tier.
    Has(bool),
    /// The server's counters, per-stage compute counts and tier totals.
    Stats(ServeStats),
    /// The daemon acknowledged [`Request::Shutdown`] and is draining.
    Closing,
    /// The daemon is at its in-flight request bound and shed this
    /// request. Retryable: clients back off (with jitter) and retry
    /// within their policy, then degrade to a miss — overload never
    /// marks the server unhealthy, because an `Overloaded` reply proves
    /// the daemon is alive.
    Overloaded,
    /// The request was understood but could not be served.
    Error(String),
}

/// The version triple a server announces in [`Response::Pong`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// The server's wire-protocol version ([`PROTO_VERSION`]).
    pub proto_version: u32,
    /// The server's store format version
    /// ([`crate::store::FORMAT_VERSION`]).
    pub format_version: u32,
    /// The server's crate version (`CARGO_PKG_VERSION`). Tier keys
    /// hash the crate version, so clients of a different release
    /// address disjoint entries — a skewed pairing is safe but always
    /// misses; `ping` surfaces it.
    pub crate_version: String,
}

/// A server-side statistics snapshot ([`Request::Stats`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeStats {
    /// Frames served (every request kind, errors included).
    pub requests: u64,
    /// `get` requests served.
    pub gets: u64,
    /// Keys probed via `get_batch` requests.
    pub batch_keys: u64,
    /// `put` requests served.
    pub puts: u64,
    /// `contains` requests served.
    pub contains: u64,
    /// `ping` requests served.
    pub pings: u64,
    /// `get`/`get_batch` probes answered with a payload.
    pub hits: u64,
    /// `get`/`get_batch` probes answered with a miss.
    pub misses: u64,
    /// Frame bytes received (headers included).
    pub bytes_in: u64,
    /// Frame bytes sent (headers included).
    pub bytes_out: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Frames rejected as structurally invalid.
    pub frame_errors: u64,
    /// Requests shed with [`Response::Overloaded`] at the in-flight
    /// bound.
    pub overloaded: u64,
    /// Request handlers that panicked (isolated per connection by
    /// `catch_unwind`; each answered with [`Response::Error`]).
    pub panics: u64,
    /// Batch keys left unserved because a request ran past its
    /// deadline (each answered as a miss).
    pub deadline_truncated: u64,
    /// Connections reaped after sitting idle past the idle timeout.
    pub idle_reaped: u64,
    /// Per-stage computation counts from the server session's own
    /// cache stats (`misses` == times the stage actually ran on the
    /// server) — the observable for single-flight assertions.
    pub stage_computes: Vec<(String, u64)>,
    /// `(tier name, summed stats)` for every tier in the server's
    /// stack, top to bottom.
    pub tier_totals: Vec<(String, TierStats)>,
}

impl ServeStats {
    /// Total stage computations the server has performed.
    pub fn total_computes(&self) -> u64 {
        self.stage_computes.iter().map(|(_, n)| *n).sum()
    }
}

// -- body encoding -----------------------------------------------------

fn put_stage_key(enc: &mut Encoder, stage: Stage, key: u64) {
    enc.put_str(stage.name());
    enc.put_u64(key);
}

fn get_stage_key(dec: &mut Decoder<'_>) -> Result<(Stage, u64), RemoteError> {
    let name = dec.str().map_err(body_err)?;
    let stage = Stage::from_name(&name).ok_or_else(|| RemoteError::Frame {
        detail: format!("unknown stage `{name}` in message body"),
    })?;
    let key = dec.u64().map_err(body_err)?;
    Ok((stage, key))
}

fn put_opt_payload(enc: &mut Encoder, payload: Option<&[u8]>) {
    match payload {
        Some(p) => {
            enc.put_bool(true);
            enc.put_bytes(p);
        }
        None => enc.put_bool(false),
    }
}

fn get_opt_payload(dec: &mut Decoder<'_>) -> Result<Option<Vec<u8>>, RemoteError> {
    if dec.bool().map_err(body_err)? {
        Ok(Some(dec.bytes().map_err(body_err)?))
    } else {
        Ok(None)
    }
}

fn put_tier_stats(enc: &mut Encoder, t: &TierStats) {
    enc.put_u64(t.hits);
    enc.put_u64(t.misses);
    enc.put_u64(t.writes);
    enc.put_u64(t.corrupt);
    enc.put_u64(t.entries);
    enc.put_u64(t.bytes);
}

fn get_tier_stats(dec: &mut Decoder<'_>) -> Result<TierStats, RemoteError> {
    Ok(TierStats {
        hits: dec.u64().map_err(body_err)?,
        misses: dec.u64().map_err(body_err)?,
        writes: dec.u64().map_err(body_err)?,
        corrupt: dec.u64().map_err(body_err)?,
        entries: dec.u64().map_err(body_err)?,
        bytes: dec.u64().map_err(body_err)?,
    })
}

fn body_err(e: crate::error::CodecError) -> RemoteError {
    RemoteError::Frame {
        detail: format!("body decode failed: {e}"),
    }
}

impl Request {
    /// The frame kind byte this request travels under.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping => kind::PING,
            Request::Get { .. } => kind::GET,
            Request::GetBatch { .. } => kind::GET_BATCH,
            Request::Put { .. } => kind::PUT,
            Request::Contains { .. } => kind::CONTAINS,
            Request::Stats => kind::STATS,
            Request::Shutdown => kind::SHUTDOWN,
        }
    }

    /// Encode the frame body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Request::Ping | Request::Stats | Request::Shutdown => {}
            Request::Get { stage, key } | Request::Contains { stage, key } => {
                put_stage_key(&mut enc, *stage, *key);
            }
            Request::GetBatch { keys } => {
                enc.put_seq(keys.len());
                for &(stage, key) in keys {
                    put_stage_key(&mut enc, stage, key);
                }
            }
            Request::Put {
                stage,
                key,
                payload,
            } => {
                put_stage_key(&mut enc, *stage, *key);
                enc.put_bytes(payload);
            }
        }
        enc.into_bytes()
    }

    /// Decode a request from its frame kind and body.
    pub fn decode(kind_byte: u8, body: &[u8]) -> Result<Request, RemoteError> {
        let mut dec = Decoder::new(body);
        let req = match kind_byte {
            kind::PING => Request::Ping,
            kind::STATS => Request::Stats,
            kind::SHUTDOWN => Request::Shutdown,
            kind::GET => {
                let (stage, key) = get_stage_key(&mut dec)?;
                Request::Get { stage, key }
            }
            kind::CONTAINS => {
                let (stage, key) = get_stage_key(&mut dec)?;
                Request::Contains { stage, key }
            }
            kind::GET_BATCH => {
                let n = dec.seq().map_err(body_err)?;
                let mut keys = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    keys.push(get_stage_key(&mut dec)?);
                }
                Request::GetBatch { keys }
            }
            kind::PUT => {
                let (stage, key) = get_stage_key(&mut dec)?;
                let payload = dec.bytes().map_err(body_err)?;
                Request::Put {
                    stage,
                    key,
                    payload,
                }
            }
            other => {
                return Err(RemoteError::Frame {
                    detail: format!("unknown request kind {other:#04x}"),
                })
            }
        };
        dec.finish().map_err(body_err)?;
        Ok(req)
    }
}

impl Response {
    /// The frame kind byte this response travels under.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Pong(_) => kind::PONG,
            Response::Value(_) => kind::VALUE,
            Response::Batch(_) => kind::BATCH,
            Response::Done(_) => kind::DONE,
            Response::Has(_) => kind::HAS,
            Response::Stats(_) => kind::STATS_REPLY,
            Response::Closing => kind::CLOSING,
            Response::Overloaded => kind::OVERLOADED,
            Response::Error(_) => kind::ERROR,
        }
    }

    /// Encode the frame body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Response::Closing | Response::Overloaded => {}
            Response::Pong(info) => {
                enc.put_u64(u64::from(info.proto_version));
                enc.put_u64(u64::from(info.format_version));
                enc.put_str(&info.crate_version);
            }
            Response::Value(payload) => put_opt_payload(&mut enc, payload.as_deref()),
            Response::Batch(slots) => {
                enc.put_seq(slots.len());
                for slot in slots {
                    put_opt_payload(&mut enc, slot.as_deref());
                }
            }
            Response::Done(landed) => enc.put_bool(*landed),
            Response::Has(present) => enc.put_bool(*present),
            Response::Error(detail) => enc.put_str(detail),
            Response::Stats(s) => {
                enc.put_u64(s.requests);
                enc.put_u64(s.gets);
                enc.put_u64(s.batch_keys);
                enc.put_u64(s.puts);
                enc.put_u64(s.contains);
                enc.put_u64(s.pings);
                enc.put_u64(s.hits);
                enc.put_u64(s.misses);
                enc.put_u64(s.bytes_in);
                enc.put_u64(s.bytes_out);
                enc.put_u64(s.connections);
                enc.put_u64(s.frame_errors);
                enc.put_u64(s.overloaded);
                enc.put_u64(s.panics);
                enc.put_u64(s.deadline_truncated);
                enc.put_u64(s.idle_reaped);
                enc.put_seq(s.stage_computes.len());
                for (name, n) in &s.stage_computes {
                    enc.put_str(name);
                    enc.put_u64(*n);
                }
                enc.put_seq(s.tier_totals.len());
                for (name, t) in &s.tier_totals {
                    enc.put_str(name);
                    put_tier_stats(&mut enc, t);
                }
            }
        }
        enc.into_bytes()
    }

    /// Decode a response from its frame kind and body.
    pub fn decode(kind_byte: u8, body: &[u8]) -> Result<Response, RemoteError> {
        let mut dec = Decoder::new(body);
        let resp = match kind_byte {
            kind::CLOSING => Response::Closing,
            kind::OVERLOADED => Response::Overloaded,
            kind::PONG => {
                let proto_version = dec.u32().map_err(body_err)?;
                let format_version = dec.u32().map_err(body_err)?;
                let crate_version = dec.str().map_err(body_err)?;
                Response::Pong(ServerInfo {
                    proto_version,
                    format_version,
                    crate_version,
                })
            }
            kind::VALUE => Response::Value(get_opt_payload(&mut dec)?),
            kind::BATCH => {
                let n = dec.seq().map_err(body_err)?;
                let mut slots = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    slots.push(get_opt_payload(&mut dec)?);
                }
                Response::Batch(slots)
            }
            kind::DONE => Response::Done(dec.bool().map_err(body_err)?),
            kind::HAS => Response::Has(dec.bool().map_err(body_err)?),
            kind::ERROR => Response::Error(dec.str().map_err(body_err)?),
            kind::STATS_REPLY => {
                let mut s = ServeStats {
                    requests: dec.u64().map_err(body_err)?,
                    gets: dec.u64().map_err(body_err)?,
                    batch_keys: dec.u64().map_err(body_err)?,
                    puts: dec.u64().map_err(body_err)?,
                    contains: dec.u64().map_err(body_err)?,
                    pings: dec.u64().map_err(body_err)?,
                    hits: dec.u64().map_err(body_err)?,
                    misses: dec.u64().map_err(body_err)?,
                    bytes_in: dec.u64().map_err(body_err)?,
                    bytes_out: dec.u64().map_err(body_err)?,
                    connections: dec.u64().map_err(body_err)?,
                    frame_errors: dec.u64().map_err(body_err)?,
                    overloaded: dec.u64().map_err(body_err)?,
                    panics: dec.u64().map_err(body_err)?,
                    deadline_truncated: dec.u64().map_err(body_err)?,
                    idle_reaped: dec.u64().map_err(body_err)?,
                    stage_computes: Vec::new(),
                    tier_totals: Vec::new(),
                };
                let n = dec.seq().map_err(body_err)?;
                for _ in 0..n {
                    let name = dec.str().map_err(body_err)?;
                    let count = dec.u64().map_err(body_err)?;
                    s.stage_computes.push((name, count));
                }
                let n = dec.seq().map_err(body_err)?;
                for _ in 0..n {
                    let name = dec.str().map_err(body_err)?;
                    let t = get_tier_stats(&mut dec)?;
                    s.tier_totals.push((name, t));
                }
                Response::Stats(s)
            }
            other => {
                return Err(RemoteError::Frame {
                    detail: format!("unknown response kind {other:#04x}"),
                })
            }
        };
        dec.finish().map_err(body_err)?;
        Ok(resp)
    }
}

// -- frame i/o ---------------------------------------------------------

/// Write one frame. Returns the total bytes written (header + body).
///
/// # Errors
///
/// Propagates socket write failures (timeouts surface as
/// [`RemoteError::Timeout`]).
pub fn write_frame(
    w: &mut dyn Write,
    kind_byte: u8,
    request_id: u64,
    body: &[u8],
) -> Result<u64, RemoteError> {
    write_frame_versioned(w, PROTO_VERSION, kind_byte, request_id, body)
}

/// As [`write_frame`] with an explicit protocol version in the header.
/// Exists for version-skew testing and future protocol evolution; every
/// production frame is written with [`PROTO_VERSION`].
///
/// # Errors
///
/// As [`write_frame`].
pub fn write_frame_versioned(
    w: &mut dyn Write,
    version: u32,
    kind_byte: u8,
    request_id: u64,
    body: &[u8],
) -> Result<u64, RemoteError> {
    debug_assert!(body.len() as u64 <= u64::from(MAX_BODY_BYTES));
    let mut frame = Vec::with_capacity(HEADER_BYTES + body.len());
    frame.extend_from_slice(&PROTO_MAGIC);
    frame.extend_from_slice(&version.to_le_bytes());
    frame.push(kind_byte);
    frame.extend_from_slice(&request_id.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum(body).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len() as u64)
}

/// One parsed frame: kind, request id, validated body, and the total
/// bytes read off the wire.
#[derive(Debug)]
pub struct Frame {
    /// The message kind byte.
    pub kind: u8,
    /// The request id (echoed between request and response).
    pub request_id: u64,
    /// The checksum-validated body bytes.
    pub body: Vec<u8>,
    /// Total frame size on the wire (header + body).
    pub wire_bytes: u64,
}

/// Read and validate one complete frame.
///
/// # Errors
///
/// [`RemoteError::Frame`] for structural damage (bad magic, oversize
/// length, checksum mismatch), [`RemoteError::VersionSkew`] for a
/// mismatched protocol version, [`RemoteError::Timeout`]/
/// [`RemoteError::Io`] for socket failures and truncation.
pub fn read_frame(r: &mut dyn Read) -> Result<Frame, RemoteError> {
    let mut first = [0u8; 1];
    r.read_exact(&mut first)?;
    read_frame_after(first[0], r)
}

/// As [`read_frame`] when the first header byte was already consumed —
/// the server reads that byte under a short poll timeout (so shutdown
/// stays responsive on idle connections) and hands it here once a frame
/// has actually started.
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_after(first: u8, r: &mut dyn Read) -> Result<Frame, RemoteError> {
    let mut header = [0u8; HEADER_BYTES];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    if header[..8] != PROTO_MAGIC {
        return Err(RemoteError::Frame {
            detail: "bad frame magic".into(),
        });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != PROTO_VERSION {
        return Err(RemoteError::VersionSkew { peer: version });
    }
    let kind = header[12];
    let request_id = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
    let body_len = u32::from_le_bytes(header[21..25].try_into().expect("4 bytes"));
    if body_len > MAX_BODY_BYTES {
        return Err(RemoteError::Frame {
            detail: format!("body length {body_len} exceeds {MAX_BODY_BYTES}"),
        });
    }
    let expected_sum = u64::from_le_bytes(header[25..33].try_into().expect("8 bytes"));
    let mut body = vec![0u8; body_len as usize];
    r.read_exact(&mut body)?;
    if checksum(&body) != expected_sum {
        return Err(RemoteError::Frame {
            detail: "body checksum mismatch".into(),
        });
    }
    let wire_bytes = (HEADER_BYTES + body.len()) as u64;
    Ok(Frame {
        kind,
        request_id,
        body,
        wire_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, req.kind(), 42, &req.encode_body()).expect("writes");
        assert_eq!(n as usize, wire.len());
        let frame = read_frame(&mut wire.as_slice()).expect("reads");
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.wire_bytes, n);
        assert_eq!(
            Request::decode(frame.kind, &frame.body).expect("decodes"),
            req
        );
    }

    fn round_trip_response(resp: Response) {
        let mut wire = Vec::new();
        write_frame(&mut wire, resp.kind(), 7, &resp.encode_body()).expect("writes");
        let frame = read_frame(&mut wire.as_slice()).expect("reads");
        assert_eq!(
            Response::decode(frame.kind, &frame.body).expect("decodes"),
            resp
        );
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Get {
            stage: Stage::Compile,
            key: 0xdead_beef,
        });
        round_trip_request(Request::Contains {
            stage: Stage::EvaluateSuite,
            key: u64::MAX,
        });
        round_trip_request(Request::GetBatch {
            keys: vec![(Stage::Compile, 1), (Stage::Profile, 2), (Stage::Design, 3)],
        });
        round_trip_request(Request::Put {
            stage: Stage::Schedule,
            key: 9,
            payload: vec![1, 2, 3, 0xFF],
        });
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Closing);
        round_trip_response(Response::Pong(ServerInfo {
            proto_version: PROTO_VERSION,
            format_version: crate::store::FORMAT_VERSION,
            crate_version: "1.2.3".into(),
        }));
        round_trip_response(Response::Value(None));
        round_trip_response(Response::Value(Some(vec![0, 1, 2])));
        round_trip_response(Response::Batch(vec![Some(vec![5]), None, Some(vec![])]));
        round_trip_response(Response::Done(true));
        round_trip_response(Response::Has(false));
        round_trip_response(Response::Overloaded);
        round_trip_response(Response::Error("nope".into()));
        round_trip_response(Response::Stats(ServeStats {
            requests: 10,
            gets: 4,
            hits: 3,
            misses: 1,
            overloaded: 2,
            panics: 1,
            deadline_truncated: 7,
            idle_reaped: 3,
            stage_computes: vec![("compile".into(), 12), ("profile".into(), 12)],
            tier_totals: vec![(
                "disk".into(),
                TierStats {
                    hits: 5,
                    entries: 120,
                    bytes: 1 << 20,
                    ..TierStats::default()
                },
            )],
            ..ServeStats::default()
        }));
    }

    #[test]
    fn bad_magic_is_a_frame_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, kind::PING, 1, &[]).expect("writes");
        wire[0] = b'X';
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(RemoteError::Frame { .. })
        ));
    }

    #[test]
    fn version_skew_is_detected_before_the_body() {
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, PROTO_VERSION + 1, kind::PING, 1, &[]).expect("writes");
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(RemoteError::VersionSkew { peer }) if peer == PROTO_VERSION + 1
        ));
    }

    #[test]
    fn corrupt_body_fails_the_checksum() {
        let req = Request::Get {
            stage: Stage::Compile,
            key: 5,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, req.kind(), 1, &req.encode_body()).expect("writes");
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(RemoteError::Frame { detail }) if detail.contains("checksum")
        ));
    }

    #[test]
    fn truncated_frame_is_an_io_error_not_a_panic() {
        let req = Request::Put {
            stage: Stage::Compile,
            key: 5,
            payload: vec![9; 64],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, req.kind(), 1, &req.encode_body()).expect("writes");
        for cut in [1, HEADER_BYTES - 1, HEADER_BYTES + 3] {
            let err = read_frame(&mut &wire[..cut]).unwrap_err();
            assert!(matches!(err, RemoteError::Io { .. }), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        write_frame(&mut wire, kind::GET, 1, &[]).expect("writes");
        wire[21..25].copy_from_slice(&(MAX_BODY_BYTES + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(RemoteError::Frame { detail }) if detail.contains("exceeds")
        ));
    }

    #[test]
    fn unknown_kinds_are_typed_errors() {
        assert!(Request::decode(0x7E, &[]).is_err());
        assert!(Response::decode(0x00, &[]).is_err());
    }

    #[test]
    fn trailing_body_bytes_are_rejected() {
        let mut body = Request::Ping.encode_body();
        body.extend_from_slice(&[1, 2, 3]);
        assert!(Request::decode(kind::PING, &body).is_err());
    }
}
