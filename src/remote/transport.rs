//! Transport abstraction under the wire protocol: byte streams the
//! frames travel over.
//!
//! The offline build has no HTTP stack, so the shipping transports are
//! `std::net` TCP and (on Unix) `std::os::unix::net` domain sockets.
//! Everything above this module — framing, retry, the tier, the daemon
//! — talks to the [`Conn`]/[`Listener`] traits only, so a future
//! HTTP/object-store backend is a transport swap, not a protocol
//! rewrite.
//!
//! [`Endpoint`] is the one user-facing address type: `host:port` (an
//! optional `tcp:` prefix is accepted) or `unix:/path/to.sock`,
//! round-tripping through `Display`/`FromStr` so addresses travel
//! through CLI flags and environment variables unchanged.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

/// One bidirectional byte stream carrying protocol frames. Implemented
/// by [`TcpStream`] and [`UnixStream`]; every read and write is bounded
/// by the timeouts set here (the retry policy's timeout on the client,
/// the poll/io timeouts on the server), so no frame operation can stall
/// an endpoint indefinitely.
pub trait Conn: Read + Write + Send + fmt::Debug {
    /// Bound every subsequent read; `None` removes the bound.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Bound every subsequent write; `None` removes the bound.
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_write_timeout(self, timeout)
    }
}

/// A bound, non-blocking server socket. [`Listener::poll_accept`]
/// returns instead of blocking so the accept loop can observe the
/// shutdown flag between polls.
pub trait Listener: Send + fmt::Debug {
    /// Accept one pending connection if any, otherwise sleep at most
    /// `wait` and return `None`. Accepted connections are switched back
    /// to blocking mode (their reads are bounded by explicit timeouts).
    ///
    /// # Errors
    ///
    /// Fatal socket errors (the caller backs off and retries).
    fn poll_accept(&self, wait: Duration) -> io::Result<Option<Box<dyn Conn>>>;

    /// The endpoint this listener is actually bound to — for TCP with
    /// port 0 this carries the kernel-assigned port, so in-process
    /// servers (tests, benches) can tell clients where to connect.
    fn local_endpoint(&self) -> Endpoint;
}

#[derive(Debug)]
struct TcpTransportListener {
    inner: TcpListener,
    local: SocketAddr,
}

impl Listener for TcpTransportListener {
    fn poll_accept(&self, wait: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        match self.inner.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                // match the client side: batch replies are written as
                // header + payload, and Nagle holding the short header
                // for a delayed ACK costs ~40ms per response
                stream.set_nodelay(true).ok();
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(wait);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn local_endpoint(&self) -> Endpoint {
        Endpoint::Tcp(self.local.to_string())
    }
}

#[cfg(unix)]
#[derive(Debug)]
struct UnixTransportListener {
    inner: UnixListener,
    path: PathBuf,
    /// `(dev, ino)` of the socket file *this* listener created. Drop
    /// removes the file only while it is still this inode: a listener
    /// whose file was already replaced (stale-reclaim by a newer bind on
    /// the same path) must not delete the newer listener's live socket.
    owner: Option<(u64, u64)>,
}

#[cfg(unix)]
fn socket_file_id(path: &std::path::Path) -> Option<(u64, u64)> {
    use std::os::unix::fs::MetadataExt;
    std::fs::metadata(path).ok().map(|m| (m.dev(), m.ino()))
}

#[cfg(unix)]
impl Listener for UnixTransportListener {
    fn poll_accept(&self, wait: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        match self.inner.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(wait);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn local_endpoint(&self) -> Endpoint {
        Endpoint::Unix(self.path.clone())
    }
}

#[cfg(unix)]
impl Drop for UnixTransportListener {
    fn drop(&mut self) {
        // Remove the socket file so the address is immediately
        // re-bindable — but only while it is still *our* file. If a
        // newer listener already reclaimed the path (this listener was
        // stale), deleting unconditionally would tear down the live
        // server's endpoint.
        if self.owner.is_some() && socket_file_id(&self.path) == self.owner {
            std::fs::remove_file(&self.path).ok();
        }
    }
}

/// Wrap a connection so it consults a [`FaultPlan`] on every read and
/// write — the transport half of the fault-injection seam (the
/// [`RemoteTier`](crate::remote::RemoteTier) wraps every connection it
/// opens while a plan is armed). At most one fault fires per
/// connection: a faulted stream is doomed anyway (the client drops it
/// and retries on a fresh dial), and firing once keeps the plan's
/// counts reconcilable — one injected transport fault equals exactly
/// one failed request attempt.
pub(crate) fn faulty(
    inner: Box<dyn Conn>,
    plan: std::sync::Arc<crate::fault::FaultPlan>,
) -> Box<dyn Conn> {
    Box::new(FaultConn {
        inner,
        plan,
        fired: false,
    })
}

#[derive(Debug)]
struct FaultConn {
    inner: Box<dyn Conn>,
    plan: std::sync::Arc<crate::fault::FaultPlan>,
    fired: bool,
}

impl Read for FaultConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use crate::fault::FaultSite;
        if !self.fired {
            if self.plan.roll(FaultSite::Timeout) {
                self.fired = true;
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "injected fault: read timeout",
                ));
            }
            if self.plan.roll(FaultSite::DropMidFrame) {
                // EOF in the middle of a frame: read_exact sees
                // UnexpectedEof exactly as it would on a died peer.
                self.fired = true;
                return Ok(0);
            }
            if self.plan.roll(FaultSite::GarbageFrame) {
                self.fired = true;
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let i = self.plan.draw(FaultSite::GarbageFrame, n as u64) as usize;
                    buf[i] ^= 0xFF;
                }
                return Ok(n);
            }
        }
        self.inner.read(buf)
    }
}

impl Write for FaultConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        use crate::fault::FaultSite;
        if !self.fired && !buf.is_empty() {
            if self.plan.roll(FaultSite::ChecksumTamper) {
                // Flip one byte on the way out: the peer's frame
                // checksum (or magic/length) check must reject it.
                self.fired = true;
                let mut tampered = buf.to_vec();
                let i = self.plan.draw(FaultSite::ChecksumTamper, buf.len() as u64) as usize;
                tampered[i] ^= 0xFF;
                self.inner.write_all(&tampered)?;
                return Ok(buf.len());
            }
            if self.plan.roll(FaultSite::DropMidFrame) {
                // Half the bytes land, then the connection dies.
                self.fired = true;
                let half = buf.len() / 2;
                if half > 0 {
                    self.inner.write_all(&buf[..half]).ok();
                }
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected fault: connection dropped mid-frame",
                ));
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Conn for FaultConn {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }
}

/// A remote server address: TCP (`host:port`, optionally prefixed
/// `tcp:`) or a Unix domain socket (`unix:/path/to.sock`).
///
/// ```
/// use asip_explorer::remote::Endpoint;
///
/// let tcp: Endpoint = "127.0.0.1:9317".parse()?;
/// assert_eq!(tcp.to_string(), "127.0.0.1:9317");
/// let unix: Endpoint = "unix:/tmp/asip.sock".parse()?;
/// assert_eq!(unix.to_string(), "unix:/tmp/asip.sock");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address in `host:port` form.
    Tcp(String),
    /// A Unix domain socket path. Parsed everywhere; connect/bind fail
    /// with an unsupported-transport error on non-Unix platforms.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse an endpoint string (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// A human-readable description of why the address is malformed.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        let addr = s.strip_prefix("tcp:").unwrap_or(s);
        if addr.is_empty() {
            return Err("empty address".into());
        }
        match addr.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            _ => Err(format!(
                "`{addr}` is not host:port (or unix:/path for a domain socket)"
            )),
        }
    }

    /// Open a connection with a bounded connect time. Read/write
    /// timeouts are the caller's to set ([`Conn`]).
    ///
    /// # Errors
    ///
    /// Connection refusal, resolution failure, connect timeout, or an
    /// unsupported transport on this platform.
    pub fn connect(&self, timeout: Duration) -> io::Result<Box<dyn Conn>> {
        match self {
            Endpoint::Tcp(addr) => {
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::AddrNotAvailable,
                        format!("`{addr}` resolved to no address"),
                    )
                })?;
                let stream = TcpStream::connect_timeout(&resolved, timeout)?;
                stream.set_nodelay(true).ok();
                Ok(Box::new(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // no connect_timeout in std for unix sockets; connects
                // are local and either succeed or fail immediately
                let stream = UnixStream::connect(path)?;
                Ok(Box::new(stream))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix domain sockets are not available on this platform",
            )),
        }
    }

    /// Bind a non-blocking listener on this endpoint. A TCP port of 0
    /// binds an ephemeral port (read it back via
    /// [`Listener::local_endpoint`]); a Unix bind replaces a stale
    /// socket file left by a dead server, refusing only when a live
    /// server still answers on it.
    ///
    /// # Errors
    ///
    /// Bind failures (address in use by a live server, permissions) or
    /// an unsupported transport on this platform.
    pub fn bind(&self) -> io::Result<Box<dyn Listener>> {
        match self {
            Endpoint::Tcp(addr) => {
                let inner = TcpListener::bind(addr.as_str())?;
                inner.set_nonblocking(true)?;
                let local = inner.local_addr()?;
                Ok(Box::new(TcpTransportListener { inner, local }))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let inner = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(e); // a live server owns it
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                inner.set_nonblocking(true)?;
                let owner = socket_file_id(path);
                Ok(Box::new(UnixTransportListener {
                    inner,
                    path: path.clone(),
                    owner,
                }))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix domain sockets are not available on this platform",
            )),
        }
    }
}

impl fmt::Display for Endpoint {
    /// The inverse of [`Endpoint::parse`], so addresses round-trip
    /// through CLI flags and environment variables unchanged.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl FromStr for Endpoint {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Endpoint::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_grammar_round_trips() {
        for (input, display) in [
            ("127.0.0.1:9317", "127.0.0.1:9317"),
            ("tcp:localhost:80", "localhost:80"),
            ("unix:/tmp/asip.sock", "unix:/tmp/asip.sock"),
        ] {
            let e = Endpoint::parse(input).expect(input);
            assert_eq!(e.to_string(), display);
            assert_eq!(display.parse::<Endpoint>().expect(display), e);
        }
    }

    #[test]
    fn malformed_endpoints_are_rejected() {
        for bad in ["", "unix:", "tcp:", "justahost", "host:notaport", ":80"] {
            assert!(Endpoint::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn tcp_loopback_connect_and_accept() {
        let listener = Endpoint::parse("127.0.0.1:0")
            .unwrap()
            .bind()
            .expect("binds ephemeral port");
        let endpoint = listener.local_endpoint();
        assert!(!endpoint.to_string().ends_with(":0"), "real port resolved");
        assert!(listener
            .poll_accept(Duration::from_millis(1))
            .expect("polls")
            .is_none());
        let mut client = endpoint.connect(Duration::from_secs(1)).expect("connects");
        let mut server = loop {
            if let Some(conn) = listener.poll_accept(Duration::from_millis(5)).unwrap() {
                break conn;
            }
        };
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_binds_and_reclaims_stale_files() {
        let path = std::env::temp_dir().join(format!("asip-transport-{}.sock", std::process::id()));
        std::fs::remove_file(&path).ok();
        let endpoint = Endpoint::Unix(path.clone());
        {
            let listener = endpoint.bind().expect("binds");
            let mut client = endpoint.connect(Duration::from_secs(1)).expect("connects");
            let mut server = loop {
                if let Some(conn) = listener.poll_accept(Duration::from_millis(5)).unwrap() {
                    break conn;
                }
            };
            client.write_all(b"hi").unwrap();
            let mut buf = [0u8; 2];
            server.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"hi");
        }
        assert!(!path.exists(), "socket file removed on drop");
        // a crashed server leaves its socket file behind (std's
        // UnixListener does not clean up); the next bind must reclaim it
        drop(UnixListener::bind(&path).expect("raw bind"));
        assert!(path.exists(), "stale socket file left behind");
        let listener = endpoint.bind().expect("stale socket file reclaimed");
        drop(listener);
        assert!(!path.exists(), "socket file removed on drop again");
    }

    #[cfg(unix)]
    #[test]
    fn stale_listener_drop_does_not_remove_a_reclaimed_socket() {
        // The race: listener A's socket file is replaced on the same
        // path by listener B (stale-reclaim), then A is dropped late. A
        // must not delete B's live socket out from under it.
        let path =
            std::env::temp_dir().join(format!("asip-transport-race-{}.sock", std::process::id()));
        std::fs::remove_file(&path).ok();
        let endpoint = Endpoint::Unix(path.clone());

        let stale = endpoint.bind().expect("first bind");
        // Simulate the crashed-daemon cleanup path: the file is removed
        // externally and a second listener binds the same path afresh.
        std::fs::remove_file(&path).expect("external cleanup");
        let live = endpoint.bind().expect("second bind on the same path");

        drop(stale);
        assert!(
            path.exists(),
            "stale listener's late drop must not delete the live socket"
        );
        // The live listener still accepts.
        let mut client = endpoint.connect(Duration::from_secs(1)).expect("connects");
        let mut server = loop {
            if let Some(conn) = live.poll_accept(Duration::from_millis(5)).unwrap() {
                break conn;
            }
        };
        client.write_all(b"ok").unwrap();
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ok");

        drop(live);
        assert!(!path.exists(), "owner removes its own socket on drop");
    }
}
