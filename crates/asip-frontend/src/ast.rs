//! Abstract syntax tree for mini-C.

use crate::error::Pos;

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarTy {
    /// `int`
    Int,
    /// `float`
    Float,
}

impl ScalarTy {
    /// Corresponding IR type.
    pub fn ir(self) -> asip_ir::Ty {
        match self {
            ScalarTy::Int => asip_ir::Ty::Int,
            ScalarTy::Float => asip_ir::Ty::Float,
        }
    }
}

/// Storage class of a global array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// `input` — bound from experiment data.
    Input,
    /// `output` — written by the program.
    Output,
    /// No storage keyword — internal scratch.
    Internal,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Global array declarations, in source order.
    pub arrays: Vec<ArrayDef>,
    /// Global scalar declarations, in source order.
    pub globals: Vec<GlobalDef>,
    /// Function definitions, in source order. Must include `main`.
    pub functions: Vec<FuncDef>,
}

impl Unit {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A global array definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDef {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: ScalarTy,
    /// Length (constant).
    pub len: usize,
    /// Storage class.
    pub storage: Storage,
    /// Source position.
    pub pos: Pos,
}

/// A global scalar definition (zero-initialized).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: ScalarTy,
    /// Source position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type, or `None` for `void`.
    pub ret: Option<ScalarTy>,
    /// Parameters (scalars only).
    pub params: Vec<(String, ScalarTy)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local scalar declaration with optional initializer.
    Decl {
        /// Name.
        name: String,
        /// Type.
        ty: ScalarTy,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Assignment to a scalar variable.
    Assign {
        /// Variable name.
        name: String,
        /// Value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// Assignment to an array element.
    AssignIndex {
        /// Array name.
        name: String,
        /// Index expression.
        index: Expr,
        /// Value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `if (cond) then_body else else_body`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `for (init; cond; step) body` — init/step are assignments.
    For {
        /// Loop initialization (run once).
        init: Box<Stmt>,
        /// Continuation condition.
        cond: Expr,
        /// Step statement (run after each iteration).
        step: Box<Stmt>,
        /// Body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `return;` or `return expr;`
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// An expression evaluated for effect (a call).
    Expr(Expr),
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&` (numeric)
    LogAnd,
    /// `||` (numeric)
    LogOr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }

    /// True for operators that only accept integers.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinaryOp::Rem
                | BinaryOp::Shl
                | BinaryOp::Shr
                | BinaryOp::BitAnd
                | BinaryOp::BitOr
                | BinaryOp::BitXor
        )
    }
}

/// Unary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!` (numeric: 1 if operand is zero)
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Pos),
    /// Float literal.
    FloatLit(f64, Pos),
    /// Scalar variable reference.
    Var(String, Pos),
    /// Array element read.
    Index {
        /// Array name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Explicit cast `(int)` / `(float)`.
    Cast {
        /// Target type.
        to: ScalarTy,
        /// Operand.
        operand: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// Source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::IntLit(_, p)
            | Expr::FloatLit(_, p)
            | Expr::Var(_, p)
            | Expr::Index { pos: p, .. }
            | Expr::Binary { pos: p, .. }
            | Expr::Unary { pos: p, .. }
            | Expr::Cast { pos: p, .. }
            | Expr::Call { pos: p, .. } => *p,
        }
    }
}

/// The math intrinsics callable from mini-C.
pub fn intrinsic(name: &str) -> Option<asip_ir::MathFn> {
    asip_ir::MathFn::all()
        .iter()
        .copied()
        .find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_predicates() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::Shl.int_only());
        assert!(!BinaryOp::Mul.int_only());
    }

    #[test]
    fn intrinsics_resolve() {
        assert_eq!(intrinsic("sin"), Some(asip_ir::MathFn::Sin));
        assert_eq!(intrinsic("sqrt"), Some(asip_ir::MathFn::Sqrt));
        assert_eq!(intrinsic("main"), None);
    }

    #[test]
    fn scalar_ty_maps_to_ir() {
        assert_eq!(ScalarTy::Int.ir(), asip_ir::Ty::Int);
        assert_eq!(ScalarTy::Float.ir(), asip_ir::Ty::Float);
    }

    #[test]
    fn expr_positions() {
        let p = Pos { line: 2, col: 5 };
        assert_eq!(Expr::IntLit(1, p).pos(), p);
        assert_eq!(Expr::Var("x".into(), p).pos(), p);
    }
}
