//! Lowering from the checked AST to [`asip_ir`] three-address code.
//!
//! All function calls are inlined (semantic analysis guarantees the call
//! graph is acyclic), so the result is one flat CFG — the unit the paper's
//! profiling and sequence analysis work on.

use crate::ast::*;
use crate::error::FrontendError;
use asip_ir::{ArrayKind, BinOp, MathFn, Operand, Program, ProgramBuilder, Reg, UnOp};
use std::collections::HashMap;

/// Lower a checked [`Unit`] into a validated [`Program`].
///
/// # Errors
///
/// Returns [`FrontendError::Lowering`] if the produced IR fails
/// validation (which would indicate a bug in this module, not in user
/// source).
pub fn lower(name: &str, unit: &Unit) -> Result<Program, FrontendError> {
    let mut l = Lowerer::new(name, unit);
    l.run()?;
    let mut program = l.b.finish_unchecked();
    // blocks that lowering left unterminated are unreachable continuations
    // (e.g. the join after an `if` whose branches both return); seal them
    for block in &mut program.blocks {
        if !block.is_well_formed() {
            let id = program.next_inst_id;
            program.next_inst_id += 1;
            block.insts.push(asip_ir::Inst::new(
                asip_ir::InstId(id),
                asip_ir::InstKind::Ret { value: None },
            ));
        }
    }
    program.validate()?;
    Ok(program)
}

struct Lowerer<'a> {
    b: ProgramBuilder,
    unit: &'a Unit,
    arrays: HashMap<&'a str, asip_ir::ArrayId>,
    globals: HashMap<&'a str, (Reg, ScalarTy)>,
}

/// Per-inlined-function-instance environment.
struct Frame<'a> {
    /// Scope stack of local name -> (register, type).
    scopes: Vec<HashMap<&'a str, (Reg, ScalarTy)>>,
    /// Where `return` stores its value, for non-void functions.
    ret_reg: Option<(Reg, ScalarTy)>,
    /// Block to jump to on `return` (`None` only for `main`, where return
    /// lowers to `ret`).
    ret_block: Option<asip_ir::BlockId>,
}

impl<'a> Frame<'a> {
    fn lookup(&self, name: &str) -> Option<(Reg, ScalarTy)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }
}

/// Bytes per array element. The paper-era C types: 4-byte `int` and
/// 4-byte `float`. Array accesses lower to explicit address arithmetic
/// (`off = index * 4; addr = off + base; load [addr]`), exactly the
/// 3-address shape a modified gcc emits — this address arithmetic is
/// where many of the paper's detected sequences (`add-multiply`,
/// `multiply-add`, `add-add-multiply`) come from.
const ELEM_SIZE: i64 = 4;

/// Address of the first array; subsequent arrays follow contiguously
/// with a small guard gap, like a static data segment.
const DATA_BASE: i64 = 4096;

impl<'a> Lowerer<'a> {
    fn new(name: &str, unit: &'a Unit) -> Self {
        Lowerer {
            b: ProgramBuilder::new(name),
            unit,
            arrays: HashMap::new(),
            globals: HashMap::new(),
        }
    }

    fn run(&mut self) -> Result<(), FrontendError> {
        let mut base = DATA_BASE;
        for a in &self.unit.arrays {
            let kind = match a.storage {
                Storage::Input => ArrayKind::Input,
                Storage::Output => ArrayKind::Output,
                Storage::Internal => ArrayKind::Internal,
            };
            let id =
                self.b
                    .array_with_layout(a.name.clone(), a.ty.ir(), a.len, kind, base, ELEM_SIZE);
            base += a.len as i64 * ELEM_SIZE + 64;
            self.arrays.insert(&a.name, id);
        }
        let entry = self.b.entry_block();
        self.b.select_block(entry);
        for g in &self.unit.globals {
            let r = self.b.new_reg(g.ty.ir());
            // C globals are zero-initialized
            let zero = match g.ty {
                ScalarTy::Int => Operand::imm_int(0),
                ScalarTy::Float => Operand::imm_float(0.0),
            };
            self.b.mov_to(r, zero);
            self.globals.insert(&g.name, (r, g.ty));
        }
        let main = self.unit.function("main").expect("sema guarantees main");
        let mut frame = Frame {
            scopes: vec![HashMap::new()],
            ret_reg: None,
            ret_block: None,
        };
        self.lower_stmts(&main.body, &mut frame);
        if !self.b.current_is_terminated() {
            self.b.ret(None);
        }
        Ok(())
    }

    fn lower_stmts(&mut self, stmts: &'a [Stmt], frame: &mut Frame<'a>) {
        frame.scopes.push(HashMap::new());
        for s in stmts {
            if self.b.current_is_terminated() {
                break; // unreachable code after return
            }
            self.lower_stmt(s, frame);
        }
        frame.scopes.pop();
    }

    fn lower_stmt(&mut self, stmt: &'a Stmt, frame: &mut Frame<'a>) {
        match stmt {
            Stmt::Decl { name, ty, init, .. } => {
                let r = self.b.new_reg(ty.ir());
                if let Some(init) = init {
                    self.lower_expr_into(r, *ty, init, frame);
                }
                frame
                    .scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name, (r, *ty));
            }
            Stmt::Assign { name, value, .. } => {
                let (dst, dt) = frame
                    .lookup(name)
                    .or_else(|| self.globals.get(name.as_str()).copied())
                    .expect("sema checked");
                self.lower_expr_into(dst, dt, value, frame);
            }
            Stmt::AssignIndex {
                name, index, value, ..
            } => {
                let array = self.arrays[name.as_str()];
                let elem_ty = self
                    .unit
                    .arrays
                    .iter()
                    .find(|a| &a.name == name)
                    .expect("sema")
                    .ty;
                let addr = self.lower_address(array, index, frame);
                let (v, vt) = self.lower_expr(value, frame);
                let v = self.coerce(v, vt, elem_ty);
                self.b.store(array, addr, v);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let (c, ct) = self.lower_expr(cond, frame);
                let c = self.lower_condition(c, ct);
                let then_bb = self.b.new_block();
                let cont_bb = self.b.new_block();
                let else_bb = if else_body.is_empty() {
                    cont_bb
                } else {
                    self.b.new_block()
                };
                self.b.branch(c, then_bb, else_bb);

                self.b.select_block(then_bb);
                self.lower_stmts(then_body, frame);
                if !self.b.current_is_terminated() {
                    self.b.jump(cont_bb);
                }
                if !else_body.is_empty() {
                    self.b.select_block(else_bb);
                    self.lower_stmts(else_body, frame);
                    if !self.b.current_is_terminated() {
                        self.b.jump(cont_bb);
                    }
                }
                self.b.select_block(cont_bb);
            }
            // Loops lower in bottom-test (guard + do-while) form, the
            // shape gcc-era compilers emit: the guard tests once before
            // entry, and the body block re-tests at its bottom and
            // branches back to itself. A straight-line source body thus
            // becomes a *single-block* natural loop containing its
            // compare and branch — which is what loop pipelining wants,
            // and which puts `i = i + 1` textually adjacent to the
            // compare (the add-compare sequences of the paper's Table 3).
            Stmt::While { cond, body, .. } => {
                let (c, ct) = self.lower_expr(cond, frame);
                let c = self.lower_condition(c, ct);
                let body_bb = self.b.new_labeled_block("while.body");
                let exit = self.b.new_labeled_block("while.exit");
                self.b.branch(c, body_bb, exit);
                self.b.select_block(body_bb);
                self.lower_stmts(body, frame);
                if !self.b.current_is_terminated() {
                    let (c2, ct2) = self.lower_expr(cond, frame);
                    let c2 = self.lower_condition(c2, ct2);
                    self.b.branch(c2, body_bb, exit);
                }
                self.b.select_block(exit);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.lower_stmt(init, frame);
                let (c, ct) = self.lower_expr(cond, frame);
                let c = self.lower_condition(c, ct);
                let body_bb = self.b.new_labeled_block("for.body");
                let exit = self.b.new_labeled_block("for.exit");
                self.b.branch(c, body_bb, exit);
                self.b.select_block(body_bb);
                self.lower_stmts(body, frame);
                if !self.b.current_is_terminated() {
                    self.lower_stmt(step, frame);
                    let (c2, ct2) = self.lower_expr(cond, frame);
                    let c2 = self.lower_condition(c2, ct2);
                    self.b.branch(c2, body_bb, exit);
                }
                self.b.select_block(exit);
            }
            Stmt::Return { value, .. } => match (frame.ret_block, value) {
                (None, None) => {
                    self.b.ret(None);
                }
                (None, Some(_)) => unreachable!("sema: main returns no value"),
                (Some(bb), None) => {
                    self.b.jump(bb);
                }
                (Some(bb), Some(v)) => {
                    let (val, vt) = self.lower_expr(v, frame);
                    let (rr, rt) = frame.ret_reg.expect("non-void inlined function");
                    let val = self.coerce(val, vt, rt);
                    self.b.mov_to(rr, val);
                    self.b.jump(bb);
                }
            },
            Stmt::Expr(e) => {
                self.lower_expr(e, frame);
            }
        }
    }

    /// Lower an array subscript to an explicit byte address:
    /// `off = index * ELEM_SIZE; addr = off + base`. Constant subscripts
    /// fold to an immediate address, as a real code generator would.
    fn lower_address(
        &mut self,
        array: asip_ir::ArrayId,
        index: &'a Expr,
        frame: &mut Frame<'a>,
    ) -> Operand {
        let (base, size) = {
            let decl = self.b.array_decl(array);
            (decl.base, decl.elem_size)
        };
        let (idx, _) = self.lower_expr(index, frame);
        match idx {
            Operand::ImmInt(k) => Operand::imm_int(base + k * size),
            idx => {
                let off = self.b.binary(BinOp::Mul, idx, Operand::imm_int(size));
                self.b
                    .binary(BinOp::Add, off.into(), Operand::imm_int(base))
                    .into()
            }
        }
    }

    /// Static type of an expression (mirrors the checker's rules; sema
    /// has already validated the expression).
    fn expr_ty(&self, e: &Expr, frame: &Frame<'a>) -> ScalarTy {
        match e {
            Expr::IntLit(..) => ScalarTy::Int,
            Expr::FloatLit(..) => ScalarTy::Float,
            Expr::Var(name, _) => {
                frame
                    .lookup(name)
                    .or_else(|| self.globals.get(name.as_str()).copied())
                    .expect("sema checked")
                    .1
            }
            Expr::Index { name, .. } => {
                self.unit
                    .arrays
                    .iter()
                    .find(|a| &a.name == name)
                    .expect("sema checked")
                    .ty
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison()
                    || matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr)
                    || op.int_only()
                {
                    ScalarTy::Int
                } else if self.expr_ty(lhs, frame) == ScalarTy::Float
                    || self.expr_ty(rhs, frame) == ScalarTy::Float
                {
                    ScalarTy::Float
                } else {
                    ScalarTy::Int
                }
            }
            Expr::Unary { op, operand, .. } => match op {
                UnaryOp::Neg => self.expr_ty(operand, frame),
                UnaryOp::Not => ScalarTy::Int,
            },
            Expr::Cast { to, .. } => *to,
            Expr::Call { name, .. } => {
                if intrinsic(name).is_some() {
                    ScalarTy::Float
                } else {
                    self.unit
                        .function(name)
                        .expect("sema checked")
                        .ret
                        .unwrap_or(ScalarTy::Int)
                }
            }
        }
    }

    /// Lower `dst = e`, writing the final operation directly into `dst`
    /// when its natural result type matches (so `i = i + 1` is a single
    /// 3-address instruction, as a real front end emits).
    fn lower_expr_into(&mut self, dst: Reg, dt: ScalarTy, e: &'a Expr, frame: &mut Frame<'a>) {
        if self.expr_ty(e, frame) != dt {
            let (v, vt) = self.lower_expr(e, frame);
            let v = self.coerce(v, vt, dt);
            self.b.mov_to(dst, v);
            return;
        }
        match e {
            Expr::Binary { op, lhs, rhs, .. } => {
                self.lower_binary_impl(*op, lhs, rhs, frame, Some(dst));
            }
            Expr::Index { name, index, .. } => {
                let array = self.arrays[name.as_str()];
                let addr = self.lower_address(array, index, frame);
                self.b.load_to(dst, array, addr);
            }
            Expr::Unary {
                op: UnaryOp::Neg,
                operand,
                ..
            } => {
                let (v, vt) = self.lower_expr(operand, frame);
                match (v, vt) {
                    (Operand::ImmInt(i), _) => {
                        self.b.mov_to(dst, Operand::imm_int(-i));
                    }
                    (Operand::ImmFloat(f), _) => {
                        self.b.mov_to(dst, Operand::imm_float(-f));
                    }
                    (v, ScalarTy::Int) => {
                        self.b.unary_to(dst, UnOp::Neg, v);
                    }
                    (v, ScalarTy::Float) => {
                        self.b.unary_to(dst, UnOp::FNeg, v);
                    }
                }
            }
            Expr::Cast { to, operand, .. } => {
                let (v, vt) = self.lower_expr(operand, frame);
                match (vt, to) {
                    (ScalarTy::Int, ScalarTy::Float) => {
                        self.b.unary_to(dst, UnOp::IntToFloat, v);
                    }
                    (ScalarTy::Float, ScalarTy::Int) => {
                        self.b.unary_to(dst, UnOp::FloatToInt, v);
                    }
                    _ => {
                        self.b.mov_to(dst, v);
                    }
                }
            }
            Expr::Call { name, args, .. } if intrinsic(name).is_some() => {
                let m = intrinsic(name).expect("checked");
                let (v, vt) = self.lower_expr(&args[0], frame);
                let v = self.coerce(v, vt, ScalarTy::Float);
                self.b.unary_to(dst, UnOp::Math(m), v);
            }
            other => {
                let (v, vt) = self.lower_expr(other, frame);
                let v = self.coerce(v, vt, dt);
                self.b.mov_to(dst, v);
            }
        }
    }

    /// Lower an expression; returns the operand and its type.
    fn lower_expr(&mut self, e: &'a Expr, frame: &mut Frame<'a>) -> (Operand, ScalarTy) {
        match e {
            Expr::IntLit(v, _) => (Operand::imm_int(*v), ScalarTy::Int),
            Expr::FloatLit(v, _) => (Operand::imm_float(*v), ScalarTy::Float),
            Expr::Var(name, _) => {
                let (r, t) = frame
                    .lookup(name)
                    .or_else(|| self.globals.get(name.as_str()).copied())
                    .expect("sema checked");
                (r.into(), t)
            }
            Expr::Index { name, index, .. } => {
                let array = self.arrays[name.as_str()];
                let elem_ty = self
                    .unit
                    .arrays
                    .iter()
                    .find(|a| &a.name == name)
                    .expect("sema")
                    .ty;
                let addr = self.lower_address(array, index, frame);
                let r = self.b.load(array, addr);
                (r.into(), elem_ty)
            }
            Expr::Binary { op, lhs, rhs, .. } => self.lower_binary(*op, lhs, rhs, frame),
            Expr::Unary { op, operand, .. } => {
                let (v, vt) = self.lower_expr(operand, frame);
                match op {
                    UnaryOp::Neg => match (v, vt) {
                        // fold negation of literals
                        (Operand::ImmInt(i), _) => (Operand::imm_int(-i), ScalarTy::Int),
                        (Operand::ImmFloat(f), _) => (Operand::imm_float(-f), ScalarTy::Float),
                        (v, ScalarTy::Int) => (self.b.unary(UnOp::Neg, v).into(), ScalarTy::Int),
                        (v, ScalarTy::Float) => {
                            (self.b.unary(UnOp::FNeg, v).into(), ScalarTy::Float)
                        }
                    },
                    UnaryOp::Not => {
                        let r = match vt {
                            ScalarTy::Int => self.b.binary(BinOp::CmpEq, v, Operand::imm_int(0)),
                            ScalarTy::Float => {
                                self.b.binary(BinOp::FCmpEq, v, Operand::imm_float(0.0))
                            }
                        };
                        (r.into(), ScalarTy::Int)
                    }
                }
            }
            Expr::Cast { to, operand, .. } => {
                let (v, vt) = self.lower_expr(operand, frame);
                (self.coerce(v, vt, *to), *to)
            }
            Expr::Call { name, args, .. } => {
                if let Some(m) = intrinsic(name) {
                    let (v, vt) = self.lower_expr(&args[0], frame);
                    let v = self.coerce(v, vt, ScalarTy::Float);
                    let r = self.lower_math(m, v);
                    (r.into(), ScalarTy::Float)
                } else {
                    self.inline_call(name, args, frame)
                }
            }
        }
    }

    fn lower_math(&mut self, m: MathFn, v: Operand) -> Reg {
        self.b.unary(UnOp::Math(m), v)
    }

    fn lower_binary(
        &mut self,
        op: BinaryOp,
        lhs: &'a Expr,
        rhs: &'a Expr,
        frame: &mut Frame<'a>,
    ) -> (Operand, ScalarTy) {
        self.lower_binary_impl(op, lhs, rhs, frame, None)
    }

    /// Lower a binary expression; if `into` is given, the final operation
    /// writes that register (the caller guarantees the type matches).
    fn lower_binary_impl(
        &mut self,
        op: BinaryOp,
        lhs: &'a Expr,
        rhs: &'a Expr,
        frame: &mut Frame<'a>,
        into: Option<Reg>,
    ) -> (Operand, ScalarTy) {
        use BinaryOp::*;

        let emit = |me: &mut Self, bop: BinOp, l: Operand, r: Operand| -> Reg {
            match into {
                Some(d) => {
                    me.b.binary_to(d, bop, l, r);
                    d
                }
                None => me.b.binary(bop, l, r),
            }
        };

        // logical ops: normalize both sides to 0/1 ints, then and/or
        if matches!(op, LogAnd | LogOr) {
            let (l, lt) = self.lower_expr(lhs, frame);
            let l = self.normalize_bool(l, lt, lhs);
            let (r, rt) = self.lower_expr(rhs, frame);
            let r = self.normalize_bool(r, rt, rhs);
            let bop = if op == LogAnd { BinOp::And } else { BinOp::Or };
            let out = emit(self, bop, l, r);
            return (out.into(), ScalarTy::Int);
        }

        let (l, lt) = self.lower_expr(lhs, frame);
        let (r, rt) = self.lower_expr(rhs, frame);
        let float = lt == ScalarTy::Float || rt == ScalarTy::Float;

        if op.is_comparison() {
            let (l, r, cmp) = if float {
                (
                    self.coerce(l, lt, ScalarTy::Float),
                    self.coerce(r, rt, ScalarTy::Float),
                    match op {
                        Lt => BinOp::FCmpLt,
                        Le => BinOp::FCmpLe,
                        Gt => BinOp::FCmpGt,
                        Ge => BinOp::FCmpGe,
                        Eq => BinOp::FCmpEq,
                        Ne => BinOp::FCmpNe,
                        _ => unreachable!(),
                    },
                )
            } else {
                (
                    l,
                    r,
                    match op {
                        Lt => BinOp::CmpLt,
                        Le => BinOp::CmpLe,
                        Gt => BinOp::CmpGt,
                        Ge => BinOp::CmpGe,
                        Eq => BinOp::CmpEq,
                        Ne => BinOp::CmpNe,
                        _ => unreachable!(),
                    },
                )
            };
            let out = emit(self, cmp, l, r);
            return (out.into(), ScalarTy::Int);
        }

        if op.int_only() {
            let bop = match op {
                Rem => BinOp::Rem,
                Shl => BinOp::Shl,
                Shr => BinOp::Shr,
                BitAnd => BinOp::And,
                BitOr => BinOp::Or,
                BitXor => BinOp::Xor,
                _ => unreachable!(),
            };
            let out = emit(self, bop, l, r);
            return (out.into(), ScalarTy::Int);
        }

        // arithmetic
        let (l, r, bop, ty) = if float {
            (
                self.coerce(l, lt, ScalarTy::Float),
                self.coerce(r, rt, ScalarTy::Float),
                match op {
                    Add => BinOp::FAdd,
                    Sub => BinOp::FSub,
                    Mul => BinOp::FMul,
                    Div => BinOp::FDiv,
                    _ => unreachable!(),
                },
                ScalarTy::Float,
            )
        } else {
            (
                l,
                r,
                match op {
                    Add => BinOp::Add,
                    Sub => BinOp::Sub,
                    Mul => BinOp::Mul,
                    Div => BinOp::Div,
                    _ => unreachable!(),
                },
                ScalarTy::Int,
            )
        };
        let out = emit(self, bop, l, r);
        (out.into(), ty)
    }

    /// Inline a user-function call; returns its result operand.
    fn inline_call(
        &mut self,
        name: &str,
        args: &'a [Expr],
        frame: &mut Frame<'a>,
    ) -> (Operand, ScalarTy) {
        let callee = self.unit.function(name).expect("sema checked");
        // evaluate arguments in the caller's frame
        let mut bound: HashMap<&str, (Reg, ScalarTy)> = HashMap::new();
        for ((pname, pty), arg) in callee.params.iter().zip(args) {
            let (v, vt) = self.lower_expr(arg, frame);
            let v = self.coerce(v, vt, *pty);
            let pr = self.b.new_reg(pty.ir());
            self.b.mov_to(pr, v);
            bound.insert(pname, (pr, *pty));
        }
        let ret_ty = callee.ret.unwrap_or(ScalarTy::Int);
        let ret_reg = self.b.new_reg(ret_ty.ir());
        let cont = self.b.new_labeled_block(format!("inline.{name}.cont"));
        let mut callee_frame = Frame {
            scopes: vec![bound],
            ret_reg: Some((ret_reg, ret_ty)),
            ret_block: Some(cont),
        };
        self.lower_stmts(&callee.body, &mut callee_frame);
        if !self.b.current_is_terminated() {
            self.b.jump(cont);
        }
        self.b.select_block(cont);
        (ret_reg.into(), ret_ty)
    }

    /// Convert an operand between scalar types if needed.
    fn coerce(&mut self, v: Operand, from: ScalarTy, to: ScalarTy) -> Operand {
        if from == to {
            return v;
        }
        // fold conversions of immediates
        match (v, to) {
            (Operand::ImmInt(i), ScalarTy::Float) => Operand::imm_float(i as f64),
            (Operand::ImmFloat(f), ScalarTy::Int) => Operand::imm_int(f as i64),
            (v, ScalarTy::Float) => self.b.unary(UnOp::IntToFloat, v).into(),
            (v, ScalarTy::Int) => self.b.unary(UnOp::FloatToInt, v).into(),
        }
    }

    /// Produce an int condition operand for a branch.
    fn lower_condition(&mut self, v: Operand, t: ScalarTy) -> Operand {
        match t {
            ScalarTy::Int => v,
            ScalarTy::Float => self
                .b
                .binary(BinOp::FCmpNe, v, Operand::imm_float(0.0))
                .into(),
        }
    }

    /// Normalize a value to 0/1 for `&&`/`||`. Comparison and `!` results
    /// are already 0/1 and skip the extra compare.
    fn normalize_bool(&mut self, v: Operand, t: ScalarTy, src: &Expr) -> Operand {
        let already_bool = matches!(
            src,
            Expr::Binary { op, .. } if op.is_comparison() || matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr)
        ) || matches!(
            src,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        );
        if already_bool {
            return v;
        }
        match t {
            ScalarTy::Int => self.b.binary(BinOp::CmpNe, v, Operand::imm_int(0)).into(),
            ScalarTy::Float => self
                .b
                .binary(BinOp::FCmpNe, v, Operand::imm_float(0.0))
                .into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer::lex, parser::parse, sema};

    fn compile(src: &str) -> Program {
        let unit = parse(&lex(src).expect("lex")).expect("parse");
        sema::check(&unit).expect("sema");
        lower("test", &unit).expect("lower")
    }

    #[test]
    fn straight_line_lowering() {
        let p = compile("input int x[2]; output int y[1]; void main() { y[0] = x[0] * x[1] + 3; }");
        assert!(p.validate().is_ok());
        // load, load, mul, add, store, ret
        assert_eq!(p.inst_count(), 6);
    }

    #[test]
    fn for_loop_lowers_to_single_block_bottom_test_loop() {
        let p = compile(
            r#"
            input int x[8]; output int y[8];
            void main() {
                int i;
                for (i = 0; i < 8; i = i + 1) { y[i] = x[i] + 1; }
            }
            "#,
        );
        // entry (init + guard), body (work + step + re-test), exit
        assert_eq!(p.blocks().len(), 3);
        // body block branches back to itself: a single-block natural loop
        let body = p
            .blocks()
            .iter()
            .find(|b| b.label.as_deref() == Some("for.body"))
            .expect("body block");
        assert!(body.successors().contains(&body.id));
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let p = compile("void main() { float f; f = 1 + 2.5; }");
        let has_fadd = p.insts().any(|(_, i)| {
            matches!(
                &i.kind,
                asip_ir::InstKind::Binary {
                    op: BinOp::FAdd,
                    ..
                }
            )
        });
        assert!(has_fadd);
    }

    #[test]
    fn assignment_converts_to_destination_type() {
        let p = compile("void main() { int a; a = 2.5 * 2.0; }");
        let has_ftoi = p.insts().any(|(_, i)| {
            matches!(
                &i.kind,
                asip_ir::InstKind::Unary {
                    op: UnOp::FloatToInt,
                    ..
                }
            )
        });
        assert!(has_ftoi);
    }

    #[test]
    fn inlining_flattens_calls() {
        let p = compile(
            r#"
            float twice(float v) { return v * 2.0; }
            void main() { float f; f = twice(twice(1.5)); }
            "#,
        );
        assert!(p.validate().is_ok());
        // two inlined bodies => two fmul instructions
        let fmuls = p
            .insts()
            .filter(|(_, i)| {
                matches!(
                    &i.kind,
                    asip_ir::InstKind::Binary {
                        op: BinOp::FMul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(fmuls, 2);
    }

    #[test]
    fn early_return_in_if() {
        let p = compile(
            r#"
            int pick(int a) { if (a > 0) { return 1; } return 0; }
            void main() { int r; r = pick(3); }
            "#,
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn globals_are_zero_initialized() {
        let p = compile("int acc; void main() { acc = acc + 1; }");
        // entry block starts with mov r, 0
        let first = &p.blocks()[0].insts[0];
        assert!(matches!(
            &first.kind,
            asip_ir::InstKind::Unary {
                op: UnOp::Mov,
                src: Operand::ImmInt(0),
                ..
            }
        ));
    }

    #[test]
    fn while_and_if_else_lower() {
        let p = compile(
            r#"
            void main() {
                int i; int acc;
                i = 0; acc = 0;
                while (i < 10) {
                    if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
                    i = i + 1;
                }
            }
            "#,
        );
        assert!(p.validate().is_ok());
        assert!(p.blocks().len() >= 6);
    }

    #[test]
    fn logical_and_or_lower_numerically() {
        let p = compile("void main() { int a; a = (1 < 2) && (3 < 4); }");
        let has_and = p
            .insts()
            .any(|(_, i)| matches!(&i.kind, asip_ir::InstKind::Binary { op: BinOp::And, .. }));
        assert!(has_and);
        // comparisons already 0/1: no extra CmpNe emitted
        let cmpne = p
            .insts()
            .filter(|(_, i)| {
                matches!(
                    &i.kind,
                    asip_ir::InstKind::Binary {
                        op: BinOp::CmpNe,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(cmpne, 0);
    }

    #[test]
    fn intrinsics_lower_to_math_ops() {
        let p = compile("void main() { float f; f = sin(0.5) + sqrt(2.0); }");
        let maths = p
            .insts()
            .filter(|(_, i)| {
                matches!(
                    &i.kind,
                    asip_ir::InstKind::Unary {
                        op: UnOp::Math(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(maths, 2);
    }

    #[test]
    fn negation_folds_literals() {
        let p = compile("void main() { int a; a = -5; float f; f = -2.5; }");
        let negs = p
            .insts()
            .filter(|(_, i)| {
                matches!(
                    &i.kind,
                    asip_ir::InstKind::Unary {
                        op: UnOp::Neg | UnOp::FNeg,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(negs, 0, "literal negation should fold");
    }
}
