//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::{FrontendError, Pos};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Parse a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns [`FrontendError::Parse`] with the position of the offending
/// token.
pub fn parse(tokens: &[Token]) -> Result<Unit, FrontendError> {
    Parser { tokens, i: 0 }.unit()
}

struct Parser<'a> {
    tokens: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.i.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.i.min(self.tokens.len() - 1)];
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn err(&self, detail: impl Into<String>) -> FrontendError {
        FrontendError::parse(self.pos(), detail.into())
    }

    fn eat_punct(&mut self, p: Punct) -> Result<(), FrontendError> {
        match self.peek_kind() {
            TokenKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other}"))),
        }
    }

    fn try_punct(&mut self, p: Punct) -> bool {
        if matches!(self.peek_kind(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> Result<String, FrontendError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn try_scalar_ty(&mut self) -> Option<ScalarTy> {
        match self.peek_kind() {
            TokenKind::Keyword(Keyword::Int) => {
                self.bump();
                Some(ScalarTy::Int)
            }
            TokenKind::Keyword(Keyword::Float) => {
                self.bump();
                Some(ScalarTy::Float)
            }
            _ => None,
        }
    }

    fn unit(mut self) -> Result<Unit, FrontendError> {
        let mut unit = Unit::default();
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return Ok(unit),
                TokenKind::Keyword(Keyword::Input) => {
                    self.bump();
                    unit.arrays.push(self.array_def(Storage::Input)?);
                }
                TokenKind::Keyword(Keyword::Output) => {
                    self.bump();
                    unit.arrays.push(self.array_def(Storage::Output)?);
                }
                TokenKind::Keyword(Keyword::Void) => {
                    let pos = self.pos();
                    self.bump();
                    let name = self.eat_ident()?;
                    unit.functions.push(self.func_def(name, None, pos)?);
                }
                TokenKind::Keyword(Keyword::Int | Keyword::Float) => {
                    let pos = self.pos();
                    let ty = self.try_scalar_ty().expect("peeked");
                    let name = self.eat_ident()?;
                    match self.peek_kind() {
                        TokenKind::Punct(Punct::LParen) => {
                            unit.functions.push(self.func_def(name, Some(ty), pos)?);
                        }
                        TokenKind::Punct(Punct::LBracket) => {
                            unit.arrays.push(self.array_def_named(
                                name,
                                ty,
                                Storage::Internal,
                                pos,
                            )?);
                        }
                        TokenKind::Punct(Punct::Semi) => {
                            self.bump();
                            unit.globals.push(GlobalDef { name, ty, pos });
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected `(`, `[` or `;` after global `{name}`, found {other}"
                            )))
                        }
                    }
                }
                other => return Err(self.err(format!("expected declaration, found {other}"))),
            }
        }
    }

    fn array_def(&mut self, storage: Storage) -> Result<ArrayDef, FrontendError> {
        let pos = self.pos();
        let ty = self
            .try_scalar_ty()
            .ok_or_else(|| self.err("expected element type"))?;
        let name = self.eat_ident()?;
        self.array_def_named(name, ty, storage, pos)
    }

    fn array_def_named(
        &mut self,
        name: String,
        ty: ScalarTy,
        storage: Storage,
        pos: Pos,
    ) -> Result<ArrayDef, FrontendError> {
        self.eat_punct(Punct::LBracket)?;
        let len = match self.peek_kind() {
            TokenKind::IntLit(v) if *v > 0 => {
                let v = *v as usize;
                self.bump();
                v
            }
            other => return Err(self.err(format!("expected positive array length, found {other}"))),
        };
        self.eat_punct(Punct::RBracket)?;
        self.eat_punct(Punct::Semi)?;
        Ok(ArrayDef {
            name,
            ty,
            len,
            storage,
            pos,
        })
    }

    fn func_def(
        &mut self,
        name: String,
        ret: Option<ScalarTy>,
        pos: Pos,
    ) -> Result<FuncDef, FrontendError> {
        self.eat_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.try_punct(Punct::RParen) {
            loop {
                let ty = self
                    .try_scalar_ty()
                    .ok_or_else(|| self.err("expected parameter type"))?;
                let pname = self.eat_ident()?;
                params.push((pname, ty));
                if self.try_punct(Punct::RParen) {
                    break;
                }
                self.eat_punct(Punct::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(FuncDef {
            name,
            ret,
            params,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.eat_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.try_punct(Punct::RBrace) {
            if matches!(self.peek_kind(), TokenKind::Eof) {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        if matches!(self.peek_kind(), TokenKind::Punct(Punct::LBrace)) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// `+=`/`-=`/`*=`//`=` desugar target, if the next token is one.
    fn peek_compound_assign(&self) -> Option<BinaryOp> {
        match self.peek_kind() {
            TokenKind::Punct(Punct::PlusAssign) => Some(BinaryOp::Add),
            TokenKind::Punct(Punct::MinusAssign) => Some(BinaryOp::Sub),
            TokenKind::Punct(Punct::StarAssign) => Some(BinaryOp::Mul),
            TokenKind::Punct(Punct::SlashAssign) => Some(BinaryOp::Div),
            _ => None,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let pos = self.pos();
        match self.peek_kind() {
            TokenKind::Keyword(Keyword::Int | Keyword::Float) => {
                let ty = self.try_scalar_ty().expect("peeked");
                let name = self.eat_ident()?;
                let init = if self.try_punct(Punct::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::Decl {
                    name,
                    ty,
                    init,
                    pos,
                })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                let then_body = self.stmt_or_block()?;
                let else_body = if matches!(self.peek_kind(), TokenKind::Keyword(Keyword::Else)) {
                    self.bump();
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let init = Box::new(self.simple_assign()?);
                self.eat_punct(Punct::Semi)?;
                let cond = self.expr()?;
                self.eat_punct(Punct::Semi)?;
                let step = Box::new(self.simple_assign()?);
                self.eat_punct(Punct::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.try_punct(Punct::Semi) {
                    None
                } else {
                    let e = self.expr()?;
                    self.eat_punct(Punct::Semi)?;
                    Some(e)
                };
                Ok(Stmt::Return { value, pos })
            }
            TokenKind::Ident(_) => {
                // assignment or expression statement; try assignment first
                let save = self.i;
                let name = self.eat_ident()?;
                if let Some(op) = self.peek_compound_assign() {
                    // `x op= e` desugars to `x = x op e`
                    self.bump();
                    let rhs = self.expr()?;
                    self.eat_punct(Punct::Semi)?;
                    return Ok(Stmt::Assign {
                        value: Expr::Binary {
                            op,
                            lhs: Box::new(Expr::Var(name.clone(), pos)),
                            rhs: Box::new(rhs),
                            pos,
                        },
                        name,
                        pos,
                    });
                }
                match self.peek_kind() {
                    TokenKind::Punct(Punct::Assign) => {
                        self.bump();
                        let value = self.expr()?;
                        self.eat_punct(Punct::Semi)?;
                        Ok(Stmt::Assign { name, value, pos })
                    }
                    TokenKind::Punct(Punct::LBracket) => {
                        self.bump();
                        let index = self.expr()?;
                        self.eat_punct(Punct::RBracket)?;
                        if let Some(op) = self.peek_compound_assign() {
                            // `x[i] op= e` desugars to `x[i] = x[i] op e`
                            // (the index expression is pure, so double
                            // evaluation is observationally equivalent)
                            self.bump();
                            let rhs = self.expr()?;
                            self.eat_punct(Punct::Semi)?;
                            return Ok(Stmt::AssignIndex {
                                value: Expr::Binary {
                                    op,
                                    lhs: Box::new(Expr::Index {
                                        name: name.clone(),
                                        index: Box::new(index.clone()),
                                        pos,
                                    }),
                                    rhs: Box::new(rhs),
                                    pos,
                                },
                                name,
                                index,
                                pos,
                            });
                        }
                        if self.try_punct(Punct::Assign) {
                            let value = self.expr()?;
                            self.eat_punct(Punct::Semi)?;
                            Ok(Stmt::AssignIndex {
                                name,
                                index,
                                value,
                                pos,
                            })
                        } else {
                            // `x[i]` as an expression statement — re-parse
                            self.i = save;
                            let e = self.expr()?;
                            self.eat_punct(Punct::Semi)?;
                            Ok(Stmt::Expr(e))
                        }
                    }
                    _ => {
                        self.i = save;
                        let e = self.expr()?;
                        self.eat_punct(Punct::Semi)?;
                        Ok(Stmt::Expr(e))
                    }
                }
            }
            other => Err(self.err(format!("expected statement, found {other}"))),
        }
    }

    /// `ident = expr` or `ident[expr] = expr` (no trailing `;`) for `for`
    /// headers.
    fn simple_assign(&mut self) -> Result<Stmt, FrontendError> {
        let pos = self.pos();
        let name = self.eat_ident()?;
        if let Some(op) = self.peek_compound_assign() {
            self.bump();
            let rhs = self.expr()?;
            return Ok(Stmt::Assign {
                value: Expr::Binary {
                    op,
                    lhs: Box::new(Expr::Var(name.clone(), pos)),
                    rhs: Box::new(rhs),
                    pos,
                },
                name,
                pos,
            });
        }
        if self.try_punct(Punct::LBracket) {
            let index = self.expr()?;
            self.eat_punct(Punct::RBracket)?;
            self.eat_punct(Punct::Assign)?;
            let value = self.expr()?;
            Ok(Stmt::AssignIndex {
                name,
                index,
                value,
                pos,
            })
        } else {
            self.eat_punct(Punct::Assign)?;
            let value = self.expr()?;
            Ok(Stmt::Assign { name, value, pos })
        }
    }

    // --- expressions, precedence climbing -------------------------------

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let Some((op, prec)) = self.peek_binop() else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn peek_binop(&self) -> Option<(BinaryOp, u8)> {
        let TokenKind::Punct(p) = self.peek_kind() else {
            return None;
        };
        Some(match p {
            Punct::PipePipe => (BinaryOp::LogOr, 1),
            Punct::AmpAmp => (BinaryOp::LogAnd, 2),
            Punct::Pipe => (BinaryOp::BitOr, 3),
            Punct::Caret => (BinaryOp::BitXor, 4),
            Punct::Amp => (BinaryOp::BitAnd, 5),
            Punct::EqEq => (BinaryOp::Eq, 6),
            Punct::Ne => (BinaryOp::Ne, 6),
            Punct::Lt => (BinaryOp::Lt, 7),
            Punct::Le => (BinaryOp::Le, 7),
            Punct::Gt => (BinaryOp::Gt, 7),
            Punct::Ge => (BinaryOp::Ge, 7),
            Punct::Shl => (BinaryOp::Shl, 8),
            Punct::Shr => (BinaryOp::Shr, 8),
            Punct::Plus => (BinaryOp::Add, 9),
            Punct::Minus => (BinaryOp::Sub, 9),
            Punct::Star => (BinaryOp::Mul, 10),
            Punct::Slash => (BinaryOp::Div, 10),
            Punct::Percent => (BinaryOp::Rem, 10),
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        let pos = self.pos();
        match self.peek_kind() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(self.unary_expr()?),
                    pos,
                })
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(self.unary_expr()?),
                    pos,
                })
            }
            TokenKind::Punct(Punct::LParen) => {
                // cast `(int) e` / `(float) e`, or parenthesized expression
                if let TokenKind::Keyword(k @ (Keyword::Int | Keyword::Float)) =
                    self.tokens[self.i + 1].kind
                {
                    self.bump(); // (
                    self.bump(); // type
                    self.eat_punct(Punct::RParen)?;
                    let to = if k == Keyword::Int {
                        ScalarTy::Int
                    } else {
                        ScalarTy::Float
                    };
                    return Ok(Expr::Cast {
                        to,
                        operand: Box::new(self.unary_expr()?),
                        pos,
                    });
                }
                self.bump();
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                Ok(e)
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        let pos = self.pos();
        match self.peek_kind().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v, pos))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, pos))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.try_punct(Punct::LBracket) {
                    let index = self.expr()?;
                    self.eat_punct(Punct::RBracket)?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                        pos,
                    })
                } else if self.try_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.try_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.try_punct(Punct::RParen) {
                                break;
                            }
                            self.eat_punct(Punct::Comma)?;
                        }
                    }
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).expect("lexes")).expect("parses")
    }

    #[test]
    fn parses_arrays_globals_functions() {
        let u = parse_src(
            r#"
            input float x[100];
            output int y[10];
            float scratch[5];
            int counter;
            void main() { }
            float helper(float a, int b) { return a; }
            "#,
        );
        assert_eq!(u.arrays.len(), 3);
        assert_eq!(u.arrays[0].storage, Storage::Input);
        assert_eq!(u.arrays[1].storage, Storage::Output);
        assert_eq!(u.arrays[2].storage, Storage::Internal);
        assert_eq!(u.globals.len(), 1);
        assert_eq!(u.functions.len(), 2);
        assert_eq!(u.functions[1].params.len(), 2);
        assert_eq!(u.functions[1].ret, Some(ScalarTy::Float));
    }

    #[test]
    fn precedence_mul_over_add() {
        let u = parse_src("void main() { int a; a = 1 + 2 * 3; }");
        let Stmt::Assign { value, .. } = &u.functions[0].body[1] else {
            panic!("expected assign");
        };
        let Expr::Binary { op, rhs, .. } = value else {
            panic!("expected binary");
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_for_loop_and_if_else() {
        let u = parse_src(
            r#"
            void main() {
                int i;
                for (i = 0; i < 10; i = i + 1) {
                    if (i > 5) { i = i + 2; } else i = i + 1;
                }
            }
            "#,
        );
        let Stmt::For { body, .. } = &u.functions[0].body[1] else {
            panic!("expected for");
        };
        assert!(matches!(body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_casts_and_calls() {
        let u = parse_src("void main() { float f; f = (float) 3 + sin(1.0); }");
        let Stmt::Assign { value, .. } = &u.functions[0].body[1] else {
            panic!()
        };
        let Expr::Binary { lhs, rhs, .. } = value else {
            panic!()
        };
        assert!(matches!(
            **lhs,
            Expr::Cast {
                to: ScalarTy::Float,
                ..
            }
        ));
        assert!(matches!(**rhs, Expr::Call { .. }));
    }

    #[test]
    fn parses_array_assignment_and_read() {
        let u = parse_src("input int x[4]; output int y[4]; void main() { y[0] = x[1] + 1; }");
        assert!(matches!(u.functions[0].body[0], Stmt::AssignIndex { .. }));
    }

    #[test]
    fn parenthesized_expression_is_not_cast() {
        let u = parse_src("void main() { int a; a = (1 + 2) * 3; }");
        let Stmt::Assign { value, .. } = &u.functions[0].body[1] else {
            panic!()
        };
        assert!(matches!(
            value,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn compound_assignments_desugar() {
        let u = parse_src(
            r#"
            input int x[4]; output int y[4];
            void main() {
                int acc;
                acc = 0;
                acc += x[0];
                acc -= 2;
                acc *= 3;
                acc /= 2;
                y[1] += acc;
                for (acc = 0; acc < 4; acc += 1) { y[0] = acc; }
            }
            "#,
        );
        let body = &u.functions[0].body;
        // acc += x[0] becomes acc = acc + x[0]
        let Stmt::Assign { name, value, .. } = &body[2] else {
            panic!("expected assign");
        };
        assert_eq!(name, "acc");
        assert!(matches!(
            value,
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
        // y[1] += acc becomes y[1] = y[1] + acc
        let Stmt::AssignIndex { value, .. } = &body[6] else {
            panic!("expected indexed assign");
        };
        assert!(matches!(
            value,
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
        // the for-step `acc += 1` also desugars
        let Stmt::For { step, .. } = &body[7] else {
            panic!("expected for");
        };
        assert!(matches!(**step, Stmt::Assign { .. }));
    }

    #[test]
    fn rejects_bad_syntax() {
        let toks = lex("void main() { int; }").expect("lexes");
        assert!(parse(&toks).is_err());
        let toks = lex("void main() {").expect("lexes");
        assert!(parse(&toks).is_err());
        let toks = lex("int x[0];").expect("lexes");
        assert!(parse(&toks).is_err(), "zero-length array rejected");
    }

    #[test]
    fn logical_ops_parse_with_lowest_precedence() {
        let u = parse_src("void main() { int a; a = 1 < 2 && 3 < 4 || 0; }");
        let Stmt::Assign { value, .. } = &u.functions[0].body[1] else {
            panic!()
        };
        assert!(matches!(
            value,
            Expr::Binary {
                op: BinaryOp::LogOr,
                ..
            }
        ));
    }
}
