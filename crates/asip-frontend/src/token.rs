//! Token definitions for mini-C.

use crate::error::Pos;
use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Source position of the first character.
    pub pos: Pos,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// A keyword (`int`, `float`, `void`, `if`, ...).
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `void`
    Void,
    /// `input` (array storage class)
    Input,
    /// `output` (array storage class)
    Output,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
}

impl Keyword {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Float => "float",
            Keyword::Void => "void",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
        }
    }

    /// Parse a keyword from an identifier spelling.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not a FromStr impl
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "float" => Keyword::Float,
            "void" => Keyword::Void,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            _ => return None,
        })
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `!`
    Bang,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::AmpAmp => "&&",
            Punct::PipePipe => "||",
            Punct::Bang => "!",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::Assign => "=",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::SlashAssign => "/=",
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::Comma => ",",
            Punct::Semi => ";",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer literal `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Int,
            Keyword::Float,
            Keyword::Void,
            Keyword::Input,
            Keyword::Output,
            Keyword::If,
            Keyword::Else,
            Keyword::While,
            Keyword::For,
            Keyword::Return,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("main"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(TokenKind::Punct(Punct::Le).to_string(), "`<=`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
