//! # asip-frontend
//!
//! A small C-subset ("mini-C") compiler front end that lowers benchmark
//! sources to [`asip_ir`] three-address code.
//!
//! This substitutes for the paper's "version of the Gnu C Compiler (gcc)
//! which was modified to generate a 3-address code" (Figure 2, step 1).
//! The sequence analysis only consumes generic 3-address code, so any
//! front end that lowers arithmetic, loops and array accesses faithfully
//! exercises the same downstream code paths.
//!
//! ## Language
//!
//! - Types: `int`, `float` (64-bit each), 1-D global arrays.
//! - Array storage classes: `input` (bound from experiment data),
//!   `output`, plain (internal scratch).
//! - Functions with value parameters and a scalar return; *all calls are
//!   inlined* (the analysis is intraprocedural, as in the paper) and
//!   recursion is rejected.
//! - Statements: declarations, assignments (including `+=`, `-=`, `*=`,
//!   `/=`, which desugar in the parser), `if`/`else`, `while`, `for`,
//!   `return`, blocks.
//! - Expressions: `+ - * / %`, shifts, bitwise `& | ^`, comparisons,
//!   `&& || !` (numeric, non-short-circuit), unary `-`, casts
//!   `(int)`/`(float)`, and the math intrinsics
//!   `sin cos sqrt fabs exp log floor`.
//! - Implicit int↔float conversions follow C: mixed arithmetic promotes
//!   to `float`, assignment converts to the destination type.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     input int x[8];
//!     output int y[8];
//!     void main() {
//!         int i;
//!         for (i = 0; i < 8; i = i + 1) {
//!             y[i] = x[i] * x[i] + 1;
//!         }
//!     }
//! "#;
//! let program = asip_frontend::compile("sumsq", src)?;
//! assert!(program.inst_count() > 0);
//! # Ok::<(), asip_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;
pub mod token;

pub use error::FrontendError;

use asip_ir::Program;

/// Compile mini-C source text into a validated IR [`Program`].
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first lexical, syntactic or
/// semantic problem found, with source position.
pub fn compile(name: &str, source: &str) -> Result<Program, FrontendError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    sema::check(&unit)?;
    let mut program = lower::lower(name, &unit)?;
    // standard front-end cleanup: the "3-address code" the paper's
    // profiler and analyzer consume has no redundant temporaries
    asip_ir::passes::cleanup(&mut program);
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let src = r#"
            input float x[4];
            output float y[4];
            void main() {
                int i;
                for (i = 0; i < 4; i = i + 1) {
                    y[i] = x[i] * 2.0;
                }
            }
        "#;
        let p = compile("t", src).expect("compiles");
        assert_eq!(p.name, "t");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn error_carries_position() {
        let err = compile("t", "void main() { $ }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line"), "got: {msg}");
    }
}
