//! Semantic analysis: name resolution, type checking, recursion rejection.

use crate::ast::*;
use crate::error::{FrontendError, Pos};
use std::collections::{HashMap, HashSet};

/// Check a translation unit.
///
/// # Errors
///
/// Returns the first semantic error: duplicate/undeclared names, type
/// errors, bad calls, recursion, or a missing/ill-formed `main`.
pub fn check(unit: &Unit) -> Result<(), FrontendError> {
    Checker::new(unit).run()
}

struct Checker<'a> {
    unit: &'a Unit,
    arrays: HashMap<&'a str, &'a ArrayDef>,
    globals: HashMap<&'a str, ScalarTy>,
    funcs: HashMap<&'a str, &'a FuncDef>,
}

struct FuncScope<'a> {
    /// Innermost scope last. Each maps name -> type.
    stack: Vec<HashMap<&'a str, ScalarTy>>,
}

impl<'a> FuncScope<'a> {
    fn lookup(&self, name: &str) -> Option<ScalarTy> {
        self.stack.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &'a str, ty: ScalarTy) -> bool {
        self.stack
            .last_mut()
            .expect("scope stack never empty")
            .insert(name, ty)
            .is_none()
    }
}

impl<'a> Checker<'a> {
    fn new(unit: &'a Unit) -> Self {
        Checker {
            unit,
            arrays: HashMap::new(),
            globals: HashMap::new(),
            funcs: HashMap::new(),
        }
    }

    fn run(mut self) -> Result<(), FrontendError> {
        let mut names: HashSet<&str> = HashSet::new();
        for a in &self.unit.arrays {
            if !names.insert(&a.name) {
                return Err(FrontendError::sema(
                    a.pos,
                    format!("duplicate global name `{}`", a.name),
                ));
            }
            self.arrays.insert(&a.name, a);
        }
        for g in &self.unit.globals {
            if !names.insert(&g.name) {
                return Err(FrontendError::sema(
                    g.pos,
                    format!("duplicate global name `{}`", g.name),
                ));
            }
            self.globals.insert(&g.name, g.ty);
        }
        for f in &self.unit.functions {
            if intrinsic(&f.name).is_some() {
                return Err(FrontendError::sema(
                    f.pos,
                    format!("`{}` shadows a math intrinsic", f.name),
                ));
            }
            if !names.insert(&f.name) {
                return Err(FrontendError::sema(
                    f.pos,
                    format!("duplicate global name `{}`", f.name),
                ));
            }
            self.funcs.insert(&f.name, f);
        }

        let main = self.unit.function("main").ok_or_else(|| {
            FrontendError::sema(Pos::default(), "program must define `void main()`")
        })?;
        if main.ret.is_some() || !main.params.is_empty() {
            return Err(FrontendError::sema(
                main.pos,
                "`main` must be `void main()` with no parameters",
            ));
        }

        for f in &self.unit.functions {
            self.check_function(f)?;
        }
        self.check_no_recursion()?;
        Ok(())
    }

    fn check_function(&self, f: &'a FuncDef) -> Result<(), FrontendError> {
        let mut scope = FuncScope {
            stack: vec![HashMap::new()],
        };
        for (name, ty) in &f.params {
            if self.arrays.contains_key(name.as_str()) || self.globals.contains_key(name.as_str()) {
                return Err(FrontendError::sema(
                    f.pos,
                    format!("parameter `{name}` shadows a global"),
                ));
            }
            if !scope.declare(name, *ty) {
                return Err(FrontendError::sema(
                    f.pos,
                    format!("duplicate parameter `{name}`"),
                ));
            }
        }
        self.check_block(f, &f.body, &mut scope)
    }

    fn check_block(
        &self,
        f: &'a FuncDef,
        stmts: &'a [Stmt],
        scope: &mut FuncScope<'a>,
    ) -> Result<(), FrontendError> {
        scope.stack.push(HashMap::new());
        for s in stmts {
            self.check_stmt(f, s, scope)?;
        }
        scope.stack.pop();
        Ok(())
    }

    fn check_stmt(
        &self,
        f: &'a FuncDef,
        stmt: &'a Stmt,
        scope: &mut FuncScope<'a>,
    ) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                pos,
            } => {
                if let Some(init) = init {
                    self.expr_ty(init, scope)?;
                }
                if self.arrays.contains_key(name.as_str()) {
                    return Err(FrontendError::sema(
                        *pos,
                        format!("local `{name}` shadows a global array"),
                    ));
                }
                if !scope.declare(name, *ty) {
                    return Err(FrontendError::sema(
                        *pos,
                        format!("duplicate local `{name}` in this scope"),
                    ));
                }
                Ok(())
            }
            Stmt::Assign { name, value, pos } => {
                self.expr_ty(value, scope)?;
                self.scalar_var_ty(name, scope)
                    .ok_or_else(|| {
                        FrontendError::sema(*pos, format!("assignment to undeclared `{name}`"))
                    })
                    .map(|_| ())
            }
            Stmt::AssignIndex {
                name,
                index,
                value,
                pos,
            } => {
                let idx_ty = self.expr_ty(index, scope)?;
                if idx_ty != ScalarTy::Int {
                    return Err(FrontendError::sema(*pos, "array index must be int"));
                }
                self.expr_ty(value, scope)?;
                if !self.arrays.contains_key(name.as_str()) {
                    return Err(FrontendError::sema(
                        *pos,
                        format!("`{name}` is not a declared array"),
                    ));
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.expr_ty(cond, scope)?;
                self.check_block(f, then_body, scope)?;
                self.check_block(f, else_body, scope)
            }
            Stmt::While { cond, body, .. } => {
                self.expr_ty(cond, scope)?;
                self.check_block(f, body, scope)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.check_stmt(f, init, scope)?;
                self.expr_ty(cond, scope)?;
                self.check_stmt(f, step, scope)?;
                self.check_block(f, body, scope)
            }
            Stmt::Return { value, pos } => match (&f.ret, value) {
                (None, Some(_)) => Err(FrontendError::sema(
                    *pos,
                    "void function cannot return a value",
                )),
                (Some(_), None) => Err(FrontendError::sema(
                    *pos,
                    "non-void function must return a value",
                )),
                (Some(_), Some(v)) => self.expr_ty(v, scope).map(|_| ()),
                (None, None) => Ok(()),
            },
            Stmt::Expr(e) => {
                // only calls make sense for effect; allow void calls here
                if let Expr::Call { name, args, pos } = e {
                    self.check_call(name, args, scope, *pos, true).map(|_| ())
                } else {
                    self.expr_ty(e, scope).map(|_| ())
                }
            }
        }
    }

    fn scalar_var_ty(&self, name: &str, scope: &FuncScope<'a>) -> Option<ScalarTy> {
        scope
            .lookup(name)
            .or_else(|| self.globals.get(name).copied())
    }

    fn expr_ty(&self, e: &'a Expr, scope: &FuncScope<'a>) -> Result<ScalarTy, FrontendError> {
        match e {
            Expr::IntLit(..) => Ok(ScalarTy::Int),
            Expr::FloatLit(..) => Ok(ScalarTy::Float),
            Expr::Var(name, pos) => self
                .scalar_var_ty(name, scope)
                .ok_or_else(|| FrontendError::sema(*pos, format!("undeclared variable `{name}`"))),
            Expr::Index { name, index, pos } => {
                let idx = self.expr_ty(index, scope)?;
                if idx != ScalarTy::Int {
                    return Err(FrontendError::sema(*pos, "array index must be int"));
                }
                self.arrays.get(name.as_str()).map(|a| a.ty).ok_or_else(|| {
                    FrontendError::sema(*pos, format!("`{name}` is not a declared array"))
                })
            }
            Expr::Binary { op, lhs, rhs, pos } => {
                let lt = self.expr_ty(lhs, scope)?;
                let rt = self.expr_ty(rhs, scope)?;
                if op.int_only() && (lt != ScalarTy::Int || rt != ScalarTy::Int) {
                    return Err(FrontendError::sema(*pos, "operator requires int operands"));
                }
                if op.is_comparison() || matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr) {
                    Ok(ScalarTy::Int)
                } else if lt == ScalarTy::Float || rt == ScalarTy::Float {
                    Ok(ScalarTy::Float)
                } else {
                    Ok(ScalarTy::Int)
                }
            }
            Expr::Unary { op, operand, .. } => {
                let t = self.expr_ty(operand, scope)?;
                Ok(match op {
                    UnaryOp::Neg => t,
                    UnaryOp::Not => ScalarTy::Int,
                })
            }
            Expr::Cast { to, operand, .. } => {
                self.expr_ty(operand, scope)?;
                Ok(*to)
            }
            Expr::Call { name, args, pos } => self
                .check_call(name, args, scope, *pos, false)?
                .ok_or_else(|| {
                    FrontendError::sema(
                        *pos,
                        format!("void function `{name}` used in an expression"),
                    )
                }),
        }
    }

    /// Check a call; returns the return type (`None` = void).
    fn check_call(
        &self,
        name: &str,
        args: &'a [Expr],
        scope: &FuncScope<'a>,
        pos: Pos,
        _stmt_ctx: bool,
    ) -> Result<Option<ScalarTy>, FrontendError> {
        for a in args {
            self.expr_ty(a, scope)?;
        }
        if intrinsic(name).is_some() {
            if args.len() != 1 {
                return Err(FrontendError::sema(
                    pos,
                    format!("intrinsic `{name}` takes exactly one argument"),
                ));
            }
            return Ok(Some(ScalarTy::Float));
        }
        let f = self.funcs.get(name).ok_or_else(|| {
            FrontendError::sema(pos, format!("call to undefined function `{name}`"))
        })?;
        if f.params.len() != args.len() {
            return Err(FrontendError::sema(
                pos,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    f.params.len(),
                    args.len()
                ),
            ));
        }
        Ok(f.ret)
    }

    fn check_no_recursion(&self) -> Result<(), FrontendError> {
        // DFS over the call graph; any back edge = recursion (direct or mutual)
        fn calls_in_expr<'e>(e: &'e Expr, out: &mut Vec<&'e str>) {
            match e {
                Expr::Call { name, args, .. } => {
                    out.push(name);
                    for a in args {
                        calls_in_expr(a, out);
                    }
                }
                Expr::Binary { lhs, rhs, .. } => {
                    calls_in_expr(lhs, out);
                    calls_in_expr(rhs, out);
                }
                Expr::Unary { operand, .. } | Expr::Cast { operand, .. } => {
                    calls_in_expr(operand, out)
                }
                Expr::Index { index, .. } => calls_in_expr(index, out),
                _ => {}
            }
        }
        fn calls_in_stmt<'e>(s: &'e Stmt, out: &mut Vec<&'e str>) {
            match s {
                Stmt::Decl { init, .. } => {
                    if let Some(i) = init {
                        calls_in_expr(i, out);
                    }
                }
                Stmt::Assign { value, .. } => calls_in_expr(value, out),
                Stmt::AssignIndex { index, value, .. } => {
                    calls_in_expr(index, out);
                    calls_in_expr(value, out);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    calls_in_expr(cond, out);
                    for s in then_body.iter().chain(else_body) {
                        calls_in_stmt(s, out);
                    }
                }
                Stmt::While { cond, body, .. } => {
                    calls_in_expr(cond, out);
                    for s in body {
                        calls_in_stmt(s, out);
                    }
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    calls_in_stmt(init, out);
                    calls_in_expr(cond, out);
                    calls_in_stmt(step, out);
                    for s in body {
                        calls_in_stmt(s, out);
                    }
                }
                Stmt::Return { value, .. } => {
                    if let Some(v) = value {
                        calls_in_expr(v, out);
                    }
                }
                Stmt::Expr(e) => calls_in_expr(e, out),
            }
        }

        let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
        for f in &self.unit.functions {
            let mut out = Vec::new();
            for s in &f.body {
                calls_in_stmt(s, &mut out);
            }
            out.retain(|n| self.funcs.contains_key(n));
            edges.insert(&f.name, out);
        }
        // colors: 0 = white, 1 = gray, 2 = black
        let mut color: HashMap<&str, u8> = HashMap::new();
        fn dfs<'x>(
            n: &'x str,
            edges: &HashMap<&'x str, Vec<&'x str>>,
            color: &mut HashMap<&'x str, u8>,
        ) -> bool {
            match color.get(n) {
                Some(1) => return false, // cycle
                Some(2) => return true,
                _ => {}
            }
            color.insert(n, 1);
            for m in edges.get(n).into_iter().flatten() {
                if !dfs(m, edges, color) {
                    return false;
                }
            }
            color.insert(n, 2);
            true
        }
        for f in &self.unit.functions {
            if !dfs(&f.name, &edges, &mut color) {
                return Err(FrontendError::sema(
                    f.pos,
                    format!(
                        "recursion involving `{}` is not supported (all calls are inlined)",
                        f.name
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), FrontendError> {
        check(&parse(&lex(src).expect("lexes")).expect("parses"))
    }

    #[test]
    fn accepts_well_typed_program() {
        check_src(
            r#"
            input float x[8];
            output float y[8];
            float scale(float v, float k) { return v * k; }
            void main() {
                int i;
                for (i = 0; i < 8; i = i + 1) {
                    y[i] = scale(x[i], 2.0);
                }
            }
            "#,
        )
        .expect("valid program");
    }

    #[test]
    fn requires_main() {
        let e = check_src("void notmain() { }").unwrap_err();
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn main_must_be_void_nullary() {
        assert!(check_src("int main() { return 1; }").is_err());
        assert!(check_src("void main(int x) { }").is_err());
    }

    #[test]
    fn rejects_undeclared_names() {
        assert!(check_src("void main() { x = 1; }").is_err());
        assert!(check_src("void main() { int a; a = b + 1; }").is_err());
        assert!(check_src("void main() { int a; a = z[0]; }").is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(check_src("int x; int x; void main() { }").is_err());
        assert!(check_src("void main() { int a; int a; }").is_err());
        // shadowing in an inner scope is fine
        check_src("void main() { int a; if (1) { int a; a = 2; } }").expect("shadowing ok");
    }

    #[test]
    fn rejects_float_index_and_int_only_misuse() {
        assert!(check_src("input int x[4]; void main() { int a; a = x[1.5]; }").is_err());
        assert!(check_src("void main() { float f; int a; f = 1.0; a = a << f; }").is_err());
        assert!(check_src("void main() { float f; f = 1.0 % 2.0; }").is_err());
    }

    #[test]
    fn rejects_recursion() {
        let direct = "int f(int x) { return f(x); } void main() { }";
        assert!(check_src(direct).is_err());
        let mutual = r#"
            int g(int x) { return h(x); }
            int h(int x) { return g(x); }
            void main() { }
        "#;
        assert!(check_src(mutual).is_err());
    }

    #[test]
    fn rejects_bad_calls() {
        assert!(check_src("void main() { int a; a = undef(1); }").is_err());
        assert!(
            check_src("float f(float a) { return a; } void main() { float x; x = f(); }").is_err()
        );
        assert!(check_src("void main() { float x; x = sin(1.0, 2.0); }").is_err());
        assert!(check_src("void v() { } void main() { int a; a = v(); }").is_err());
    }

    #[test]
    fn rejects_return_mismatches() {
        assert!(check_src("void main() { return 1; }").is_err());
        assert!(check_src("int f() { return; } void main() { }").is_err());
    }

    #[test]
    fn void_call_statement_is_fine() {
        check_src("void side() { } void main() { side(); }").expect("void call stmt");
    }

    #[test]
    fn rejects_intrinsic_shadowing() {
        assert!(check_src("float sin(float x) { return x; } void main() { }").is_err());
    }
}
