//! Frontend error type.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// Errors produced by the mini-C front end.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Lexical error (bad character, malformed literal).
    Lex {
        /// Where the problem was found.
        pos: Pos,
        /// Explanation.
        detail: String,
    },
    /// Syntax error.
    Parse {
        /// Where the problem was found.
        pos: Pos,
        /// Explanation.
        detail: String,
    },
    /// Semantic error (types, undeclared names, recursion, ...).
    Sema {
        /// Where the problem was found.
        pos: Pos,
        /// Explanation.
        detail: String,
    },
    /// Lowering produced IR the validator rejected (an internal bug).
    Lowering(asip_ir::IrError),
}

impl FrontendError {
    pub(crate) fn lex(pos: Pos, detail: impl Into<String>) -> Self {
        FrontendError::Lex {
            pos,
            detail: detail.into(),
        }
    }

    pub(crate) fn parse(pos: Pos, detail: impl Into<String>) -> Self {
        FrontendError::Parse {
            pos,
            detail: detail.into(),
        }
    }

    pub(crate) fn sema(pos: Pos, detail: impl Into<String>) -> Self {
        FrontendError::Sema {
            pos,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex { pos, detail } => write!(f, "lexical error at {pos}: {detail}"),
            FrontendError::Parse { pos, detail } => write!(f, "syntax error at {pos}: {detail}"),
            FrontendError::Sema { pos, detail } => write!(f, "semantic error at {pos}: {detail}"),
            FrontendError::Lowering(e) => write!(f, "internal lowering error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Lowering(e) => Some(e),
            _ => None,
        }
    }
}

impl From<asip_ir::IrError> for FrontendError {
    fn from(e: asip_ir::IrError) -> Self {
        FrontendError::Lowering(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_include_positions() {
        let e = FrontendError::parse(Pos { line: 3, col: 9 }, "expected `;`");
        assert_eq!(
            e.to_string(),
            "syntax error at line 3, column 9: expected `;`"
        );
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync>() {}
        assert_bounds::<FrontendError>();
    }
}
