//! Hand-written lexer for mini-C.

use crate::error::{FrontendError, Pos};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Tokenize mini-C source.
///
/// Supports `//` line comments and `/* ... */` block comments.
///
/// # Errors
///
/// Returns [`FrontendError::Lex`] on unknown characters or malformed
/// numeric literals.
pub fn lex(source: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else if c.is_ascii_digit() {
                self.number(pos)?
            } else {
                self.punct(pos)?
            };
            out.push(Token { kind, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => {
                                return Err(FrontendError::lex(start, "unterminated block comment"))
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        let s: String = self.chars[start..self.i].iter().collect();
        match Keyword::from_str(&s) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(s),
        }
    }

    fn number(&mut self, pos: Pos) -> Result<TokenKind, FrontendError> {
        let start = self.i;
        let mut is_float = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            // exponent requires at least one digit, optionally signed
            let save = (self.i, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // not an exponent after all (e.g. `2e` followed by ident)
                self.i = save.0;
                self.line = save.1;
                self.col = save.2;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::FloatLit)
                .map_err(|_| FrontendError::lex(pos, format!("malformed float literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|_| FrontendError::lex(pos, format!("malformed int literal `{text}`")))
        }
    }

    fn punct(&mut self, pos: Pos) -> Result<TokenKind, FrontendError> {
        use Punct::*;
        let c = self.bump().expect("peeked");
        let two = |l: &mut Self, p: Punct| {
            l.bump();
            Ok(TokenKind::Punct(p))
        };
        match c {
            '+' if self.peek() == Some('=') => two(self, PlusAssign),
            '+' => Ok(TokenKind::Punct(Plus)),
            '-' if self.peek() == Some('=') => two(self, MinusAssign),
            '-' => Ok(TokenKind::Punct(Minus)),
            '*' if self.peek() == Some('=') => two(self, StarAssign),
            '*' => Ok(TokenKind::Punct(Star)),
            '/' if self.peek() == Some('=') => two(self, SlashAssign),
            '/' => Ok(TokenKind::Punct(Slash)),
            '%' => Ok(TokenKind::Punct(Percent)),
            '^' => Ok(TokenKind::Punct(Caret)),
            '&' if self.peek() == Some('&') => two(self, AmpAmp),
            '&' => Ok(TokenKind::Punct(Amp)),
            '|' if self.peek() == Some('|') => two(self, PipePipe),
            '|' => Ok(TokenKind::Punct(Pipe)),
            '!' if self.peek() == Some('=') => two(self, Ne),
            '!' => Ok(TokenKind::Punct(Bang)),
            '<' if self.peek() == Some('<') => two(self, Shl),
            '<' if self.peek() == Some('=') => two(self, Le),
            '<' => Ok(TokenKind::Punct(Lt)),
            '>' if self.peek() == Some('>') => two(self, Shr),
            '>' if self.peek() == Some('=') => two(self, Ge),
            '>' => Ok(TokenKind::Punct(Gt)),
            '=' if self.peek() == Some('=') => two(self, EqEq),
            '=' => Ok(TokenKind::Punct(Assign)),
            '(' => Ok(TokenKind::Punct(LParen)),
            ')' => Ok(TokenKind::Punct(RParen)),
            '[' => Ok(TokenKind::Punct(LBracket)),
            ']' => Ok(TokenKind::Punct(RBracket)),
            '{' => Ok(TokenKind::Punct(LBrace)),
            '}' => Ok(TokenKind::Punct(RBrace)),
            ',' => Ok(TokenKind::Punct(Comma)),
            ';' => Ok(TokenKind::Punct(Semi)),
            other => Err(FrontendError::lex(
                pos,
                format!("unexpected character `{other}`"),
            )),
        }
    }
}

// keep `src` around for potential future span slicing without changing the API
impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lexer(at {} of {} chars)", self.i, self.src.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_declaration() {
        let ks = kinds("input float x[100];");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Input),
                TokenKind::Keyword(Keyword::Float),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::LBracket),
                TokenKind::IntLit(100),
                TokenKind::Punct(Punct::RBracket),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_maximal_munch() {
        let ks = kinds("<= < << >= > >> == = != ! && & || |");
        use Punct::*;
        let want = [
            Le, Lt, Shl, Ge, Gt, Shr, EqEq, Assign, Ne, Bang, AmpAmp, Amp, PipePipe, Pipe,
        ];
        for (k, w) in ks.iter().zip(want) {
            assert_eq!(*k, TokenKind::Punct(w));
        }
    }

    #[test]
    fn lexes_compound_assignment_operators() {
        let ks = kinds("+= -= *= /= + = / /");
        use Punct::*;
        let want = [
            PlusAssign,
            MinusAssign,
            StarAssign,
            SlashAssign,
            Plus,
            Assign,
            Slash,
            Slash,
        ];
        for (k, w) in ks.iter().zip(want) {
            assert_eq!(*k, TokenKind::Punct(w));
        }
        // `/=` must not be confused with a comment start
        let ks = kinds("a /= 2 // comment");
        assert_eq!(ks[1], TokenKind::Punct(Punct::SlashAssign));
        assert_eq!(ks.len(), 4, "comment still skipped");
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("3.5")[0], TokenKind::FloatLit(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::FloatLit(0.25));
        // `e` not followed by digits is an identifier, not an exponent
        let ks = kinds("2 effects");
        assert_eq!(ks[0], TokenKind::IntLit(2));
        assert_eq!(ks[1], TokenKind::Ident("effects".into()));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("1 // comment\n 2 /* block\n comment */ 3");
        assert_eq!(
            ks,
            vec![
                TokenKind::IntLit(1),
                TokenKind::IntLit(2),
                TokenKind::IntLit(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").expect("lexes");
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unknown_chars_and_unterminated_comments() {
        assert!(lex("$").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
