//! Detector properties checked across the real benchmark suite:
//! monotonicity in the chaining window, soundness of branch-and-bound
//! pruning, and coverage bounds.

use asip_chains::{CoverageAnalyzer, DetectorConfig, SequenceDetector};
use asip_opt::{OptLevel, Optimizer, ScheduleGraph};

fn graphs_for(name: &str) -> Vec<ScheduleGraph> {
    let reg = asip_benchmarks::registry();
    let b = reg.find(name).expect("built-in");
    let program = b.compile().expect("compiles");
    let profile = b.profile(&program).expect("simulates");
    OptLevel::all()
        .into_iter()
        .map(|l| Optimizer::new(l).run(&program, &profile))
        .collect()
}

const SAMPLE: &[&str] = &["sewha", "bspline", "iir", "edge", "feowf"];

#[test]
fn window_growth_is_monotone() {
    for name in SAMPLE {
        for graph in graphs_for(name) {
            let mut prev = 0;
            for w in 0..=2 {
                let n = SequenceDetector::new(DetectorConfig::default().with_window(w))
                    .occurrences(&graph)
                    .len();
                assert!(
                    n >= prev,
                    "{name}: window {w} found {n} < window {} found {prev}",
                    w - 1
                );
                prev = n;
            }
        }
    }
}

#[test]
fn pruning_is_sound_at_occurrence_granularity() {
    // branch-and-bound prunes *partial chains* whose best achievable
    // occurrence frequency is below the floor. Consequences we can
    // check: (a) pruning never invents or inflates anything — every
    // pruned signature frequency is bounded by the unpruned one;
    // (b) every individual occurrence clearing the floor survives, so a
    // signature with a strong occurrence still appears.
    for name in SAMPLE {
        for graph in graphs_for(name) {
            let floor = 5.0;
            let det_full = SequenceDetector::new(DetectorConfig::default());
            let det_pruned =
                SequenceDetector::new(DetectorConfig::default().with_prune_floor(floor));
            let full = det_full.analyze(&graph);
            let pruned = det_pruned.analyze(&graph);
            for (sig, stats) in pruned.entries() {
                assert!(
                    stats.frequency <= full.frequency_of(sig) + 1e-9,
                    "{name}: pruning inflated {sig}"
                );
            }
            let strong: std::collections::HashSet<String> = det_full
                .occurrences(&graph)
                .into_iter()
                .filter(|o| o.frequency(graph.total_profile_ops) >= floor)
                .map(|o| o.signature.to_string())
                .collect();
            for sig in strong {
                assert!(
                    pruned.entries().iter().any(|(s, _)| s.to_string() == sig),
                    "{name}: {sig} has a >= {floor}% occurrence but was pruned away"
                );
            }
        }
    }
}

#[test]
fn coverage_never_exceeds_chainable_fraction() {
    for name in SAMPLE {
        for graph in graphs_for(name) {
            let cov = CoverageAnalyzer::new(DetectorConfig::default())
                .with_floor(0.1)
                .with_max_sequences(32)
                .analyze(&graph)
                .coverage();
            let chainable_pct = 100.0 * graph.chainable_weight() / graph.total_profile_ops as f64;
            assert!(
                cov <= chainable_pct + 1e-6,
                "{name}: coverage {cov:.2}% exceeds chainable fraction {chainable_pct:.2}%"
            );
        }
    }
}

#[test]
fn longer_chains_never_beat_their_own_prefix_budget() {
    // an occurrence of length k contributes k * min_weight; its length-2
    // prefix contributes 2 * (a weight at least as large). Sanity: the
    // sum of all length-2 frequencies bounds any single length-2
    // signature's frequency, and per-signature frequencies are positive.
    for name in SAMPLE {
        for graph in graphs_for(name) {
            let report = SequenceDetector::new(DetectorConfig::default()).analyze(&graph);
            let total2: f64 = report.of_length(2).map(|(_, st)| st.frequency).sum();
            for (sig, stats) in report.of_length(2) {
                assert!(stats.frequency <= total2 + 1e-9, "{name}: {sig}");
                assert!(stats.frequency > 0.0);
            }
        }
    }
}
