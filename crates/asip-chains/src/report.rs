//! Aggregated sequence reports (the data behind Figures 3–6 and Table 2).

use crate::detect::{DetectorConfig, Occurrence};
use crate::signature::Signature;
use asip_opt::ScheduleGraph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated statistics for one signature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeqStats {
    /// Total dynamic frequency in percent (sum over occurrences).
    pub frequency: f64,
    /// Number of distinct occurrences.
    pub occurrences: usize,
}

/// A per-graph sequence report: signatures with aggregated frequencies,
/// sorted by decreasing frequency (the order of the paper's figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceReport {
    /// Benchmark / graph name.
    pub name: String,
    /// Entries sorted by decreasing frequency (ties: by signature).
    entries: Vec<(Signature, SeqStats)>,
    /// Frequency denominator (dynamic ops of the profiled run).
    pub total_profile_ops: u64,
}

impl SequenceReport {
    /// Aggregate raw occurrences into a report.
    ///
    /// For each signature the frequency sums a maximal set of mutually
    /// non-overlapping occurrences (heaviest first), so no op instance
    /// is counted twice within one sequence type and per-signature
    /// frequencies are genuine percentages of execution time.
    pub fn from_occurrences(
        graph: &ScheduleGraph,
        occurrences: &[Occurrence],
        _config: &DetectorConfig,
    ) -> Self {
        let empty = std::collections::HashSet::new();
        let mut by_sig: BTreeMap<&Signature, Vec<&Occurrence>> = BTreeMap::new();
        for occ in occurrences {
            by_sig.entry(&occ.signature).or_default().push(occ);
        }
        let mut map: BTreeMap<Signature, SeqStats> = BTreeMap::new();
        for (sig, occs) in by_sig {
            let (frequency, selected) = crate::detect::select_non_overlapping(graph, &occs, &empty);
            if frequency > 0.0 {
                map.insert(
                    sig.clone(),
                    SeqStats {
                        frequency,
                        occurrences: selected.len(),
                    },
                );
            }
        }
        let mut entries: Vec<(Signature, SeqStats)> = map.into_iter().collect();
        entries.sort_by(|a, b| {
            b.1.frequency
                .partial_cmp(&a.1.frequency)
                .expect("frequencies are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        SequenceReport {
            name: graph.name.clone(),
            entries,
            total_profile_ops: graph.total_profile_ops,
        }
    }

    /// Build a report directly from parts (used by [`crate::combine`](fn@crate::combine)).
    pub fn from_parts(
        name: String,
        mut entries: Vec<(Signature, SeqStats)>,
        total_profile_ops: u64,
    ) -> Self {
        entries.sort_by(|a, b| {
            b.1.frequency
                .partial_cmp(&a.1.frequency)
                .expect("frequencies are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        SequenceReport {
            name,
            entries,
            total_profile_ops,
        }
    }

    /// Entries in decreasing-frequency order.
    pub fn entries(&self) -> &[(Signature, SeqStats)] {
        &self.entries
    }

    /// The top `n` signatures.
    pub fn top(&self, n: usize) -> impl Iterator<Item = (&Signature, &SeqStats)> {
        self.entries.iter().take(n).map(|(s, st)| (s, st))
    }

    /// Frequency of one signature (0 if absent).
    pub fn frequency_of(&self, sig: &Signature) -> f64 {
        self.entries
            .iter()
            .find(|(s, _)| s == sig)
            .map(|(_, st)| st.frequency)
            .unwrap_or(0.0)
    }

    /// The sorted frequency series (the Y values of Figures 3–4).
    pub fn series(&self) -> Vec<f64> {
        self.entries.iter().map(|(_, st)| st.frequency).collect()
    }

    /// Entries of a given chain length only.
    pub fn of_length(&self, len: usize) -> impl Iterator<Item = (&Signature, &SeqStats)> {
        self.entries
            .iter()
            .filter(move |(s, _)| s.len() == len)
            .map(|(s, st)| (s, st))
    }

    /// Entries at or above a frequency floor (the paper's Figures 5–6
    /// report only sequences ≥ 5%).
    pub fn at_least(&self, floor: f64) -> impl Iterator<Item = (&Signature, &SeqStats)> {
        self.entries
            .iter()
            .filter(move |(_, st)| st.frequency >= floor)
            .map(|(s, st)| (s, st))
    }

    /// Number of distinct signatures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no sequences were detected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{OpRef, SequenceDetector};
    use asip_opt::{NodeId, OptLevel, Optimizer};
    use asip_sim::{DataSet, Simulator};

    fn mac_report(level: OptLevel) -> SequenceReport {
        let program = asip_frontend::compile(
            "t",
            r#"
            input int x[32]; output int y[32];
            void main() {
                int i;
                for (i = 0; i < 32; i = i + 1) { y[i] = x[i] * 3 + 1; }
            }
            "#,
        )
        .expect("compiles");
        let mut data = DataSet::new();
        data.bind_ints("x", (0..32).collect());
        let exec = Simulator::new(&program).run(&data).expect("runs");
        let graph = Optimizer::new(level).run(&program, &exec.profile);
        SequenceDetector::new(DetectorConfig::default()).analyze(&graph)
    }

    #[test]
    fn entries_sorted_descending() {
        let r = mac_report(OptLevel::Pipelined);
        assert!(!r.is_empty());
        let series = r.series();
        for w in series.windows(2) {
            assert!(w[0] >= w[1], "series must be sorted descending");
        }
    }

    #[test]
    fn frequency_lookup_and_top() {
        let r = mac_report(OptLevel::None);
        let mac: Signature = "multiply-add".parse().expect("ok");
        assert!(r.frequency_of(&mac) > 0.0);
        assert!(r.frequency_of(&"fdivide-fdivide".parse().expect("ok")) == 0.0);
        let (top_sig, top_stats) = r.top(1).next().expect("nonempty");
        assert!(top_stats.frequency >= r.frequency_of(&mac));
        assert!(top_sig.len() >= 2);
    }

    #[test]
    fn length_and_floor_filters() {
        let r = mac_report(OptLevel::Pipelined);
        assert!(r.of_length(2).all(|(s, _)| s.len() == 2));
        assert!(r.of_length(3).all(|(s, _)| s.len() == 3));
        let floored: Vec<_> = r.at_least(5.0).collect();
        assert!(floored.iter().all(|(_, st)| st.frequency >= 5.0));
    }

    #[test]
    fn from_occurrences_sums_frequencies() {
        let program = asip_frontend::compile(
            "two",
            r#"
            input int a[2]; output int y[2];
            void main() {
                y[0] = (a[0] + 2) * 3;
                y[1] = (a[1] + 5) * 6;
            }
            "#,
        )
        .expect("compiles");
        let mut data = DataSet::new();
        data.bind_ints("a", vec![10, 20]);
        let exec = Simulator::new(&program).run(&data).expect("runs");
        let graph = Optimizer::new(OptLevel::None).run(&program, &exec.profile);
        let det = SequenceDetector::new(DetectorConfig::default());
        let occ = det.occurrences(&graph);
        let am: Signature = "add-multiply".parse().expect("ok");
        let n = occ.iter().filter(|o| o.signature == am).count();
        assert_eq!(n, 2, "two separate add-multiply occurrences");
        let report = det.analyze(&graph);
        let stats = report
            .entries()
            .iter()
            .find(|(s, _)| *s == am)
            .map(|(_, st)| *st)
            .expect("present");
        assert_eq!(stats.occurrences, 2);
        let expected: f64 = occ
            .iter()
            .filter(|o| o.signature == am)
            .map(|o| o.frequency(graph.total_profile_ops))
            .sum();
        assert!((stats.frequency - expected).abs() < 1e-12);
    }

    // The JSON round-trip needs the real `serde`/`serde_json` crates; the
    // offline build links no-op serde shims (see shims/serde), so this
    // test only exists when the `json-roundtrip` feature is enabled in an
    // environment with crates.io access.
    #[cfg(feature = "json-roundtrip")]
    #[test]
    fn reports_serialize_round_trip() {
        let r = mac_report(OptLevel::Pipelined);
        let json = serde_json::to_string(&r).expect("serializes");
        let back: SequenceReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(r, back);
    }

    #[test]
    fn from_parts_resorts() {
        let a: Signature = "add-add".parse().expect("ok");
        let b: Signature = "multiply-add".parse().expect("ok");
        let r = SequenceReport::from_parts(
            "x".into(),
            vec![
                (
                    a.clone(),
                    SeqStats {
                        frequency: 1.0,
                        occurrences: 1,
                    },
                ),
                (
                    b.clone(),
                    SeqStats {
                        frequency: 9.0,
                        occurrences: 1,
                    },
                ),
            ],
            100,
        );
        assert_eq!(r.entries()[0].0, b);
        let _ = OpRef {
            node: NodeId(0),
            index: 0,
        };
    }
}
