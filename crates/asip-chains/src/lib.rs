//! # asip-chains
//!
//! The paper's core contribution (Figure 2, step 4): the **sequence
//! detection analyzer**. Given an optimized program graph
//! ([`asip_opt::ScheduleGraph`]) carrying dynamic profile weights, it
//! performs a branch-and-bound search for *chainable operation
//! sequences* — chains `o₁ → o₂ → … → oₖ` in which each operation's
//! result feeds an operand of the next and consecutive operations sit
//! within the chaining window of the schedule. Each detected sequence
//! type ("signature", e.g. `multiply-add`) is reported with its dynamic
//! frequency: the percentage of the benchmark's execution time its
//! occurrences account for.
//!
//! Three analyses reproduce the paper's results:
//!
//! - [`SequenceDetector::analyze`] — the per-benchmark frequency tables
//!   behind Figures 3–6 and Table 2;
//! - [`CoverageAnalyzer`] — the iterative greedy coverage study of
//!   Table 3 (find the top sequence, consume its occurrences, repeat);
//! - [`combine`](fn@combine) — the cross-benchmark pooling of Section 6.1.
//!
//! ## Example
//!
//! ```
//! use asip_chains::{DetectorConfig, SequenceDetector};
//! use asip_opt::{OptLevel, Optimizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asip_frontend::compile("t", r#"
//!     input int x[32]; output int y[32];
//!     void main() {
//!         int i;
//!         for (i = 0; i < 32; i = i + 1) { y[i] = x[i] * 3 + 1; }
//!     }
//! "#)?;
//! let mut data = asip_sim::DataSet::new();
//! data.bind_ints("x", (0..32).collect());
//! let exec = asip_sim::Simulator::new(&program).run(&data)?;
//! let graph = Optimizer::new(OptLevel::Pipelined).run(&program, &exec.profile);
//!
//! let report = SequenceDetector::new(DetectorConfig::default()).analyze(&graph);
//! let (top, stats) = report.top(1).next().expect("sequences found");
//! println!("hottest sequence: {top} at {:.2}%", stats.frequency);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod coverage;
pub mod detect;
pub mod report;
pub mod signature;

pub use combine::{combine, combine_pooled, CombinedReport};
pub use coverage::{CoverageAnalyzer, CoverageEntry, CoverageReport};
pub use detect::{default_chainable, DetectorConfig, Occurrence, OpRef, SequenceDetector};
pub use report::{SeqStats, SequenceReport};
pub use signature::Signature;
