//! Iterative greedy coverage analysis (the paper's Section 7 / Table 3).
//!
//! "Once the sequence with the highest frequency was found for a given
//! benchmark, the sequence detection analyzer tool was run again, this
//! time ignoring any occurrences of the high-frequency sequence already
//! found. This process continued iteratively until no sequences of any
//! significant percentage were left."

use crate::detect::{DetectorConfig, Occurrence, OpRef, SequenceDetector};
use crate::signature::Signature;
use asip_opt::ScheduleGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One selected sequence in a coverage study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageEntry {
    /// The selected signature.
    pub signature: Signature,
    /// The dynamic frequency its non-overlapping occurrences cover, in
    /// percent of total execution.
    pub frequency: f64,
    /// Number of non-overlapping static occurrences selected for this
    /// signature during the study round that chose it.
    pub occurrences: usize,
}

/// Result of a coverage study: the chosen sequences and the total
/// coverage (the paper reports both per benchmark).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Benchmark name.
    pub name: String,
    /// Selected sequences in selection order (highest frequency first).
    pub entries: Vec<CoverageEntry>,
}

impl CoverageReport {
    /// Total coverage: the sum of the selected sequences' frequencies
    /// (Table 3's "Coverage" column).
    pub fn coverage(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.frequency)
            .sum::<f64>()
            .max(0.0)
    }
}

/// Iterative greedy coverage analyzer.
#[derive(Debug, Clone, Copy)]
pub struct CoverageAnalyzer {
    config: DetectorConfig,
    /// Stop when the best remaining sequence covers less than this
    /// (percent). The paper stops at "no significant percentage";
    /// its tables bottom out around 4–5%.
    significance_floor: f64,
    /// Safety cap on selection rounds.
    max_sequences: usize,
}

impl CoverageAnalyzer {
    /// Create an analyzer with the given detector configuration and a
    /// 4% significance floor.
    pub fn new(config: DetectorConfig) -> Self {
        CoverageAnalyzer {
            config,
            significance_floor: 4.0,
            max_sequences: 8,
        }
    }

    /// Override the significance floor (percent).
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.significance_floor = floor;
        self
    }

    /// Override the maximum number of selected sequences.
    pub fn with_max_sequences(mut self, max: usize) -> Self {
        self.max_sequences = max;
        self
    }

    /// Run the iterative study on a scheduled graph.
    pub fn analyze(&self, graph: &ScheduleGraph) -> CoverageReport {
        let detector = SequenceDetector::new(self.config);
        let mut consumed: HashSet<OpRef> = HashSet::new();
        let mut entries: Vec<CoverageEntry> = Vec::new();

        for _round in 0..self.max_sequences {
            let occurrences = detector.occurrences_filtered(graph, |r| consumed.contains(&r));
            // the already-selected set is tiny (≤ max_sequences), so a
            // scan over it beats maintaining a second owned set of
            // cloned signatures
            let candidates: Vec<Occurrence> = occurrences
                .into_iter()
                .filter(|o| entries.iter().all(|e| e.signature != o.signature))
                .collect();
            let Some((signature, freq, selected)) = best_signature(graph, &candidates, &consumed)
            else {
                break;
            };
            if freq < self.significance_floor {
                break;
            }
            let occurrences = selected.len();
            for occ in &selected {
                consumed.extend(occ.ops.iter().copied());
            }
            entries.push(CoverageEntry {
                signature,
                frequency: freq,
                occurrences,
            });
        }
        CoverageReport {
            name: graph.name.clone(),
            entries,
        }
    }
}

/// Pick the signature whose non-overlapping occurrence set covers the
/// most dynamic frequency; returns the signature, its coverage, and the
/// selected (mutually disjoint) occurrences.
fn best_signature(
    graph: &ScheduleGraph,
    occurrences: &[Occurrence],
    consumed: &HashSet<OpRef>,
) -> Option<(Signature, f64, Vec<Occurrence>)> {
    use std::collections::BTreeMap;
    let mut by_sig: BTreeMap<&Signature, Vec<&Occurrence>> = BTreeMap::new();
    for o in occurrences {
        by_sig.entry(&o.signature).or_default().push(o);
    }
    // borrow while comparing candidates; clone the winner exactly once
    let mut best: Option<(&Signature, f64, Vec<Occurrence>)> = None;
    for (sig, occs) in by_sig {
        let (freq, selected) = crate::detect::select_non_overlapping(graph, &occs, consumed);
        let better = match &best {
            None => true,
            Some((_, bf, _)) => freq > *bf,
        };
        if better && freq > 0.0 {
            best = Some((sig, freq, selected));
        }
    }
    best.map(|(sig, freq, selected)| (sig.clone(), freq, selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_opt::{OptLevel, Optimizer};
    use asip_sim::{DataSet, Simulator};

    fn graph_for(src: &str, level: OptLevel) -> ScheduleGraph {
        let program = asip_frontend::compile("cov", src).expect("compiles");
        let mut data = DataSet::new();
        for a in &program.arrays {
            if a.kind == asip_ir::ArrayKind::Input {
                match a.ty {
                    asip_ir::Ty::Int => {
                        data.bind_ints(a.name.clone(), (1..=a.len as i64).collect());
                    }
                    asip_ir::Ty::Float => {
                        data.bind_floats(
                            a.name.clone(),
                            (0..a.len).map(|k| 0.1 * k as f64 + 0.3).collect(),
                        );
                    }
                }
            }
        }
        let exec = Simulator::new(&program).run(&data).expect("runs");
        Optimizer::new(level).run(&program, &exec.profile)
    }

    const FILTER_SRC: &str = r#"
        input int x[64]; output int y[64];
        void main() {
            int i;
            for (i = 0; i < 64; i = i + 1) {
                y[i] = x[i] * 5 + x[(i + 63) % 64] * 2;
            }
        }
    "#;

    #[test]
    fn coverage_is_bounded_and_positive() {
        let g = graph_for(FILTER_SRC, OptLevel::Pipelined);
        let report = CoverageAnalyzer::new(DetectorConfig::default()).analyze(&g);
        assert!(!report.entries.is_empty());
        let cov = report.coverage();
        assert!(cov > 0.0, "some coverage found");
        assert!(cov <= 100.0 + 1e-9, "no double counting: {cov}");
    }

    #[test]
    fn entries_are_selected_greedily() {
        let g = graph_for(FILTER_SRC, OptLevel::Pipelined);
        let report = CoverageAnalyzer::new(DetectorConfig::default())
            .with_floor(0.5)
            .analyze(&g);
        // each later round can only find <= the previous round's frequency?
        // (not strictly guaranteed because consumed ops interact, but the
        // first entry must be the global maximum)
        assert!(report.entries.len() >= 2);
        let first = report.entries[0].frequency;
        for e in &report.entries[1..] {
            assert!(e.frequency <= first + 1e-9);
        }
    }

    #[test]
    fn optimized_coverage_beats_unoptimized_on_sewha() {
        // the paper's headline Table 3 result, on the same benchmark it
        // reports first (sewha: 91.31% optimized vs 31.99% without)
        let reg = asip_benchmarks::registry();
        let b = reg.find("sewha").expect("built-in");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("runs");
        let g0 = Optimizer::new(OptLevel::None).run(&program, &profile);
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
        let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
        let c0 = analyzer.analyze(&g0).coverage();
        let c1 = analyzer.analyze(&g1).coverage();
        assert!(
            c1 > c0,
            "optimized coverage ({c1:.1}%) must beat unoptimized ({c0:.1}%)"
        );
    }

    #[test]
    fn floor_controls_entry_count() {
        let g = graph_for(FILTER_SRC, OptLevel::Pipelined);
        let low = CoverageAnalyzer::new(DetectorConfig::default())
            .with_floor(0.1)
            .analyze(&g);
        let high = CoverageAnalyzer::new(DetectorConfig::default())
            .with_floor(20.0)
            .analyze(&g);
        assert!(low.entries.len() >= high.entries.len());
        for e in &high.entries {
            assert!(e.frequency >= 20.0);
        }
    }

    #[test]
    fn max_sequences_caps_rounds() {
        let g = graph_for(FILTER_SRC, OptLevel::Pipelined);
        let capped = CoverageAnalyzer::new(DetectorConfig::default())
            .with_floor(0.01)
            .with_max_sequences(2)
            .analyze(&g);
        assert!(capped.entries.len() <= 2);
    }

    #[test]
    fn entries_record_selected_occurrences() {
        let g = graph_for(FILTER_SRC, OptLevel::Pipelined);
        let report = CoverageAnalyzer::new(DetectorConfig::default()).analyze(&g);
        assert!(!report.entries.is_empty());
        for e in &report.entries {
            assert!(
                e.occurrences > 0,
                "a selected signature covers at least one occurrence: {}",
                e.signature
            );
        }
    }

    #[test]
    fn rounds_do_not_reuse_ops() {
        let g = graph_for(FILTER_SRC, OptLevel::Pipelined);
        let report = CoverageAnalyzer::new(DetectorConfig::default())
            .with_floor(0.5)
            .analyze(&g);
        // distinct signatures per round
        let mut seen = HashSet::new();
        for e in &report.entries {
            assert!(
                seen.insert(e.signature.clone()),
                "round repeated signature {}",
                e.signature
            );
        }
    }
}
