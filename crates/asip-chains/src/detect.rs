//! The branch-and-bound sequence detector.

use crate::signature::Signature;
use asip_opt::{NodeId, ScheduleGraph};
use std::collections::HashSet;

/// A reference to one scheduled op instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpRef {
    /// Containing node.
    pub node: NodeId,
    /// Index within the node's op list.
    pub index: usize,
}

/// One concrete occurrence of a chainable sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Occurrence {
    /// The chained op instances, head first.
    pub ops: Vec<OpRef>,
    /// The signature (op classes of the ops).
    pub signature: Signature,
    /// The limiting dynamic count: the minimum weight along the chain
    /// (consecutive ops in a loop share their weight; a chain spanning a
    /// guard executes only as often as its rarest member).
    pub min_weight: f64,
}

impl Occurrence {
    /// Dynamic frequency in percent of the run's total operations:
    /// `min_weight × length / total × 100`.
    pub fn frequency(&self, total_profile_ops: u64) -> f64 {
        if total_profile_ops == 0 {
            return 0.0;
        }
        100.0 * self.min_weight * self.ops.len() as f64 / total_profile_ops as f64
    }
}

/// Which op classes may participate in a chain.
///
/// The default matches the paper's candidate set: arithmetic, shifts,
/// logic, compares, loads and stores — in both integer and float
/// flavors. Register copies (`move`), int/float conversions and math
/// intrinsics (library calls in 3-address code) are *not* candidates:
/// a chained functional unit fuses datapath operations, not calls.
pub fn default_chainable(class: asip_ir::OpClass) -> bool {
    use asip_ir::OpClass as C;
    matches!(
        class,
        C::Add
            | C::Sub
            | C::Mul
            | C::Div
            | C::Shift
            | C::Logic
            | C::Compare
            | C::Load
            | C::Store
            | C::FAdd
            | C::FSub
            | C::FMul
            | C::FDiv
            | C::FLoad
            | C::FStore
    )
}

/// Detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Minimum chain length reported (paper: 2).
    pub min_len: usize,
    /// Maximum chain length searched (paper: 5).
    pub max_len: usize,
    /// Chaining window: the maximum number of schedule edges between
    /// consecutive chain members. `0` = same node only; `1` (default) =
    /// same or adjacent node, i.e. the value could be forwarded without a
    /// register-file round trip.
    pub window: usize,
    /// Branch-and-bound pruning floor, in percent: partial chains whose
    /// best achievable *occurrence* frequency is below this are
    /// abandoned. Pruning operates per occurrence, so a signature whose
    /// total comes from many small occurrences may report a lower
    /// aggregate under a non-zero floor; use `0.0` (the default) when
    /// exact tables are needed and a floor when only the headline
    /// sequences matter (the paper's analyzer does the latter).
    pub prune_floor: f64,
    /// Which classes are chain candidates (see [`default_chainable`]).
    pub chainable: fn(asip_ir::OpClass) -> bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_len: 2,
            max_len: 5,
            window: 1,
            prune_floor: 0.0,
            chainable: default_chainable,
        }
    }
}

impl DetectorConfig {
    /// Restrict to a single length.
    pub fn with_length(mut self, len: usize) -> Self {
        self.min_len = len;
        self.max_len = len;
        self
    }

    /// Set the chaining window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Set the branch-and-bound pruning floor (percent).
    pub fn with_prune_floor(mut self, floor: f64) -> Self {
        self.prune_floor = floor;
        self
    }

    /// Override the chain-candidate class policy.
    pub fn with_chainable(mut self, chainable: fn(asip_ir::OpClass) -> bool) -> Self {
        self.chainable = chainable;
        self
    }
}

/// Select a maximal-weight set of mutually non-overlapping occurrences
/// (heaviest first), skipping those touching `consumed` ops; returns the
/// selected occurrences and their total frequency. Used both for report
/// aggregation (a sequence's frequency never counts one op twice) and by
/// the coverage analyzer.
pub fn select_non_overlapping(
    graph: &ScheduleGraph,
    occurrences: &[&Occurrence],
    consumed: &HashSet<OpRef>,
) -> (f64, Vec<Occurrence>) {
    let mut order: Vec<&&Occurrence> = occurrences.iter().collect();
    order.sort_by(|a, b| {
        b.min_weight
            .partial_cmp(&a.min_weight)
            .expect("weights finite")
            .then_with(|| a.ops.cmp(&b.ops))
    });
    let mut taken: HashSet<OpRef> = HashSet::new();
    let mut freq = 0.0;
    let mut selected = Vec::new();
    for o in order {
        if o.ops
            .iter()
            .any(|r| taken.contains(r) || consumed.contains(r))
        {
            continue;
        }
        taken.extend(o.ops.iter().copied());
        freq += o.frequency(graph.total_profile_ops);
        selected.push((**o).clone());
    }
    (freq, selected)
}

/// The sequence detection analyzer.
///
/// See the crate docs for the chain model. The search enumerates, for
/// each chainable op, every data-flow successor within the chaining
/// window, depth-first up to `max_len`, pruning partial chains that can
/// no longer reach `prune_floor` (branch and bound, as in the paper's
/// Section 5).
#[derive(Debug, Clone, Copy)]
pub struct SequenceDetector {
    config: DetectorConfig,
}

impl SequenceDetector {
    /// Create a detector.
    pub fn new(config: DetectorConfig) -> Self {
        SequenceDetector { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Detect all occurrences and aggregate them into a report.
    pub fn analyze(&self, graph: &ScheduleGraph) -> crate::report::SequenceReport {
        let occurrences = self.occurrences(graph);
        crate::report::SequenceReport::from_occurrences(graph, &occurrences, &self.config)
    }

    /// Enumerate every chain occurrence (unaggregated).
    pub fn occurrences(&self, graph: &ScheduleGraph) -> Vec<Occurrence> {
        self.occurrences_filtered(graph, |_| false)
    }

    /// Enumerate occurrences, skipping any chain that touches an op for
    /// which `consumed` returns true (used by the coverage analyzer).
    pub fn occurrences_filtered(
        &self,
        graph: &ScheduleGraph,
        consumed: impl Fn(OpRef) -> bool,
    ) -> Vec<Occurrence> {
        let mut out = Vec::new();
        for (ni, node) in graph.nodes.iter().enumerate() {
            for (oi, op) in node.ops.iter().enumerate() {
                let head = OpRef {
                    node: NodeId(ni as u32),
                    index: oi,
                };
                if consumed(head) {
                    continue;
                }
                if !(self.config.chainable)(graph.class_of(op)) {
                    continue;
                }
                let mut chain = vec![head];
                let mut classes = vec![graph.class_of(op)];
                self.extend(
                    graph,
                    &mut chain,
                    &mut classes,
                    op.weight,
                    &consumed,
                    &mut out,
                );
            }
        }
        out
    }

    fn extend(
        &self,
        graph: &ScheduleGraph,
        chain: &mut Vec<OpRef>,
        classes: &mut Vec<asip_ir::OpClass>,
        min_weight: f64,
        consumed: &impl Fn(OpRef) -> bool,
        out: &mut Vec<Occurrence>,
    ) {
        if chain.len() >= self.config.min_len {
            out.push(Occurrence {
                ops: chain.clone(),
                signature: Signature::new(classes.clone()),
                min_weight,
            });
        }
        if chain.len() >= self.config.max_len {
            return;
        }
        // branch and bound: even extended to max_len with the current
        // limiting weight, can this chain still clear the floor?
        if self.config.prune_floor > 0.0 && graph.total_profile_ops > 0 {
            let best =
                100.0 * min_weight * self.config.max_len as f64 / graph.total_profile_ops as f64;
            if best < self.config.prune_floor {
                return;
            }
        }
        let last = *chain.last().expect("chain non-empty");
        for succ in self.flow_succs(graph, last) {
            if chain.contains(&succ) || consumed(succ) {
                continue;
            }
            let op = &graph.node(succ.node).ops[succ.index];
            let class = graph.class_of(op);
            if !(self.config.chainable)(class) {
                continue;
            }
            chain.push(succ);
            classes.push(class);
            self.extend(
                graph,
                chain,
                classes,
                min_weight.min(op.weight),
                consumed,
                out,
            );
            chain.pop();
            classes.pop();
        }
    }

    /// Data-flow successors of `from`: ops whose operands read `from`'s
    /// destination register, reachable without the value being redefined,
    /// and close enough to chain.
    ///
    /// "Close enough" depends on the graph: in an optimized graph
    /// ([`ScheduleGraph::region_chaining`]) percolation can co-schedule
    /// any two flow-dependent ops of one block region, so every in-region
    /// consumer qualifies ("search a much broader set of possibilities");
    /// across region boundaries — and everywhere in a sequential graph —
    /// consumers must lie within `window` schedule edges.
    pub fn flow_succs(&self, graph: &ScheduleGraph, from: OpRef) -> Vec<OpRef> {
        let src = &graph.node(from.node).ops[from.index];
        let Some(d) = src.inst.dst() else {
            return Vec::new();
        };
        let mut found: Vec<OpRef> = Vec::new();
        let mut seen: HashSet<OpRef> = HashSet::new();

        // same node: same issue cycle, direct forwarding
        for (i, op) in graph.node(from.node).ops.iter().enumerate() {
            if i != from.index && op.inst.uses().contains(&d) {
                let r = OpRef {
                    node: from.node,
                    index: i,
                };
                if seen.insert(r) {
                    found.push(r);
                }
            }
        }

        // region chaining: walk the rest of this block's node sequence
        // (a block's nodes are consecutive by construction); stop past a
        // node that redefines d
        if graph.region_chaining {
            let block = graph.node(from.node).block;
            let mut n = from.node.index() + 1;
            while n < graph.nodes.len() && graph.nodes[n].block == block {
                for (i, op) in graph.nodes[n].ops.iter().enumerate() {
                    if op.inst.uses().contains(&d) {
                        let r = OpRef {
                            node: NodeId(n as u32),
                            index: i,
                        };
                        if seen.insert(r) {
                            found.push(r);
                        }
                    }
                }
                if graph.nodes[n].ops.iter().any(|op| op.inst.dst() == Some(d)) {
                    break;
                }
                n += 1;
            }
        }

        // nodes within `window` edges, via DFS over node paths; a path is
        // cut when some op on an intermediate node redefines `d`
        let mut stack: Vec<(NodeId, usize)> = vec![(from.node, 0)];
        let mut visited_at: Vec<(NodeId, usize)> = Vec::new();
        while let Some((n, depth)) = stack.pop() {
            if depth >= self.config.window {
                continue;
            }
            for &s in &graph.node(n).succs {
                // collect consumers in s
                for (i, op) in graph.node(s).ops.iter().enumerate() {
                    if (s != from.node || i != from.index) && op.inst.uses().contains(&d) {
                        let r = OpRef { node: s, index: i };
                        if seen.insert(r) {
                            found.push(r);
                        }
                    }
                }
                // extend the path unless s redefines d (value killed past s)
                let kills = graph.node(s).ops.iter().any(|op| op.inst.dst() == Some(d));
                if !kills && !visited_at.contains(&(s, depth + 1)) {
                    visited_at.push((s, depth + 1));
                    stack.push((s, depth + 1));
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_opt::{OptLevel, Optimizer};
    use asip_sim::{DataSet, Simulator};

    fn analyze_src(src: &str, level: OptLevel) -> (ScheduleGraph, Vec<Occurrence>) {
        let program = asip_frontend::compile("t", src).expect("compiles");
        let mut data = DataSet::new();
        for a in &program.arrays {
            if a.kind == asip_ir::ArrayKind::Input {
                match a.ty {
                    asip_ir::Ty::Int => {
                        data.bind_ints(a.name.clone(), (0..a.len as i64).collect());
                    }
                    asip_ir::Ty::Float => {
                        data.bind_floats(
                            a.name.clone(),
                            (0..a.len).map(|k| k as f64 * 0.25 + 0.5).collect(),
                        );
                    }
                }
            }
        }
        let exec = Simulator::new(&program).run(&data).expect("runs");
        let graph = Optimizer::new(level).run(&program, &exec.profile);
        let occ = SequenceDetector::new(DetectorConfig::default()).occurrences(&graph);
        (graph, occ)
    }

    const MAC_SRC: &str = r#"
        input int x[32]; output int y[32];
        void main() {
            int i;
            for (i = 0; i < 32; i = i + 1) { y[i] = x[i] * 3 + 1; }
        }
    "#;

    #[test]
    fn finds_multiply_add_at_level0() {
        let (graph, occ) = analyze_src(MAC_SRC, OptLevel::None);
        let mac: Signature = "multiply-add".parse().expect("ok");
        let hit = occ
            .iter()
            .find(|o| o.signature == mac)
            .expect("multiply-add detected in sequential code");
        assert!(hit.frequency(graph.total_profile_ops) > 5.0);
    }

    #[test]
    fn finds_load_multiply_chain() {
        let (_, occ) = analyze_src(MAC_SRC, OptLevel::None);
        let lm: Signature = "load-multiply".parse().expect("ok");
        assert!(occ.iter().any(|o| o.signature == lm));
        let lma: Signature = "load-multiply-add".parse().expect("ok");
        assert!(occ.iter().any(|o| o.signature == lma));
    }

    #[test]
    fn pipelining_exposes_cross_iteration_add_chains() {
        // `i = i + 1` feeds the *next* iteration's address-scaling
        // multiply (`i * 4`): the add-multiply pair only becomes visible
        // once the kernel overlaps iterations — the paper's Section 6
        // observation
        let src = r#"
            input int x[32]; output int y[32];
            void main() {
                int i;
                for (i = 0; i < 32; i = i + 1) { y[i] = x[i] + 7; }
            }
        "#;
        let freq_of = |level| {
            let (graph, occ) = analyze_src(src, level);
            occ.iter()
                .filter(|o| o.signature == "add-multiply".parse().expect("ok"))
                .map(|o| o.frequency(graph.total_profile_ops))
                .sum::<f64>()
        };
        let f0 = freq_of(OptLevel::None);
        let f1 = freq_of(OptLevel::Pipelined);
        assert!(
            f1 > f0,
            "pipelined add-multiply {f1:.2}% must exceed sequential {f0:.2}%"
        );
    }

    #[test]
    fn window_zero_restricts_to_same_node() {
        let (graph, _) = analyze_src(MAC_SRC, OptLevel::None);
        let det = SequenceDetector::new(DetectorConfig::default().with_window(0));
        // level 0 has one op per node: nothing can chain in-window
        assert!(det.occurrences(&graph).is_empty());
    }

    #[test]
    fn wider_window_finds_superset() {
        let (graph, _) = analyze_src(MAC_SRC, OptLevel::Pipelined);
        let n1 = SequenceDetector::new(DetectorConfig::default().with_window(1))
            .occurrences(&graph)
            .len();
        let n2 = SequenceDetector::new(DetectorConfig::default().with_window(2))
            .occurrences(&graph)
            .len();
        assert!(n2 >= n1);
    }

    #[test]
    fn pruning_floor_discards_rare_chains_only() {
        let (graph, _) = analyze_src(MAC_SRC, OptLevel::Pipelined);
        let all = SequenceDetector::new(DetectorConfig::default()).occurrences(&graph);
        let pruned = SequenceDetector::new(DetectorConfig::default().with_prune_floor(5.0))
            .occurrences(&graph);
        assert!(pruned.len() <= all.len());
        // every surviving chain could reach the floor
        for o in &pruned {
            let best = 100.0 * o.min_weight * 5.0 / graph.total_profile_ops as f64;
            assert!(best >= 5.0);
        }
        // high-frequency chains survive
        assert!(pruned
            .iter()
            .any(|o| o.signature == "multiply-add".parse().expect("ok")));
    }

    #[test]
    fn kill_breaks_chains() {
        // r gets redefined between producer and consumer: no chain
        use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};
        let mut b = ProgramBuilder::new("kill");
        let entry = b.entry_block();
        b.select_block(entry);
        let t = b.new_reg(Ty::Int);
        b.binary_to(t, BinOp::Mul, Operand::imm_int(2), Operand::imm_int(3));
        b.binary_to(t, BinOp::Add, Operand::imm_int(0), Operand::imm_int(0)); // kills t
        let _u = b.binary(BinOp::Add, t.into(), Operand::imm_int(1));
        b.ret(None);
        let p = b.finish().expect("valid");
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let graph = Optimizer::new(OptLevel::None).run(&p, &profile);
        let det = SequenceDetector::new(DetectorConfig::default().with_window(2));
        let occ = det.occurrences(&graph);
        // multiply's value is dead: mul must not chain into the final add
        assert!(
            !occ.iter()
                .any(|o| o.signature == "multiply-add".parse().expect("ok")),
            "killed value must not chain"
        );
        // but the redefining add chains into the final add
        assert!(occ
            .iter()
            .any(|o| o.signature == "add-add".parse().expect("ok")));
    }

    #[test]
    fn region_chaining_sees_distant_in_block_flow() {
        // producer and consumer separated by several schedule cycles in
        // one region: invisible at level 0 (window 1), chainable in the
        // optimized graph (percolation could bring them together)
        let src = r#"
            input int a[16]; input int b[16]; output int y[16];
            void main() {
                int i; int t1; int t2; int u2;
                for (i = 0; i < 16; i = i + 1) {
                    t1 = a[i] + 1;
                    t2 = b[i] + 2;
                    u2 = t2 * 5;
                    y[i] = t1 * u2;
                }
            }
        "#;
        // t1's consumer (the final multiply) is far from its producer in
        // sequential order (b-address math, load, add, mul in between)
        let am: Signature = "add-multiply".parse().expect("ok");
        let find = |level| {
            let (graph, occ) = analyze_src(src, level);
            occ.iter()
                .filter(|o| o.signature == am)
                .map(|o| o.frequency(graph.total_profile_ops))
                .sum::<f64>()
        };
        let f0 = find(OptLevel::None);
        let f1 = find(OptLevel::Pipelined);
        assert!(
            f1 > f0,
            "region chaining must find more: {f0:.2} vs {f1:.2}"
        );
    }

    #[test]
    fn region_chaining_respects_kills() {
        // in the optimized graph, a redefinition between producer and
        // consumer still breaks the chain even within one region
        use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};
        let mut b = ProgramBuilder::new("rk");
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        let t = b.new_reg(Ty::Int);
        // mul defines t; an unrelated add then KILLS t (output dep only,
        // never reads it); the final add consumes the killer's value
        b.binary_to(t, BinOp::Mul, Operand::imm_int(2), Operand::imm_int(3));
        b.binary_to(t, BinOp::Add, Operand::imm_int(5), Operand::imm_int(5));
        let fin = b.binary(BinOp::Add, t.into(), Operand::imm_int(1));
        b.store(y, Operand::imm_int(0), fin.into());
        b.ret(None);
        let p = b.finish().expect("valid");
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let graph = Optimizer::new(OptLevel::Pipelined).run(&p, &profile);
        assert!(graph.region_chaining);
        let det = SequenceDetector::new(DetectorConfig::default());
        let occ = det.occurrences(&graph);
        // the multiply's value is dead past the kill: no multiply-add
        // chain may exist anywhere in this program
        let ma: Signature = "multiply-add".parse().expect("ok");
        assert!(
            !occ.iter().any(|o| o.signature == ma),
            "killed multiply result must not chain"
        );
        // the killer's add chains into the final add as usual
        let aa: Signature = "add-add".parse().expect("ok");
        assert!(occ.iter().any(|o| o.signature == aa));
    }

    #[test]
    fn region_chaining_stays_inside_the_block() {
        // flow into a *different* block region is still window-limited:
        // a value defined early in the entry and consumed deep inside
        // the loop body does not chain across the region boundary
        let src = r#"
            input int a[4]; output int y[16];
            void main() {
                int k; int i;
                k = a[0] * 7;
                for (i = 0; i < 16; i = i + 1) {
                    y[i] = i + i + i + k;
                }
            }
        "#;
        let (graph, occ) = analyze_src(src, OptLevel::Pipelined);
        // the k-producing multiply sits in the entry region; the consumer
        // add is several nodes deep in the loop region. A chain may only
        // reach it within the cross-block window (1), and the consumer is
        // deeper than that, so no multiply-add occurrence has the
        // k-multiply as head with weight 1 and consumer weight 8.
        let cross: Vec<_> = occ
            .iter()
            .filter(|o| {
                o.signature == "multiply-add".parse().expect("ok")
                    && (o.min_weight - 1.0).abs() < 1e-9
            })
            .collect();
        // the only weight-1 multiplies are in the entry (k and the
        // address math); their in-entry chains are fine, but none may
        // reach the loop's deep adds
        for o in &cross {
            let head_block = graph.node(o.ops[0].node).block;
            let tail_block = graph.node(o.ops[1].node).block;
            if head_block != tail_block {
                // cross-region chains must respect the window: head must
                // be in the last node of its region
                let head_node = o.ops[0].node;
                let next_same_block = graph
                    .nodes
                    .get(head_node.index() + 1)
                    .map(|n| n.block == head_block)
                    .unwrap_or(false);
                assert!(
                    !next_same_block,
                    "cross-region chain must start at its region's last node"
                );
            }
        }
    }

    #[test]
    fn occurrence_frequency_formula() {
        let occ = Occurrence {
            ops: vec![
                OpRef {
                    node: NodeId(0),
                    index: 0,
                },
                OpRef {
                    node: NodeId(1),
                    index: 0,
                },
            ],
            signature: "multiply-add".parse().expect("ok"),
            min_weight: 10.0,
        };
        assert!((occ.frequency(200) - 10.0).abs() < 1e-12); // 10*2/200 = 10%
        assert_eq!(occ.frequency(0), 0.0);
    }

    #[test]
    fn lengths_respect_config() {
        let (graph, _) = analyze_src(MAC_SRC, OptLevel::Pipelined);
        let det = SequenceDetector::new(DetectorConfig::default().with_length(3));
        let occ = det.occurrences(&graph);
        assert!(!occ.is_empty());
        assert!(occ.iter().all(|o| o.ops.len() == 3));
    }
}
