//! Sequence signatures: the op-class tuples naming detected sequences.

use asip_ir::OpClass;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A sequence signature: the ordered op classes of a chain, e.g.
/// `multiply-add` (the MAC) or `add-shift-add`.
///
/// Signatures print and parse in the paper's hyphenated vocabulary:
///
/// ```
/// use asip_chains::Signature;
///
/// let mac: Signature = "multiply-add".parse()?;
/// assert_eq!(mac.len(), 2);
/// assert_eq!(mac.to_string(), "multiply-add");
/// # Ok::<(), asip_chains::signature::ParseSignatureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Signature(Vec<OpClass>);

impl Signature {
    /// Create a signature from op classes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two classes are given — chains have length
    /// at least two by definition.
    pub fn new(classes: Vec<OpClass>) -> Self {
        assert!(classes.len() >= 2, "a sequence has at least two operations");
        Signature(classes)
    }

    /// The op classes, head first.
    pub fn classes(&self) -> &[OpClass] {
        &self.0
    }

    /// Chain length.
    #[allow(clippy::len_without_is_empty)] // never empty by construction
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if every class in the signature is chainable.
    pub fn is_chainable(&self) -> bool {
        self.0.iter().all(|c| c.is_chainable())
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a signature from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSignatureError {
    /// The word that failed to parse as an op class.
    pub word: String,
}

impl fmt::Display for ParseSignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operation class `{}` in signature", self.word)
    }
}

impl std::error::Error for ParseSignatureError {}

impl FromStr for Signature {
    type Err = ParseSignatureError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let classes: Result<Vec<OpClass>, _> = s
            .split('-')
            .map(|w| {
                w.parse::<OpClass>().map_err(|_| ParseSignatureError {
                    word: w.to_string(),
                })
            })
            .collect();
        let classes = classes?;
        if classes.len() < 2 {
            return Err(ParseSignatureError {
                word: s.to_string(),
            });
        }
        Ok(Signature(classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_paper_signatures() {
        for s in [
            "multiply-add",
            "add-multiply",
            "add-add",
            "add-multiply-add",
            "multiply-add-add",
            "add-shift-add",
            "load-multiply-add",
            "fload-fmultiply",
            "fmultiply-fsub-fstore",
            "add-compare",
            "shift-add-subtract",
            "fload-fadd",
        ] {
            let sig: Signature = s.parse().expect(s);
            assert_eq!(sig.to_string(), s);
            assert!(sig.is_chainable());
        }
    }

    #[test]
    fn rejects_bad_signatures() {
        assert!("frobnicate-add".parse::<Signature>().is_err());
        assert!("add".parse::<Signature>().is_err(), "length-1 rejected");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn new_rejects_short() {
        let _ = Signature::new(vec![OpClass::Add]);
    }

    #[test]
    fn ordering_is_stable() {
        let a: Signature = "add-add".parse().expect("ok");
        let b: Signature = "add-multiply".parse().expect("ok");
        assert!(a < b);
    }
}
