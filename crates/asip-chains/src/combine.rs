//! Cross-benchmark pooling (the paper's Section 6.1: "combining the
//! results of all the benchmarks together").

use crate::report::{SeqStats, SequenceReport};
use crate::signature::Signature;
use std::collections::BTreeMap;

/// A combined report across several benchmarks.
pub type CombinedReport = SequenceReport;

/// Combine per-benchmark reports by *averaging percentages* — every
/// benchmark contributes equally, as a tuning suite should (otherwise a
/// single O(N²) kernel like `dft` would decide the whole ASIP). This is
/// the reading consistent with the magnitudes in the paper's combined
/// figures and Table 2.
///
/// # Panics
///
/// Panics if `reports` is empty — there is nothing to combine.
pub fn combine(reports: &[SequenceReport]) -> CombinedReport {
    assert!(!reports.is_empty(), "cannot combine zero reports");
    let n = reports.len() as f64;
    let suite_total: u64 = reports.iter().map(|r| r.total_profile_ops).sum();
    let mut avg: BTreeMap<Signature, SeqStats> = BTreeMap::new();
    for r in reports {
        for (sig, stats) in r.entries() {
            // probe by reference first: a map hit (the common case once
            // the first report is in) must not clone the signature
            let e = match avg.get_mut(sig) {
                Some(e) => e,
                None => avg.entry(sig.clone()).or_insert(SeqStats {
                    frequency: 0.0,
                    occurrences: 0,
                }),
            };
            e.frequency += stats.frequency / n;
            e.occurrences += stats.occurrences;
        }
    }
    SequenceReport::from_parts(
        "combined".to_string(),
        avg.into_iter().collect(),
        suite_total,
    )
}

/// Combine by pooling dynamic weight instead: a signature's combined
/// frequency is its covered dynamic ops across the suite divided by the
/// suite's total dynamic ops, as if the benchmarks were one long
/// program. Long-running kernels dominate; exposed for the ablation
/// benches.
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn combine_pooled(reports: &[SequenceReport]) -> CombinedReport {
    assert!(!reports.is_empty(), "cannot combine zero reports");
    let suite_total: u64 = reports.iter().map(|r| r.total_profile_ops).sum();
    let mut pooled: BTreeMap<Signature, SeqStats> = BTreeMap::new();
    for r in reports {
        for (sig, stats) in r.entries() {
            let ops = stats.frequency / 100.0 * r.total_profile_ops as f64;
            let e = match pooled.get_mut(sig) {
                Some(e) => e,
                None => pooled.entry(sig.clone()).or_insert(SeqStats {
                    frequency: 0.0,
                    occurrences: 0,
                }),
            };
            e.frequency += if suite_total == 0 {
                0.0
            } else {
                100.0 * ops / suite_total as f64
            };
            e.occurrences += stats.occurrences;
        }
    }
    SequenceReport::from_parts(
        "combined-pooled".to_string(),
        pooled.into_iter().collect(),
        suite_total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str, total: u64, entries: Vec<(&str, f64, usize)>) -> SequenceReport {
        SequenceReport::from_parts(
            name.to_string(),
            entries
                .into_iter()
                .map(|(s, f, n)| {
                    (
                        s.parse::<Signature>().expect("valid signature"),
                        SeqStats {
                            frequency: f,
                            occurrences: n,
                        },
                    )
                })
                .collect(),
            total,
        )
    }

    #[test]
    fn averaging_weights_benchmarks_equally() {
        // bench A: 10% multiply-add; bench B: 1% — mean = 5.5% regardless
        // of how long each benchmark ran
        let a = report("a", 1000, vec![("multiply-add", 10.0, 5)]);
        let b = report("b", 9000, vec![("multiply-add", 1.0, 3)]);
        let c = combine(&[a, b]);
        let mac: Signature = "multiply-add".parse().expect("ok");
        assert!((c.frequency_of(&mac) - 5.5).abs() < 1e-9);
        assert_eq!(c.total_profile_ops, 10000);
        assert_eq!(c.entries()[0].1.occurrences, 8);
    }

    #[test]
    fn pooling_weights_by_benchmark_size() {
        // bench A: 10% multiply-add over 1000 ops = 100 ops
        // bench B: 1% multiply-add over 9000 ops = 90 ops
        // pooled: 190 / 10000 = 1.9%
        let a = report("a", 1000, vec![("multiply-add", 10.0, 5)]);
        let b = report("b", 9000, vec![("multiply-add", 1.0, 3)]);
        let c = combine_pooled(&[a, b]);
        let mac: Signature = "multiply-add".parse().expect("ok");
        assert!((c.frequency_of(&mac) - 1.9).abs() < 1e-9);
        assert_eq!(c.total_profile_ops, 10000);
        assert_eq!(c.entries()[0].1.occurrences, 8);
    }

    #[test]
    fn distinct_signatures_kept_separate() {
        let a = report("a", 100, vec![("multiply-add", 10.0, 1)]);
        let b = report("b", 100, vec![("add-add", 20.0, 2)]);
        let c = combine(&[a, b]);
        assert_eq!(c.len(), 2);
        // add-add pools to 10%, multiply-add to 5%
        assert!((c.frequency_of(&"add-add".parse().expect("ok")) - 10.0).abs() < 1e-9);
        assert!((c.frequency_of(&"multiply-add".parse().expect("ok")) - 5.0).abs() < 1e-9);
        // sorted: add-add first
        assert_eq!(c.entries()[0].0.to_string(), "add-add");
    }

    #[test]
    fn single_report_is_identity() {
        let a = report(
            "a",
            500,
            vec![("multiply-add", 7.5, 2), ("add-add", 3.0, 1)],
        );
        let c = combine(std::slice::from_ref(&a));
        assert!((c.frequency_of(&"multiply-add".parse().expect("ok")) - 7.5).abs() < 1e-9);
        assert!((c.frequency_of(&"add-add".parse().expect("ok")) - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot combine")]
    fn empty_combination_panics() {
        let _ = combine(&[]);
    }
}
