//! The pre-decoded execution engine.
//!
//! [`DecodedProgram::decode`] lowers a [`Program`] once into a dense,
//! flat instruction array the interpreter can execute without touching
//! the IR (or the boxed [`Value`] representation) again:
//!
//! - every instruction becomes one copy-only decoded entry in a
//!   single `Vec`, grouped by block with per-block index ranges;
//! - the register file is split into **typed banks**: one flat `i64`
//!   array and one flat `f64` array, each holding the program's
//!   registers of that type followed by a materialized constant pool.
//!   Operand types are static in the IR (registers are typed,
//!   validation pins operand types per op), so every operand resolves
//!   at decode time to a bank slot and the hot loop does raw machine
//!   arithmetic — no `Value` enum packing, unpacking or coercion;
//! - likewise memory: each array becomes a raw `Vec<i64>` or
//!   `Vec<f64>` in the matching bank, with bounds/base/element size
//!   inlined into the load/store entries (and specialized
//!   element-indexed variants for the default `base = 0,
//!   elem_size = 1` layout that skip the address arithmetic);
//! - branch targets are resolved to decoded block indices;
//! - chained super-instructions are flattened into a side table and
//!   evaluated in the generic [`Value`] domain (they are rare and
//!   their contract is defined over [`eval_binop`]).
//!
//! The hot loop exploits two structural invariants (established at
//! decode time):
//!
//! - **block-granular stepping** — a well-formed block has its single
//!   terminator last, so entering a block of `n` instructions executes
//!   exactly `n` dynamic operations. The step-limit check runs once per
//!   block; only a block that *could* cross the limit falls back to a
//!   per-instruction careful loop that reproduces the reference
//!   interpreter's exact error ordering.
//! - **derived profiles** — for the same reason, every instruction in a
//!   block executes exactly once per block entry, so the hot loop only
//!   counts block entries; per-instruction counts (and `total_ops`) are
//!   reconstructed from the block counters after the run, via
//!   precomputed per-block profile-slot lists. The result is
//!   byte-identical to the reference interpreter's bump-per-instruction
//!   profile.
//!
//! Error paths allocate nothing until an error actually occurs: the
//! decoded load/store entries carry only bank-local indices, and the
//! array name for an [`SimError::OutOfBounds`] message is rebuilt from
//! the decode-time array plan at error time.
//!
//! Traced runs ([`Engine::run_traced`]) use a separate specialized loop
//! so the untraced hot path carries no `Option<sink>` check; the trace
//! loop rebuilds each event's `&Inst` from a decoded-index origin
//! table.
//!
//! ## Decode-time validation vs run-time checks
//!
//! Decoding assumes a structurally *and type* valid program (the
//! builder and the parser validate; see [`Program::validate`]) and
//! resolves every register, array and block reference — and every
//! operand type — eagerly. A dangling reference or an operand type
//! validation would reject panics at decode time, where the reference
//! interpreter would only panic (or silently coerce) if the broken
//! instruction were ever executed. Data-dependent conditions (input
//! binding, array indices, the step limit) remain run-time checks with
//! the exact error values of the reference interpreter.
//!
//! ## Example
//!
//! ```
//! use asip_sim::{DataSet, Engine};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let program = {
//! #     use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};
//! #     let mut b = ProgramBuilder::new("t");
//! #     let x = b.input_array("x", Ty::Int, 4);
//! #     let e = b.entry_block();
//! #     b.select_block(e);
//! #     let v = b.load(x, Operand::imm_int(0));
//! #     let _ = b.binary(BinOp::Add, v.into(), Operand::imm_int(1));
//! #     b.ret(None);
//! #     b.finish()?
//! # };
//! // decode once, run many times
//! let engine = Engine::new(Arc::new(program));
//! let mut data = DataSet::new();
//! data.bind_ints("x", vec![1, 2, 3, 4]);
//! let first = engine.run(&data)?;
//! let again = engine.run(&data)?;
//! assert_eq!(first.profile, again.profile);
//! # Ok(())
//! # }
//! ```

use crate::data::DataSet;
use crate::error::{Result, SimError};
use crate::machine::{eval_binop, Execution};
use crate::profile::Profile;
use crate::trace::{TraceEvent, TraceSink};
use asip_ir::{ArrayKind, BinOp, InstKind, Operand, Program, Ty, UnOp, Value};
use std::sync::Arc;

/// One pre-decoded instruction: a copy-only struct whose operands are
/// slots into the typed register banks.
#[derive(Debug, Clone, Copy)]
enum DecodedInst {
    /// Integer-domain binary op (including comparisons): `ints[dst] =
    /// op(ints[lhs], ints[rhs])`.
    IntBin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Float-domain binary op with a float result.
    FloatBin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Float comparison: float operands, integer (0/1) result.
    FloatCmp {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Integer unary op (`neg`, `not`, int `mov`).
    IntUn { op: UnOp, dst: u32, src: u32 },
    /// Float unary op (`fneg`, float `mov`, math functions).
    FloatUn { op: UnOp, dst: u32, src: u32 },
    /// `floats[dst] = ints[src] as f64`
    IntToFloat { dst: u32, src: u32 },
    /// `ints[dst] = floats[src] as i64` (truncating, like C)
    FloatToInt { dst: u32, src: u32 },
    /// Element-indexed load from an int array (`base = 0, elem = 1`).
    LoadInt { dst: u32, arr: u32, index: u32 },
    /// Int-array load through the general address layout.
    LoadIntAddr { dst: u32, arr: u32, index: u32 },
    /// Element-indexed load from a float array.
    LoadFloat { dst: u32, arr: u32, index: u32 },
    /// Float-array load through the general address layout.
    LoadFloatAddr { dst: u32, arr: u32, index: u32 },
    /// Element-indexed store to an int array.
    StoreInt { arr: u32, index: u32, value: u32 },
    /// Int-array store through the general address layout.
    StoreIntAddr { arr: u32, index: u32, value: u32 },
    /// Element-indexed store to a float array.
    StoreFloat { arr: u32, index: u32, value: u32 },
    /// Float-array store through the general address layout.
    StoreFloatAddr { arr: u32, index: u32, value: u32 },
    /// Conditional branch on a non-zero integer condition.
    Branch { cond: u32, then_b: u32, else_b: u32 },
    /// Decode-time fusion of an integer binary op feeding the block's
    /// terminating branch (the dominant loop back-edge pattern:
    /// `cmp` + `br`). Counts as **two** dynamic steps and two profile
    /// slots; the destination register is still written.
    IntBinBranch {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_b: u32,
        else_b: u32,
    },
    /// Fusion of a float comparison feeding the terminating branch.
    FloatCmpBranch {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_b: u32,
        else_b: u32,
    },
    /// Unconditional jump to a decoded block index.
    Jump { target: u32 },
    /// `ret` with no value.
    RetNone,
    /// `ret` of an integer slot.
    RetInt { src: u32 },
    /// `ret` of a float slot.
    RetFloat { src: u32 },
    /// Chained super-instruction; `plan` indexes the chain side table.
    Chained { dst: u32, plan: u32 },
    /// Decode-time marker for a block without a terminator. Executing
    /// it reproduces the reference interpreter's panic; it costs no
    /// dynamic step and has no profile slot.
    Unterminated,
}

/// The decoded shape of one basic block.
#[derive(Debug, Clone, Copy)]
struct BlockPlan {
    /// First decoded index of this block.
    start: u32,
    /// One past the last decoded index (sentinel included, if any).
    end: u32,
    /// Dynamic operations one entry executes (sentinel excluded).
    steps: u32,
}

/// Decode-time metadata for one declared array: its bank assignment,
/// address layout, and the binding/error context (name, kind).
#[derive(Debug, Clone)]
struct ArrayPlan {
    name: String,
    ty: Ty,
    len: usize,
    kind: ArrayKind,
    base: i64,
    elem_size: i64,
    /// Index into the matching typed memory bank.
    bank: u32,
}

/// The hot-path address plan for one declared array: a compact copy of
/// the layout fields (no name string nearby), with power-of-two element
/// sizes strength-reduced to shift/mask at decode time. Indexed by
/// declaration order, like `arrays`.
#[derive(Debug, Clone, Copy)]
struct AddrPlan {
    base: i64,
    elem: i64,
    /// `log2(elem)` when `pow2`.
    shift: u32,
    /// `elem - 1` when `pow2`.
    mask: i64,
    len: usize,
    /// Index into the matching typed memory bank.
    bank: u32,
    pow2: bool,
}

impl AddrPlan {
    /// [`asip_ir::ArrayDecl::element_of`], inlined and
    /// strength-reduced.
    #[inline(always)]
    fn element_of(&self, addr: i64) -> Option<usize> {
        let off = addr.checked_sub(self.base)?;
        if off < 0 {
            return None;
        }
        let idx = if self.pow2 {
            if off & self.mask != 0 {
                return None;
            }
            (off >> self.shift) as usize
        } else {
            if off % self.elem != 0 {
                return None;
            }
            (off / self.elem) as usize
        };
        (idx < self.len).then_some(idx)
    }
}

/// A typed bank slot (for the generic chained-op path).
#[derive(Debug, Clone, Copy)]
enum TSlot {
    /// Integer-bank slot.
    I(u32),
    /// Float-bank slot.
    F(u32),
}

/// A flattened chained super-instruction: `acc = head(lhs, rhs)` (or
/// `lhs` with no head op), then `acc = op(acc, slot)` per tail step —
/// the evaluation contract shared with the rewriter. Chains are
/// evaluated in the generic [`Value`] domain; they are rare (only
/// rewritten programs contain them) and their contract is defined over
/// [`eval_binop`].
#[derive(Debug, Clone)]
struct ChainPlan {
    head: Option<BinOp>,
    lhs: TSlot,
    rhs: TSlot,
    tail: Vec<(BinOp, TSlot)>,
    dst_float: bool,
}

/// Control-flow outcome of one executed instruction. Kept small and
/// allocation-free; error context is rebuilt by the caller from the
/// payload only when an error actually occurs.
enum Step {
    Next,
    Goto(u32),
    Halt(Option<Value>),
    /// Out-of-bounds access: the offending *declaration* index and
    /// address (enough to rebuild the exact reference error).
    Oob {
        decl: u32,
        addr: i64,
    },
}

/// The mutable run state: typed register banks and typed memory banks.
struct Machine {
    ints: Vec<i64>,
    floats: Vec<f64>,
    int_mem: Vec<Vec<i64>>,
    float_mem: Vec<Vec<f64>>,
}

/// A program lowered to the dense decoded form. Decode once with
/// [`DecodedProgram::decode`], execute any number of times; the decoded
/// form borrows nothing, so it can be cached next to (or inside) an
/// `Arc<Program>` — see [`Engine`].
#[derive(Debug)]
pub struct DecodedProgram {
    insts: Vec<DecodedInst>,
    /// `(block index, position in block)` per decoded index, for
    /// rebuilding trace events and error context from a decoded index.
    origins: Vec<(u32, u32)>,
    blocks: Vec<BlockPlan>,
    /// Per-block profile slots (instruction ids), flattened; indexed by
    /// the same ranges as `insts` minus sentinels via `profile_ranges`.
    profile_slots: Vec<u32>,
    /// `(start, end)` into `profile_slots` per block.
    profile_ranges: Vec<(u32, u32)>,
    arrays: Vec<ArrayPlan>,
    /// Hot-path address plans, parallel to `arrays`.
    addr_plans: Vec<AddrPlan>,
    chains: Vec<ChainPlan>,
    /// Initial int bank: int registers (zeroed) then the int constant
    /// pool.
    init_ints: Vec<i64>,
    /// Initial float bank: float registers (zeroed) then the float
    /// constant pool.
    init_floats: Vec<f64>,
    entry: u32,
    /// `Profile` sizing (the program's `next_inst_id`).
    inst_slots: usize,
    /// Working-count sizing: `max(inst_slots, max decoded id + 1)`.
    count_slots: usize,
}

/// Decode-time register/constant slot assignment for one bank.
struct Bank {
    /// Zero-initialized register slots, then constants.
    consts_i: Vec<i64>,
    consts_f: Vec<f64>,
    regs: u32,
    is_float: bool,
}

impl Bank {
    fn const_slot_i(&mut self, v: i64) -> u32 {
        debug_assert!(!self.is_float);
        let idx = match self.consts_i.iter().position(|&c| c == v) {
            Some(i) => i,
            None => {
                self.consts_i.push(v);
                self.consts_i.len() - 1
            }
        };
        self.regs + idx as u32
    }

    fn const_slot_f(&mut self, v: f64) -> u32 {
        debug_assert!(self.is_float);
        let idx = match self
            .consts_f
            .iter()
            .position(|&c| c.to_bits() == v.to_bits())
        {
            Some(i) => i,
            None => {
                self.consts_f.push(v);
                self.consts_f.len() - 1
            }
        };
        self.regs + idx as u32
    }
}

/// Decode-time context shared by the per-instruction lowering.
struct Lowering {
    /// Register index → bank-local slot.
    reg_slots: Vec<u32>,
    /// Register index → is the float bank?
    reg_float: Vec<bool>,
    int_bank: Bank,
    float_bank: Bank,
}

impl Lowering {
    /// Resolve an operand that validation pins to `want`.
    fn slot(&mut self, o: &Operand, want: Ty) -> u32 {
        match (o, want) {
            (Operand::Reg(r), _) => {
                let i = r.index();
                assert!(i < self.reg_slots.len(), "decode: dangling register {r}");
                assert!(
                    self.reg_float[i] == (want == Ty::Float),
                    "decode: register {r} is not of type {want}"
                );
                self.reg_slots[i]
            }
            (Operand::ImmInt(v), Ty::Int) => self.int_bank.const_slot_i(*v),
            (Operand::ImmFloat(v), Ty::Float) => self.float_bank.const_slot_f(*v),
            (o, want) => panic!("decode: operand {o} is not of type {want}"),
        }
    }

    /// Resolve an operand of either type to a typed slot (chains).
    fn tslot(&mut self, o: &Operand) -> TSlot {
        match o {
            Operand::Reg(r) => {
                let i = r.index();
                assert!(i < self.reg_slots.len(), "decode: dangling register {r}");
                if self.reg_float[i] {
                    TSlot::F(self.reg_slots[i])
                } else {
                    TSlot::I(self.reg_slots[i])
                }
            }
            Operand::ImmInt(v) => TSlot::I(self.int_bank.const_slot_i(*v)),
            Operand::ImmFloat(v) => TSlot::F(self.float_bank.const_slot_f(*v)),
        }
    }

    /// The bank slot of a destination register, asserting its type.
    fn dst(&self, r: asip_ir::Reg, want: Ty) -> u32 {
        let i = r.index();
        assert!(i < self.reg_slots.len(), "decode: dangling register {r}");
        assert!(
            self.reg_float[i] == (want == Ty::Float),
            "decode: destination {r} is not of type {want}"
        );
        self.reg_slots[i]
    }
}

impl DecodedProgram {
    /// Lower a program into the decoded form.
    ///
    /// # Panics
    ///
    /// Panics on dangling register, array or block references and on
    /// operand type mismatches — the conditions [`Program::validate`]
    /// rejects. Programs built through [`asip_ir::ProgramBuilder`], the
    /// parser, or the synthesis rewriter are always valid.
    pub fn decode(program: &Program) -> Self {
        // -- bank assignment ------------------------------------------
        let mut reg_slots = Vec::with_capacity(program.reg_types.len());
        let mut reg_float = Vec::with_capacity(program.reg_types.len());
        let (mut n_int, mut n_float) = (0u32, 0u32);
        for &ty in &program.reg_types {
            if ty == Ty::Float {
                reg_slots.push(n_float);
                reg_float.push(true);
                n_float += 1;
            } else {
                reg_slots.push(n_int);
                reg_float.push(false);
                n_int += 1;
            }
        }
        let mut lower = Lowering {
            reg_slots,
            reg_float,
            int_bank: Bank {
                consts_i: Vec::new(),
                consts_f: Vec::new(),
                regs: n_int,
                is_float: false,
            },
            float_bank: Bank {
                consts_i: Vec::new(),
                consts_f: Vec::new(),
                regs: n_float,
                is_float: true,
            },
        };

        let (mut int_arrays, mut float_arrays) = (0u32, 0u32);
        let arrays: Vec<ArrayPlan> = program
            .arrays
            .iter()
            .map(|a| {
                let bank = if a.ty == Ty::Float {
                    float_arrays += 1;
                    float_arrays - 1
                } else {
                    int_arrays += 1;
                    int_arrays - 1
                };
                ArrayPlan {
                    name: a.name.clone(),
                    ty: a.ty,
                    len: a.len,
                    kind: a.kind,
                    base: a.base,
                    elem_size: a.elem_size,
                    bank,
                }
            })
            .collect();
        let addr_plans: Vec<AddrPlan> = arrays
            .iter()
            .map(|p| {
                let pow2 = p.elem_size > 0 && (p.elem_size & (p.elem_size - 1)) == 0;
                AddrPlan {
                    base: p.base,
                    elem: p.elem_size,
                    shift: if pow2 {
                        p.elem_size.trailing_zeros()
                    } else {
                        0
                    },
                    mask: if pow2 { p.elem_size - 1 } else { 0 },
                    len: p.len,
                    bank: p.bank,
                    pow2,
                }
            })
            .collect();
        let array_plan = |a: asip_ir::ArrayId| -> &ArrayPlan {
            assert!(a.index() < arrays.len(), "decode: dangling array {a}");
            &arrays[a.index()]
        };
        let block_index = |b: asip_ir::BlockId| -> u32 {
            assert!(
                b.index() < program.blocks.len(),
                "decode: dangling block {b}"
            );
            b.0
        };

        // -- instruction lowering -------------------------------------
        let mut insts = Vec::with_capacity(program.inst_count() + 1);
        let mut origins = Vec::with_capacity(insts.capacity());
        let mut blocks = Vec::with_capacity(program.blocks.len());
        let mut profile_slots = Vec::with_capacity(program.inst_count());
        let mut profile_ranges = Vec::with_capacity(program.blocks.len());
        let mut chains: Vec<ChainPlan> = Vec::new();
        let mut max_id = 0usize;

        for (bi, block) in program.blocks.iter().enumerate() {
            let start = insts.len() as u32;
            let pstart = profile_slots.len() as u32;
            let mut terminated = false;
            let mut source_steps = 0u32;
            for (pos, inst) in block.insts.iter().enumerate() {
                let decoded = match &inst.kind {
                    InstKind::Binary { op, dst, lhs, rhs } => {
                        if !op.is_float() {
                            DecodedInst::IntBin {
                                op: *op,
                                dst: lower.dst(*dst, Ty::Int),
                                lhs: lower.slot(lhs, Ty::Int),
                                rhs: lower.slot(rhs, Ty::Int),
                            }
                        } else if op.result_ty() == Ty::Int {
                            DecodedInst::FloatCmp {
                                op: *op,
                                dst: lower.dst(*dst, Ty::Int),
                                lhs: lower.slot(lhs, Ty::Float),
                                rhs: lower.slot(rhs, Ty::Float),
                            }
                        } else {
                            DecodedInst::FloatBin {
                                op: *op,
                                dst: lower.dst(*dst, Ty::Float),
                                lhs: lower.slot(lhs, Ty::Float),
                                rhs: lower.slot(rhs, Ty::Float),
                            }
                        }
                    }
                    InstKind::Unary { op, dst, src } => match op {
                        UnOp::Neg | UnOp::Not => DecodedInst::IntUn {
                            op: *op,
                            dst: lower.dst(*dst, Ty::Int),
                            src: lower.slot(src, Ty::Int),
                        },
                        UnOp::FNeg | UnOp::Math(_) => DecodedInst::FloatUn {
                            op: *op,
                            dst: lower.dst(*dst, Ty::Float),
                            src: lower.slot(src, Ty::Float),
                        },
                        UnOp::IntToFloat => DecodedInst::IntToFloat {
                            dst: lower.dst(*dst, Ty::Float),
                            src: lower.slot(src, Ty::Int),
                        },
                        UnOp::FloatToInt => DecodedInst::FloatToInt {
                            dst: lower.dst(*dst, Ty::Int),
                            src: lower.slot(src, Ty::Float),
                        },
                        UnOp::Mov => {
                            let src_ty = match src {
                                Operand::Reg(r) => program.reg_ty(*r),
                                Operand::ImmInt(_) => Ty::Int,
                                Operand::ImmFloat(_) => Ty::Float,
                            };
                            let decoded_src = lower.slot(src, src_ty);
                            if src_ty == Ty::Float {
                                DecodedInst::FloatUn {
                                    op: UnOp::Mov,
                                    dst: lower.dst(*dst, Ty::Float),
                                    src: decoded_src,
                                }
                            } else {
                                DecodedInst::IntUn {
                                    op: UnOp::Mov,
                                    dst: lower.dst(*dst, Ty::Int),
                                    src: decoded_src,
                                }
                            }
                        }
                    },
                    InstKind::Load { dst, array, index } => {
                        let plan = array_plan(*array);
                        let direct = plan.base == 0 && plan.elem_size == 1;
                        // direct variants carry the bank-local index;
                        // general variants carry the *declaration*
                        // index (the address plan lives there)
                        let arr = if direct {
                            plan.bank
                        } else {
                            array.index() as u32
                        };
                        let is_float = plan.ty == Ty::Float;
                        let index = lower.slot(index, Ty::Int);
                        if is_float {
                            let dst = lower.dst(*dst, Ty::Float);
                            if direct {
                                DecodedInst::LoadFloat { dst, arr, index }
                            } else {
                                DecodedInst::LoadFloatAddr { dst, arr, index }
                            }
                        } else {
                            let dst = lower.dst(*dst, Ty::Int);
                            if direct {
                                DecodedInst::LoadInt { dst, arr, index }
                            } else {
                                DecodedInst::LoadIntAddr { dst, arr, index }
                            }
                        }
                    }
                    InstKind::Store {
                        array,
                        index,
                        value,
                    } => {
                        let plan = array_plan(*array);
                        let direct = plan.base == 0 && plan.elem_size == 1;
                        let arr = if direct {
                            plan.bank
                        } else {
                            array.index() as u32
                        };
                        let is_float = plan.ty == Ty::Float;
                        let index = lower.slot(index, Ty::Int);
                        let value = lower.slot(value, plan.ty);
                        match (is_float, direct) {
                            (false, true) => DecodedInst::StoreInt { arr, index, value },
                            (false, false) => DecodedInst::StoreIntAddr { arr, index, value },
                            (true, true) => DecodedInst::StoreFloat { arr, index, value },
                            (true, false) => DecodedInst::StoreFloatAddr { arr, index, value },
                        }
                    }
                    InstKind::Branch {
                        cond,
                        then_target,
                        else_target,
                    } => DecodedInst::Branch {
                        cond: lower.slot(cond, Ty::Int),
                        then_b: block_index(*then_target),
                        else_b: block_index(*else_target),
                    },
                    InstKind::Jump { target } => DecodedInst::Jump {
                        target: block_index(*target),
                    },
                    InstKind::Ret { value } => match value {
                        None => DecodedInst::RetNone,
                        Some(o) => {
                            let ty = match o {
                                Operand::Reg(r) => program.reg_ty(*r),
                                Operand::ImmInt(_) => Ty::Int,
                                Operand::ImmFloat(_) => Ty::Float,
                            };
                            let src = lower.slot(o, ty);
                            if ty == Ty::Float {
                                DecodedInst::RetFloat { src }
                            } else {
                                DecodedInst::RetInt { src }
                            }
                        }
                    },
                    InstKind::Chained {
                        dst, inputs, ops, ..
                    } => {
                        let mut in_slots: Vec<TSlot> =
                            inputs.iter().map(|o| lower.tslot(o)).collect();
                        // the contract zero-fills missing head inputs
                        while in_slots.len() < 2 {
                            in_slots.push(TSlot::I(lower.int_bank.const_slot_i(0)));
                        }
                        let tail = ops
                            .iter()
                            .skip(1)
                            .zip(in_slots.iter().skip(2))
                            .map(|(op, slot)| (*op, *slot))
                            .collect();
                        let dst_float = program.reg_ty(*dst) == Ty::Float;
                        chains.push(ChainPlan {
                            head: ops.first().copied(),
                            lhs: in_slots[0],
                            rhs: in_slots[1],
                            tail,
                            dst_float,
                        });
                        DecodedInst::Chained {
                            dst: lower.dst(*dst, program.reg_ty(*dst)),
                            plan: (chains.len() - 1) as u32,
                        }
                    }
                };
                // peephole: a branch whose condition is the register
                // the immediately preceding int-bin or float-cmp wrote
                // fuses into one dispatch (the loop back-edge pattern)
                let decoded = match decoded {
                    DecodedInst::Branch {
                        cond,
                        then_b,
                        else_b,
                    } if insts.len() as u32 > start => match insts.last() {
                        Some(&DecodedInst::IntBin { op, dst, lhs, rhs }) if dst == cond => {
                            insts.pop();
                            DecodedInst::IntBinBranch {
                                op,
                                dst,
                                lhs,
                                rhs,
                                then_b,
                                else_b,
                            }
                        }
                        Some(&DecodedInst::FloatCmp { op, dst, lhs, rhs }) if dst == cond => {
                            insts.pop();
                            DecodedInst::FloatCmpBranch {
                                op,
                                dst,
                                lhs,
                                rhs,
                                then_b,
                                else_b,
                            }
                        }
                        _ => DecodedInst::Branch {
                            cond,
                            then_b,
                            else_b,
                        },
                    },
                    other => other,
                };
                // the fused pair keeps the *producer's* origin so the
                // trace loop can re-derive both source instructions
                if matches!(
                    decoded,
                    DecodedInst::IntBinBranch { .. } | DecodedInst::FloatCmpBranch { .. }
                ) {
                    origins.pop();
                    origins.push((bi as u32, pos as u32 - 1));
                } else {
                    origins.push((bi as u32, pos as u32));
                }
                insts.push(decoded);
                profile_slots.push(inst.id.0);
                source_steps += 1;
                max_id = max_id.max(inst.id.index() + 1);
                if inst.is_terminator() {
                    terminated = true;
                    break;
                }
            }
            if !terminated {
                insts.push(DecodedInst::Unterminated);
                origins.push((bi as u32, block.insts.len() as u32));
            }
            blocks.push(BlockPlan {
                start,
                end: insts.len() as u32,
                steps: source_steps,
            });
            profile_ranges.push((pstart, profile_slots.len() as u32));
        }

        let mut init_ints = vec![0i64; n_int as usize];
        init_ints.extend(&lower.int_bank.consts_i);
        let mut init_floats = vec![0f64; n_float as usize];
        init_floats.extend(&lower.float_bank.consts_f);

        DecodedProgram {
            insts,
            origins,
            blocks,
            profile_slots,
            profile_ranges,
            arrays,
            addr_plans,
            chains,
            init_ints,
            init_floats,
            entry: program.entry.0,
            inst_slots: program.next_inst_id as usize,
            count_slots: (program.next_inst_id as usize).max(max_id),
        }
    }

    /// Number of decoded instructions (sentinels included).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing was decoded (impossible for a valid program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Bind input data and build the initial machine state — the same
    /// checks, in the same order, as the reference interpreter.
    fn init_machine(&self, data: &DataSet) -> Result<Machine> {
        let mut int_mem: Vec<Vec<i64>> = Vec::new();
        let mut float_mem: Vec<Vec<f64>> = Vec::new();
        for plan in &self.arrays {
            match plan.kind {
                ArrayKind::Input => {
                    let bound = data.get(&plan.name).ok_or_else(|| SimError::UnboundInput {
                        name: plan.name.clone(),
                    })?;
                    if bound.len() != plan.len {
                        return Err(SimError::WrongLength {
                            name: plan.name.clone(),
                            expected: plan.len,
                            got: bound.len(),
                        });
                    }
                    if bound.iter().any(|v| v.ty() != plan.ty) {
                        return Err(SimError::WrongType {
                            name: plan.name.clone(),
                        });
                    }
                    if plan.ty == Ty::Float {
                        float_mem.push(bound.iter().map(Value::as_float).collect());
                    } else {
                        int_mem.push(bound.iter().map(Value::as_int).collect());
                    }
                }
                ArrayKind::Output | ArrayKind::Internal => {
                    if plan.ty == Ty::Float {
                        float_mem.push(vec![0.0; plan.len]);
                    } else {
                        int_mem.push(vec![0; plan.len]);
                    }
                }
            }
        }
        Ok(Machine {
            ints: self.init_ints.clone(),
            floats: self.init_floats.clone(),
            int_mem,
            float_mem,
        })
    }

    /// Repackage the typed memory banks into the declaration-ordered
    /// [`Value`] arrays of an [`Execution`].
    fn finish_memory(&self, m: Machine) -> Vec<Vec<Value>> {
        self.arrays
            .iter()
            .map(|plan| {
                if plan.ty == Ty::Float {
                    m.float_mem[plan.bank as usize]
                        .iter()
                        .map(|&v| Value::Float(v))
                        .collect()
                } else {
                    m.int_mem[plan.bank as usize]
                        .iter()
                        .map(|&v| Value::Int(v))
                        .collect()
                }
            })
            .collect()
    }

    /// Rebuild the out-of-bounds error for a memory access, allocating
    /// the context (array name) only now that an error is certain.
    #[cold]
    fn oob(&self, decl: u32, addr: i64) -> SimError {
        let plan = &self.arrays[decl as usize];
        SimError::OutOfBounds {
            name: plan.name.clone(),
            index: addr,
            len: plan.len,
        }
    }

    /// The declaration index of a bank-local array (error paths only).
    fn decl_of(&self, bank: u32, is_float: bool) -> u32 {
        self.arrays
            .iter()
            .position(|p| p.bank == bank && (p.ty == Ty::Float) == is_float)
            .expect("bank indices are decode-assigned") as u32
    }

    /// Execute one decoded instruction. Shared by the fast block loop,
    /// the careful near-limit loop and the trace loop.
    #[inline(always)]
    fn exec(&self, inst: &DecodedInst, m: &mut Machine) -> Step {
        match *inst {
            DecodedInst::IntBin { op, dst, lhs, rhs } => {
                m.ints[dst as usize] = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                Step::Next
            }
            DecodedInst::FloatBin { op, dst, lhs, rhs } => {
                m.floats[dst as usize] =
                    eval_float_bin(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                Step::Next
            }
            DecodedInst::FloatCmp { op, dst, lhs, rhs } => {
                m.ints[dst as usize] =
                    eval_float_cmp(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                Step::Next
            }
            DecodedInst::IntUn { op, dst, src } => {
                let v = m.ints[src as usize];
                m.ints[dst as usize] = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::Mov => v,
                    _ => unreachable!("decode put a non-int unary in IntUn"),
                };
                Step::Next
            }
            DecodedInst::FloatUn { op, dst, src } => {
                let v = m.floats[src as usize];
                m.floats[dst as usize] = match op {
                    UnOp::FNeg => -v,
                    UnOp::Mov => v,
                    UnOp::Math(f) => f.eval(v),
                    _ => unreachable!("decode put a non-float unary in FloatUn"),
                };
                Step::Next
            }
            DecodedInst::IntToFloat { dst, src } => {
                m.floats[dst as usize] = m.ints[src as usize] as f64;
                Step::Next
            }
            DecodedInst::FloatToInt { dst, src } => {
                m.ints[dst as usize] = m.floats[src as usize] as i64;
                Step::Next
            }
            DecodedInst::LoadInt { dst, arr, index } => {
                let addr = m.ints[index as usize];
                match m.int_mem[arr as usize].get(addr as usize) {
                    // a negative address wraps to a huge index and misses
                    Some(&v) => {
                        m.ints[dst as usize] = v;
                        Step::Next
                    }
                    None => Step::Oob {
                        decl: self.decl_of(arr, false),
                        addr,
                    },
                }
            }
            DecodedInst::LoadFloat { dst, arr, index } => {
                let addr = m.ints[index as usize];
                match m.float_mem[arr as usize].get(addr as usize) {
                    Some(&v) => {
                        m.floats[dst as usize] = v;
                        Step::Next
                    }
                    None => Step::Oob {
                        decl: self.decl_of(arr, true),
                        addr,
                    },
                }
            }
            DecodedInst::LoadIntAddr { dst, arr, index } => {
                let addr = m.ints[index as usize];
                let plan = &self.addr_plans[arr as usize];
                match plan.element_of(addr) {
                    Some(slot) => {
                        m.ints[dst as usize] = m.int_mem[plan.bank as usize][slot];
                        Step::Next
                    }
                    None => Step::Oob { decl: arr, addr },
                }
            }
            DecodedInst::LoadFloatAddr { dst, arr, index } => {
                let addr = m.ints[index as usize];
                let plan = &self.addr_plans[arr as usize];
                match plan.element_of(addr) {
                    Some(slot) => {
                        m.floats[dst as usize] = m.float_mem[plan.bank as usize][slot];
                        Step::Next
                    }
                    None => Step::Oob { decl: arr, addr },
                }
            }
            DecodedInst::StoreInt { arr, index, value } => {
                let addr = m.ints[index as usize];
                let v = m.ints[value as usize];
                match m.int_mem[arr as usize].get_mut(addr as usize) {
                    Some(slot) => {
                        *slot = v;
                        Step::Next
                    }
                    None => Step::Oob {
                        decl: self.decl_of(arr, false),
                        addr,
                    },
                }
            }
            DecodedInst::StoreFloat { arr, index, value } => {
                let addr = m.ints[index as usize];
                let v = m.floats[value as usize];
                match m.float_mem[arr as usize].get_mut(addr as usize) {
                    Some(slot) => {
                        *slot = v;
                        Step::Next
                    }
                    None => Step::Oob {
                        decl: self.decl_of(arr, true),
                        addr,
                    },
                }
            }
            DecodedInst::StoreIntAddr { arr, index, value } => {
                let addr = m.ints[index as usize];
                let plan = &self.addr_plans[arr as usize];
                match plan.element_of(addr) {
                    Some(slot) => {
                        m.int_mem[plan.bank as usize][slot] = m.ints[value as usize];
                        Step::Next
                    }
                    None => Step::Oob { decl: arr, addr },
                }
            }
            DecodedInst::StoreFloatAddr { arr, index, value } => {
                let addr = m.ints[index as usize];
                let plan = &self.addr_plans[arr as usize];
                match plan.element_of(addr) {
                    Some(slot) => {
                        m.float_mem[plan.bank as usize][slot] = m.floats[value as usize];
                        Step::Next
                    }
                    None => Step::Oob { decl: arr, addr },
                }
            }
            DecodedInst::Branch {
                cond,
                then_b,
                else_b,
            } => Step::Goto(if m.ints[cond as usize] != 0 {
                then_b
            } else {
                else_b
            }),
            DecodedInst::IntBinBranch {
                op,
                dst,
                lhs,
                rhs,
                then_b,
                else_b,
            } => {
                let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                m.ints[dst as usize] = v;
                Step::Goto(if v != 0 { then_b } else { else_b })
            }
            DecodedInst::FloatCmpBranch {
                op,
                dst,
                lhs,
                rhs,
                then_b,
                else_b,
            } => {
                let v = eval_float_cmp(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                m.ints[dst as usize] = v;
                Step::Goto(if v != 0 { then_b } else { else_b })
            }
            DecodedInst::Jump { target } => Step::Goto(target),
            DecodedInst::RetNone => Step::Halt(None),
            DecodedInst::RetInt { src } => Step::Halt(Some(Value::Int(m.ints[src as usize]))),
            DecodedInst::RetFloat { src } => Step::Halt(Some(Value::Float(m.floats[src as usize]))),
            DecodedInst::Chained { dst, plan } => {
                let chain = &self.chains[plan as usize];
                let read = |s: TSlot| -> Value {
                    match s {
                        TSlot::I(i) => Value::Int(m.ints[i as usize]),
                        TSlot::F(i) => Value::Float(m.floats[i as usize]),
                    }
                };
                let a = read(chain.lhs);
                let mut acc = match chain.head {
                    Some(op) => eval_binop(op, a, read(chain.rhs)),
                    None => a,
                };
                for &(op, slot) in &chain.tail {
                    acc = eval_binop(op, acc, read(slot));
                }
                if chain.dst_float {
                    m.floats[dst as usize] = acc.as_float();
                } else {
                    m.ints[dst as usize] = acc.as_int();
                }
                Step::Next
            }
            DecodedInst::Unterminated => {
                unreachable!("block fell through without terminator")
            }
        }
    }

    /// The value an instruction wrote to its destination register, if
    /// any (trace events only).
    fn wrote(&self, inst: &DecodedInst, m: &Machine) -> Option<Value> {
        match *inst {
            DecodedInst::IntBin { dst, .. }
            | DecodedInst::FloatCmp { dst, .. }
            | DecodedInst::IntBinBranch { dst, .. }
            | DecodedInst::FloatCmpBranch { dst, .. }
            | DecodedInst::IntUn { dst, .. }
            | DecodedInst::FloatToInt { dst, .. }
            | DecodedInst::LoadInt { dst, .. }
            | DecodedInst::LoadIntAddr { dst, .. } => Some(Value::Int(m.ints[dst as usize])),
            DecodedInst::FloatBin { dst, .. }
            | DecodedInst::FloatUn { dst, .. }
            | DecodedInst::IntToFloat { dst, .. }
            | DecodedInst::LoadFloat { dst, .. }
            | DecodedInst::LoadFloatAddr { dst, .. } => Some(Value::Float(m.floats[dst as usize])),
            DecodedInst::Chained { dst, plan } => Some(if self.chains[plan as usize].dst_float {
                Value::Float(m.floats[dst as usize])
            } else {
                Value::Int(m.ints[dst as usize])
            }),
            _ => None,
        }
    }

    /// Derive the per-instruction profile from the block entry counters
    /// (every instruction in a block runs once per entry), reproducing
    /// the reference interpreter's on-demand slot growth exactly.
    fn derive_profile(&self, block_counts: Vec<u64>, total_ops: u64) -> Profile {
        let mut inst_counts = vec![0u64; self.count_slots];
        for (b, &(pstart, pend)) in self.profile_ranges.iter().enumerate() {
            let entries = block_counts[b];
            if entries == 0 {
                continue;
            }
            for &slot in &self.profile_slots[pstart as usize..pend as usize] {
                inst_counts[slot as usize] += entries;
            }
        }
        // the reference profile only grows past `inst_slots` when an
        // instruction with a larger id actually executes
        let mut len = self.inst_slots;
        for i in (self.inst_slots..self.count_slots).rev() {
            if inst_counts[i] > 0 {
                len = i + 1;
                break;
            }
        }
        inst_counts.truncate(len);
        Profile::from_parts(inst_counts, block_counts, total_ops)
    }

    /// Run to completion without tracing: the hot path.
    pub(crate) fn execute(&self, data: &DataSet, limit: u64) -> Result<Execution> {
        let mut m = self.init_machine(data)?;
        let mut block_counts = vec![0u64; self.blocks.len()];
        let mut steps: u64 = 0;
        let mut block = self.entry as usize;

        'outer: loop {
            block_counts[block] += 1;
            let plan = self.blocks[block];
            let n = plan.steps as u64;
            if steps + n > limit {
                // this block could cross the limit: fall back to the
                // reference interpreter's per-instruction ordering so
                // a data error that strikes first still wins
                for pc in plan.start as usize..plan.end as usize {
                    let inst = &self.insts[pc];
                    steps += step_weight(inst);
                    if steps > limit {
                        // which half of a fused pair crossed is
                        // unobservable: the error (and the discarded
                        // state) is the same either way
                        return Err(SimError::StepLimit { limit });
                    }
                    match self.exec(inst, &mut m) {
                        Step::Next => {}
                        Step::Goto(b) => {
                            block = b as usize;
                            continue 'outer;
                        }
                        Step::Halt(result) => {
                            return Ok(Execution {
                                profile: self.derive_profile(block_counts, steps),
                                memory: self.finish_memory(m),
                                result,
                            })
                        }
                        Step::Oob { decl, addr } => return Err(self.oob(decl, addr)),
                    }
                }
            } else {
                steps += n;
                for inst in &self.insts[plan.start as usize..plan.end as usize] {
                    match self.exec(inst, &mut m) {
                        Step::Next => {}
                        Step::Goto(b) => {
                            block = b as usize;
                            continue 'outer;
                        }
                        Step::Halt(result) => {
                            return Ok(Execution {
                                profile: self.derive_profile(block_counts, steps),
                                memory: self.finish_memory(m),
                                result,
                            })
                        }
                        Step::Oob { decl, addr } => return Err(self.oob(decl, addr)),
                    }
                }
            }
            // a block ends in a terminator or the Unterminated sentinel
            // (which panics), so falling through is impossible
            unreachable!("block fell through without terminator");
        }
    }

    /// Run with a per-step trace observer: the specialized slow loop.
    /// `program` must be the program this decode was built from (the
    /// trace borrows its instructions).
    pub(crate) fn execute_traced(
        &self,
        program: &Program,
        data: &DataSet,
        limit: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Execution> {
        let mut m = self.init_machine(data)?;
        let mut block_counts = vec![0u64; self.blocks.len()];
        let mut steps: u64 = 0;
        let mut block = self.entry as usize;

        'outer: loop {
            block_counts[block] += 1;
            let plan = self.blocks[block];
            for pc in plan.start as usize..plan.end as usize {
                let inst = &self.insts[pc];
                let (ob, opos) = self.origins[pc];
                let fused = matches!(
                    inst,
                    DecodedInst::IntBinBranch { .. } | DecodedInst::FloatCmpBranch { .. }
                );
                let step = if fused {
                    // re-expand the fused pair into its two source
                    // events, with the reference's exact limit
                    // ordering: no event if the producer crosses, the
                    // producer's event but not the branch's if the
                    // branch crosses
                    steps += 1;
                    if steps > limit {
                        return Err(SimError::StepLimit { limit });
                    }
                    let step = self.exec(inst, &mut m);
                    let producer = &program.blocks[ob as usize].insts[opos as usize];
                    sink.event(&TraceEvent {
                        step: steps,
                        block: asip_ir::BlockId(ob),
                        inst: producer,
                        wrote: self.wrote(inst, &m),
                    });
                    steps += 1;
                    if steps > limit {
                        return Err(SimError::StepLimit { limit });
                    }
                    let branch = &program.blocks[ob as usize].insts[opos as usize + 1];
                    sink.event(&TraceEvent {
                        step: steps,
                        block: asip_ir::BlockId(ob),
                        inst: branch,
                        wrote: None,
                    });
                    step
                } else {
                    steps += step_weight(inst);
                    if steps > limit {
                        return Err(SimError::StepLimit { limit });
                    }
                    let step = self.exec(inst, &mut m);
                    if let Step::Oob { decl, addr } = step {
                        return Err(self.oob(decl, addr));
                    }
                    let source = &program.blocks[ob as usize].insts[opos as usize];
                    sink.event(&TraceEvent {
                        step: steps,
                        block: asip_ir::BlockId(ob),
                        inst: source,
                        wrote: self.wrote(inst, &m),
                    });
                    step
                };
                match step {
                    Step::Next => {}
                    Step::Goto(b) => {
                        block = b as usize;
                        continue 'outer;
                    }
                    Step::Halt(result) => {
                        return Ok(Execution {
                            profile: self.derive_profile(block_counts, steps),
                            memory: self.finish_memory(m),
                            result,
                        })
                    }
                    Step::Oob { .. } => unreachable!("handled above"),
                }
            }
            unreachable!("block fell through without terminator");
        }
    }
}

/// Dynamic steps one decoded instruction accounts for: two for a fused
/// pair, zero for the unterminated-block sentinel, one otherwise.
#[inline(always)]
fn step_weight(inst: &DecodedInst) -> u64 {
    match inst {
        DecodedInst::IntBinBranch { .. } | DecodedInst::FloatCmpBranch { .. } => 2,
        DecodedInst::Unterminated => 0,
        _ => 1,
    }
}

/// Integer-domain binary semantics (identical to [`eval_binop`] on two
/// [`Value::Int`]s).
#[inline(always)]
fn eval_int_bin(op: BinOp, a: i64, b: i64) -> i64 {
    use BinOp::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        Shl => a.wrapping_shl((b & 63) as u32),
        Shr => a.wrapping_shr((b & 63) as u32),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        CmpLt => (a < b) as i64,
        CmpLe => (a <= b) as i64,
        CmpGt => (a > b) as i64,
        CmpGe => (a >= b) as i64,
        CmpEq => (a == b) as i64,
        CmpNe => (a != b) as i64,
        _ => unreachable!("decode put a float op in IntBin"),
    }
}

/// Float-domain binary semantics with a float result.
#[inline(always)]
fn eval_float_bin(op: BinOp, a: f64, b: f64) -> f64 {
    use BinOp::*;
    match op {
        FAdd => a + b,
        FSub => a - b,
        FMul => a * b,
        FDiv => a / b,
        _ => unreachable!("decode put a non-arithmetic op in FloatBin"),
    }
}

/// Float comparison semantics with a 0/1 integer result.
#[inline(always)]
fn eval_float_cmp(op: BinOp, a: f64, b: f64) -> i64 {
    use BinOp::*;
    match op {
        FCmpLt => (a < b) as i64,
        FCmpLe => (a <= b) as i64,
        FCmpGt => (a > b) as i64,
        FCmpGe => (a >= b) as i64,
        FCmpEq => (a == b) as i64,
        FCmpNe => (a != b) as i64,
        _ => unreachable!("decode put a non-comparison op in FloatCmp"),
    }
}

/// A reusable execution engine: one program, decoded once, run many
/// times. This is what sessions cache so that repeated profiles of the
/// same program (three opt levels, suite sweeps, evaluate re-runs)
/// never pay the decode again.
///
/// [`crate::Simulator`] is the borrowing one-shot facade over the same
/// execution paths; `Engine` owns its program via `Arc` so it can
/// outlive the caller's borrow and live in caches.
#[derive(Debug)]
pub struct Engine {
    program: Arc<Program>,
    code: DecodedProgram,
    step_limit: u64,
}

impl Engine {
    /// Decode `program` into a reusable engine with the default step
    /// limit (100 million ops, as [`crate::Simulator::new`]).
    ///
    /// # Panics
    ///
    /// As [`DecodedProgram::decode`]: panics on structurally invalid
    /// programs.
    pub fn new(program: Arc<Program>) -> Self {
        let code = DecodedProgram::decode(&program);
        Engine {
            program,
            code,
            step_limit: crate::machine::DEFAULT_STEP_LIMIT,
        }
    }

    /// Override the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// The program this engine executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The decoded code (e.g. for inspecting the decoded length).
    pub fn decoded(&self) -> &DecodedProgram {
        &self.code
    }

    /// Run the program on the given input data.
    ///
    /// # Errors
    ///
    /// As [`crate::Simulator::run`]: data-binding mismatches, bad array
    /// accesses, and the step limit.
    pub fn run(&self, data: &DataSet) -> Result<Execution> {
        self.code.execute(data, self.step_limit)
    }

    /// Run with an execution-trace observer (see [`crate::trace`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_traced(&self, data: &DataSet, sink: &mut dyn TraceSink) -> Result<Execution> {
        self.code
            .execute_traced(&self.program, data, self.step_limit, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{Operand, ProgramBuilder};

    fn sum_loop_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new("sumsq");
        let x = b.input_array("x", Ty::Int, n as usize);
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        b.jump(header);
        b.select_block(header);
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(n));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        let v = b.load(x, i.into());
        let sq = b.binary(BinOp::Mul, v.into(), v.into());
        let na = b.binary(BinOp::Add, acc.into(), sq.into());
        b.mov_to(acc, na.into());
        let ni = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, ni.into());
        b.jump(header);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        b.finish().expect("valid")
    }

    fn data() -> DataSet {
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2, 3, 4]);
        d
    }

    #[test]
    fn engine_matches_reference_on_a_loop() {
        let p = sum_loop_program(4);
        let reference = crate::reference::ReferenceSimulator::new(&p)
            .run(&data())
            .expect("runs");
        let engine = Engine::new(Arc::new(p));
        let decoded = engine.run(&data()).expect("runs");
        assert_eq!(decoded.result, Some(Value::Int(30)));
        assert_eq!(decoded.profile, reference.profile);
        assert_eq!(decoded.memory, reference.memory);
        assert_eq!(decoded.result, reference.result);
    }

    #[test]
    fn engine_is_reusable() {
        let engine = Engine::new(Arc::new(sum_loop_program(4)));
        let a = engine.run(&data()).expect("runs");
        let b = engine.run(&data()).expect("runs");
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.memory, b.memory);
        assert!(!engine.decoded().is_empty());
        // compare+branch fusion makes the decoded stream denser than
        // the source (this program fuses one back edge)
        assert!(engine.decoded().len() < engine.program().inst_count());
    }

    #[test]
    fn step_limit_parity_at_every_boundary() {
        // the engine's block-granular check must error (or not) at
        // exactly the same limits as the per-instruction reference
        let p = sum_loop_program(4);
        let total = Engine::new(Arc::new(p.clone()))
            .run(&data())
            .expect("runs")
            .profile
            .total_ops();
        for limit in (total.saturating_sub(3))..(total + 3) {
            let reference = crate::reference::ReferenceSimulator::new(&p)
                .with_step_limit(limit)
                .run(&data());
            let engine = Engine::new(Arc::new(p.clone()))
                .with_step_limit(limit)
                .run(&data());
            match (reference, engine) {
                (Ok(a), Ok(b)) => assert_eq!(a.profile, b.profile),
                (Err(a), Err(b)) => assert_eq!(a, b, "at limit {limit}"),
                (a, b) => panic!("diverged at limit {limit}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn data_error_beats_step_limit_like_the_reference() {
        // OOB at step 1, limit crossing at step 2: the careful loop
        // must surface the OOB first, like the reference
        let mut b = ProgramBuilder::new("oob");
        let x = b.input_array("x", Ty::Int, 2);
        let entry = b.entry_block();
        b.select_block(entry);
        let _ = b.load(x, Operand::imm_int(5));
        let _ = b.load(x, Operand::imm_int(0));
        b.ret(None);
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]);
        let engine = Engine::new(Arc::new(p)).with_step_limit(2);
        assert!(matches!(
            engine.run(&d),
            Err(SimError::OutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn non_default_array_layout_uses_the_general_path() {
        // give the array a byte-addressed layout; decode must take the
        // general load/store variants and agree with the reference
        let mut p = sum_loop_program(4);
        p.arrays[0].base = 16;
        p.arrays[0].elem_size = 8;
        // the loop indexes elements 0..4 directly, which are no longer
        // valid addresses under the new layout — both paths must agree
        let reference = crate::reference::ReferenceSimulator::new(&p).run(&data());
        let engine = Engine::new(Arc::new(p)).run(&data());
        assert_eq!(reference, engine);
        assert!(matches!(engine, Err(SimError::OutOfBounds { .. })));
    }

    #[test]
    fn mixed_type_programs_route_through_both_banks() {
        // int loop counter, float accumulation, conversions both ways
        let mut b = ProgramBuilder::new("mixed");
        let x = b.input_array("x", Ty::Float, 4);
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        let v0 = b.load(x, Operand::imm_int(0));
        let v1 = b.load(x, Operand::imm_int(1));
        let s = b.binary(BinOp::FAdd, v0.into(), v1.into());
        let d = b.binary(BinOp::FMul, s.into(), Operand::imm_float(2.0));
        let c = b.binary(BinOp::FCmpGt, d.into(), Operand::imm_float(1.0));
        let i = b.unary(UnOp::FloatToInt, d.into());
        let sum = b.binary(BinOp::Add, i.into(), c.into());
        b.store(y, Operand::imm_int(0), sum.into());
        b.ret(Some(sum.into()));
        let p = b.finish().expect("valid");
        let mut data = DataSet::new();
        data.bind_floats("x", vec![1.25, 2.5, 0.0, 0.0]);
        let reference = crate::reference::ReferenceSimulator::new(&p)
            .run(&data)
            .expect("runs");
        let engine = Engine::new(Arc::new(p)).run(&data).expect("runs");
        assert_eq!(engine.result, Some(Value::Int(8)));
        assert_eq!(engine.profile, reference.profile);
        assert_eq!(engine.memory, reference.memory);
        assert_eq!(engine.result, reference.result);
    }

    #[test]
    fn constants_are_pooled_per_bank() {
        let p = sum_loop_program(4);
        let engine = Engine::new(Arc::new(p));
        let int_regs = engine
            .program()
            .reg_types
            .iter()
            .filter(|&&t| t == Ty::Int)
            .count();
        let consts = engine.code.init_ints.len() - int_regs;
        assert!(consts >= 2, "int constant pool materialized ({consts})");
        let a = engine.run(&data()).expect("runs");
        let b = engine.run(&data()).expect("runs");
        assert_eq!(a.result, b.result, "pool state survives reuse");
    }
}
